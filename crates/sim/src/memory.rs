//! Per-GPU peak-memory accounting and OOM detection.

use malleus_cluster::GpuId;
use malleus_core::{CostModel, ParallelizationPlan};
use serde::{Deserialize, Serialize};

/// Peak-memory report for a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Peak bytes per GPU, indexed by GPU id (zero for unused GPUs).
    pub peak_bytes: Vec<f64>,
    /// The per-GPU budget used for the check.
    pub capacity_bytes: f64,
}

impl MemoryReport {
    /// GPUs whose peak exceeds the budget.
    pub fn over_budget(&self) -> Vec<GpuId> {
        self.peak_bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > self.capacity_bytes)
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Largest per-GPU peak in bytes.
    pub fn max_peak(&self) -> f64 {
        self.peak_bytes.iter().copied().fold(0.0, f64::max)
    }
}

/// Error raised when a plan would exceed device memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OomError {
    /// The GPUs that would run out of memory.
    pub gpus: Vec<GpuId>,
    /// The worst offender's peak bytes.
    pub peak_bytes: f64,
    /// The budget that was exceeded.
    pub capacity_bytes: f64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory on {} GPU(s): peak {:.1} GiB exceeds budget {:.1} GiB",
            self.gpus.len(),
            self.peak_bytes / (1024.0 * 1024.0 * 1024.0),
            self.capacity_bytes / (1024.0 * 1024.0 * 1024.0)
        )
    }
}

impl std::error::Error for OomError {}

/// Compute the per-GPU peak memory of a plan under the Appendix B.4 model.
pub fn memory_report(
    cost: &CostModel,
    plan: &ParallelizationPlan,
    num_gpus: usize,
) -> MemoryReport {
    let mut peak = vec![0.0_f64; num_gpus];
    let zero_dp = plan.dp() as u32;
    for pipeline in &plan.pipelines {
        let pp = pipeline.pp();
        for (j, stage) in pipeline.stages.iter().enumerate() {
            let bytes = cost.stage_memory_bytes(stage, j, pp, plan.micro_batch_size, zero_dp);
            for gpu in &stage.group.gpus {
                peak[gpu.index()] = bytes;
            }
        }
    }
    MemoryReport {
        peak_bytes: peak,
        capacity_bytes: cost.coeffs.per_gpu_capacity(),
    }
}

/// Check a plan against the per-GPU budget, returning an [`OomError`] on
/// violation.
pub fn check_memory(
    cost: &CostModel,
    plan: &ParallelizationPlan,
    num_gpus: usize,
) -> Result<MemoryReport, OomError> {
    let report = memory_report(cost, plan, num_gpus);
    let over = report.over_budget();
    if over.is_empty() {
        Ok(report)
    } else {
        Err(OomError {
            peak_bytes: report.max_peak(),
            capacity_bytes: report.capacity_bytes,
            gpus: over,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};

    fn cost(spec: ModelSpec) -> CostModel {
        CostModel::new(ProfiledCoefficients::derive(
            spec,
            HardwareParams::a800_cluster(),
        ))
    }

    #[test]
    fn small_model_fits() {
        let cm = cost(ModelSpec::llama2_7b());
        let gpus: Vec<GpuId> = (0..8).map(GpuId).collect();
        let plan = ParallelizationPlan::uniform(&gpus, 2, 2, 2, 32, 16, 1).unwrap();
        let report = check_memory(&cm, &plan, 8).expect("fits");
        assert!(report.max_peak() > 0.0);
        assert!(report.over_budget().is_empty());
    }

    #[test]
    fn oversized_model_reports_oom() {
        let cm = cost(ModelSpec::llama2_110b());
        let gpus: Vec<GpuId> = (0..2).map(GpuId).collect();
        let plan = ParallelizationPlan::uniform(&gpus, 1, 2, 1, 80, 8, 1).unwrap();
        let err = check_memory(&cm, &plan, 2).unwrap_err();
        assert!(!err.gpus.is_empty());
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn unused_gpus_have_zero_peak() {
        let cm = cost(ModelSpec::llama2_7b());
        let gpus: Vec<GpuId> = (0..4).map(GpuId).collect();
        let plan = ParallelizationPlan::uniform(&gpus, 1, 2, 2, 32, 8, 1).unwrap();
        let report = memory_report(&cm, &plan, 8);
        assert_eq!(report.peak_bytes[7], 0.0);
        assert!(report.peak_bytes[0] > 0.0);
    }
}
