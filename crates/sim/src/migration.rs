//! Migration and restart time models (§5.1, §7.2).
//!
//! Migration fuses the per-slice transfers into batched send-recv calls and
//! packs four layers per message; its wall-clock time is bounded by the busiest
//! GPU's total traffic over the inter-node fabric.  The restart path (used by
//! the Megatron/DeepSpeed "w/ Restart" baselines and by failure recovery) must
//! save a checkpoint, re-initialize the framework and reload the checkpoint —
//! the paper measures 115–442 s for this, versus 1–5 s for migration.

use crate::collective::batched_send_recv_time;
use malleus_cluster::ClusterSnapshot;
use malleus_core::MigrationPlan;
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};

/// Cost summary of a migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Wall-clock migration time in seconds.
    pub time: f64,
    /// Total bytes moved.
    pub total_bytes: f64,
    /// Number of fused messages issued.
    pub messages: usize,
}

/// Number of layers packed into one fused migration message (§5.1 uses 4).
pub const LAYERS_PER_MESSAGE: usize = 4;

/// Estimate the wall-clock time of a migration plan.
pub fn migration_time(
    coeffs: &ProfiledCoefficients,
    snapshot: &ClusterSnapshot,
    migration: &MigrationPlan,
) -> MigrationCost {
    if migration.is_empty() {
        return MigrationCost {
            time: 0.0,
            total_bytes: 0.0,
            messages: 0,
        };
    }
    let traffic_map = migration.per_gpu_traffic();
    let mut per_gpu = vec![(0.0, 0.0); snapshot.num_gpus()];
    for (gpu, (received, sent)) in traffic_map {
        if gpu.index() < per_gpu.len() {
            per_gpu[gpu.index()] = (received, sent);
        }
    }
    let messages = migration.layers_touched().div_ceil(LAYERS_PER_MESSAGE);
    MigrationCost {
        time: batched_send_recv_time(&coeffs.hardware, &per_gpu, messages),
        total_bytes: migration.total_bytes(),
        messages,
    }
}

/// Estimate the time to restart a training job: save a checkpoint (sharded
/// across the nodes), re-initialize the framework (resource allocation,
/// process-group construction) and reload the checkpoint.
pub fn restart_time(coeffs: &ProfiledCoefficients, num_nodes: usize) -> f64 {
    let hw = &coeffs.hardware;
    let state_bytes = coeffs.memory.total_state_bytes(&coeffs.spec);
    let per_node_bytes = state_bytes / num_nodes.max(1) as f64;
    let save = per_node_bytes / hw.checkpoint_bandwidth;
    let load = per_node_bytes / hw.checkpoint_bandwidth;
    save + hw.restart_init_seconds + load
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_core::{plan_migration, ParallelizationPlan};
    use malleus_model::{HardwareParams, ModelSpec};

    fn coeffs(spec: ModelSpec) -> ProfiledCoefficients {
        ProfiledCoefficients::derive(spec, HardwareParams::a800_cluster())
    }

    #[test]
    fn empty_migration_is_free() {
        let c = coeffs(ModelSpec::llama2_7b());
        let snapshot = Cluster::homogeneous(2, 8).snapshot();
        let cost = migration_time(&c, &snapshot, &MigrationPlan::default());
        assert_eq!(cost.time, 0.0);
        assert_eq!(cost.messages, 0);
    }

    #[test]
    fn migration_is_orders_of_magnitude_cheaper_than_restart() {
        // §7.2: migration takes ~1–5 s while restarting takes hundreds of
        // seconds.  Verify the same separation holds in the reproduction.
        let c = coeffs(ModelSpec::llama2_32b());
        let snapshot = Cluster::homogeneous(4, 8).snapshot();
        let gpus_a: Vec<GpuId> = (0..32).map(GpuId).collect();
        let mut gpus_b: Vec<GpuId> = (8..32).map(GpuId).collect();
        gpus_b.extend((0..8).map(GpuId));
        let old = ParallelizationPlan::uniform(&gpus_a, 2, 4, 4, 60, 64, 1).unwrap();
        let new = ParallelizationPlan::uniform(&gpus_b, 2, 4, 4, 60, 64, 1).unwrap();
        let migration = plan_migration(&old, &new, &c);
        let cost = migration_time(&c, &snapshot, &migration);
        let restart = restart_time(&c, 4);
        assert!(cost.time > 0.0);
        assert!(
            restart > cost.time * 10.0,
            "restart {restart} vs migration {}",
            cost.time
        );
        assert!(
            restart > 100.0,
            "restart should take minutes, got {restart}"
        );
        assert!(
            cost.time < 30.0,
            "migration should take seconds, got {}",
            cost.time
        );
    }

    #[test]
    fn restart_time_grows_with_model_size() {
        let small = restart_time(&coeffs(ModelSpec::llama2_7b()), 8);
        let large = restart_time(&coeffs(ModelSpec::llama2_110b()), 8);
        assert!(large > small);
    }

    #[test]
    fn message_count_respects_layer_packing() {
        let c = coeffs(ModelSpec::llama2_7b());
        let snapshot = Cluster::homogeneous(2, 8).snapshot();
        let gpus_a: Vec<GpuId> = (0..8).map(GpuId).collect();
        let gpus_b: Vec<GpuId> = (8..16).map(GpuId).collect();
        let old = ParallelizationPlan::uniform(&gpus_a, 1, 2, 4, 32, 8, 1).unwrap();
        let new = ParallelizationPlan::uniform(&gpus_b, 1, 2, 4, 32, 8, 1).unwrap();
        let migration = plan_migration(&old, &new, &c);
        let cost = migration_time(&c, &snapshot, &migration);
        assert_eq!(cost.messages, 32usize.div_ceil(LAYERS_PER_MESSAGE));
    }
}
