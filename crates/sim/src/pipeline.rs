//! Event-driven 1F1B pipeline-schedule simulation.
//!
//! Unlike the planner's closed-form cost model, the simulator executes the
//! actual one-forward-one-backward schedule with explicit dependencies between
//! stages and point-to-point activation transfers.  This is what plays the role
//! of "actual running time" in the reproduction (Table 3's `R_actual`,
//! Figure 10's enumeration study): it contains effects the planner's estimate
//! ignores (pipeline bubbles, P2P latency, non-bottleneck stages finishing
//! early).

use crate::collective::p2p_time;
use malleus_cluster::ClusterSnapshot;
use malleus_core::plan::PipelinePlan;
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};

/// Result of simulating one pipeline for one training step (compute + P2P,
/// before gradient synchronization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Wall-clock time from the first forward to the last backward.
    pub total_time: f64,
    /// Busy (compute) seconds of each stage.
    pub per_stage_busy: Vec<f64>,
    /// Forward duration of one micro-batch on each stage.
    pub stage_forward_time: Vec<f64>,
}

/// 1F1B operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Forward(u64),
    Backward(u64),
}

/// Simulator for a single pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineSim<'a> {
    /// Profiled coefficients (τ, activation sizes, hardware).
    pub coeffs: &'a ProfiledCoefficients,
    /// Per-GPU straggling rates.
    pub snapshot: &'a ClusterSnapshot,
}

impl<'a> PipelineSim<'a> {
    /// Create a pipeline simulator.
    pub fn new(coeffs: &'a ProfiledCoefficients, snapshot: &'a ClusterSnapshot) -> Self {
        Self { coeffs, snapshot }
    }

    /// Forward time of one micro-batch on a stage: layers × per-layer forward
    /// time at the stage's TP degree × the group's (max) straggling rate.
    fn stage_forward_time(&self, pipeline: &PipelinePlan, stage: usize, b: u64) -> f64 {
        let s = &pipeline.stages[stage];
        let tp = s.group.tp_degree();
        let layer_fwd_bwd = self.coeffs.zeta(b, tp);
        let rate = s.group.max_rate(self.snapshot);
        s.layers as f64 * layer_fwd_bwd / 3.0 * rate
    }

    /// P2P activation-transfer time between two adjacent stages.
    fn boundary_time(&self, pipeline: &PipelinePlan, from: usize, to: usize, b: u64) -> f64 {
        let bytes = self.coeffs.activation_boundary_bytes(b);
        let src = pipeline.stages[from].group.gpus[0];
        let dst = pipeline.stages[to].group.gpus[0];
        p2p_time(&self.coeffs.hardware, self.snapshot, src, dst, bytes)
    }

    /// Build the 1F1B operation sequence of a stage.
    fn op_sequence(num_stages: usize, stage: usize, micro_batches: u64) -> Vec<OpKind> {
        let warmup = ((num_stages - 1 - stage) as u64).min(micro_batches);
        let mut ops = Vec::with_capacity(2 * micro_batches as usize);
        for k in 1..=warmup {
            ops.push(OpKind::Forward(k));
        }
        for k in (warmup + 1)..=micro_batches {
            ops.push(OpKind::Forward(k));
            ops.push(OpKind::Backward(k - warmup));
        }
        for k in (micro_batches - warmup + 1)..=micro_batches {
            ops.push(OpKind::Backward(k));
        }
        ops
    }

    /// Simulate one training step of the pipeline (forward + backward of all
    /// micro-batches under the 1F1B schedule).
    pub fn simulate(&self, pipeline: &PipelinePlan, micro_batch_size: u64) -> PipelineResult {
        let num_stages = pipeline.pp();
        let m = pipeline.num_micro_batches;
        assert!(num_stages > 0, "pipeline must have at least one stage");
        if m == 0 {
            return PipelineResult {
                total_time: 0.0,
                per_stage_busy: vec![0.0; num_stages],
                stage_forward_time: vec![0.0; num_stages],
            };
        }

        let fwd: Vec<f64> = (0..num_stages)
            .map(|s| self.stage_forward_time(pipeline, s, micro_batch_size))
            .collect();
        let bwd: Vec<f64> = fwd.iter().map(|f| 2.0 * f).collect();
        let p2p_fwd: Vec<f64> = (1..num_stages)
            .map(|s| self.boundary_time(pipeline, s - 1, s, micro_batch_size))
            .collect();
        let p2p_bwd: Vec<f64> = (1..num_stages)
            .map(|s| self.boundary_time(pipeline, s, s - 1, micro_batch_size))
            .collect();

        let sequences: Vec<Vec<OpKind>> = (0..num_stages)
            .map(|s| Self::op_sequence(num_stages, s, m))
            .collect();

        // Finish times of every op.  Each op is computed exactly once, in a
        // topological order discovered by round-robining a per-stage program
        // counter: a stage executes its next scheduled op as soon as that op's
        // cross-stage dependency has been computed (forward deps point to the
        // previous stage, backward deps to the next stage, the last stage's
        // backward depends on its own forward).
        let mut fwd_finish = vec![vec![f64::NAN; m as usize + 1]; num_stages];
        let mut bwd_finish = vec![vec![f64::NAN; m as usize + 1]; num_stages];
        let mut pc = vec![0usize; num_stages];
        let mut stage_clock = vec![0.0_f64; num_stages];

        loop {
            let mut progressed = false;
            for s in 0..num_stages {
                while pc[s] < sequences[s].len() {
                    let op = sequences[s][pc[s]];
                    let (dep_ready, duration) = match op {
                        OpKind::Forward(k) => {
                            let dep = if s == 0 {
                                0.0
                            } else {
                                let upstream = fwd_finish[s - 1][k as usize];
                                if upstream.is_nan() {
                                    f64::NAN
                                } else {
                                    upstream + p2p_fwd[s - 1]
                                }
                            };
                            (dep, fwd[s])
                        }
                        OpKind::Backward(k) => {
                            let dep = if s == num_stages - 1 {
                                // Backward of micro-batch k needs its own forward.
                                fwd_finish[s][k as usize]
                            } else {
                                let downstream = bwd_finish[s + 1][k as usize];
                                if downstream.is_nan() {
                                    f64::NAN
                                } else {
                                    downstream + p2p_bwd[s]
                                }
                            };
                            (dep, bwd[s])
                        }
                    };
                    if dep_ready.is_nan() {
                        break; // dependency not produced yet; revisit later
                    }
                    let start = stage_clock[s].max(dep_ready);
                    let finish = start + duration;
                    match op {
                        OpKind::Forward(k) => fwd_finish[s][k as usize] = finish,
                        OpKind::Backward(k) => bwd_finish[s][k as usize] = finish,
                    }
                    stage_clock[s] = finish;
                    pc[s] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        debug_assert!(
            pc.iter().enumerate().all(|(s, &p)| p == sequences[s].len()),
            "1F1B schedule deadlocked: {pc:?}"
        );

        let total_time = (0..num_stages)
            .flat_map(|s| {
                bwd_finish[s]
                    .iter()
                    .copied()
                    .chain(fwd_finish[s].iter().copied())
            })
            .filter(|t| t.is_finite())
            .fold(0.0, f64::max);
        let per_stage_busy: Vec<f64> = (0..num_stages)
            .map(|s| m as f64 * (fwd[s] + bwd[s]))
            .collect();
        PipelineResult {
            total_time,
            per_stage_busy,
            stage_forward_time: fwd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_core::plan::ParallelizationPlan;
    use malleus_model::{HardwareParams, ModelSpec};

    fn coeffs(spec: ModelSpec) -> ProfiledCoefficients {
        ProfiledCoefficients::derive(spec, HardwareParams::a800_cluster())
    }

    fn uniform_pipeline(pp: usize, tp: u32, layers: u32, m: u64) -> PipelinePlan {
        let gpus: Vec<GpuId> = (0..(pp as u32 * tp)).map(GpuId).collect();
        ParallelizationPlan::uniform(&gpus, 1, pp, tp, layers, m, 1)
            .unwrap()
            .pipelines
            .remove(0)
    }

    #[test]
    fn single_stage_pipeline_time_is_m_times_layer_time() {
        let c = coeffs(ModelSpec::llama2_7b());
        let cluster = Cluster::homogeneous(1, 8);
        let snapshot = cluster.snapshot();
        let sim = PipelineSim::new(&c, &snapshot);
        let p = uniform_pipeline(1, 8, 32, 8);
        let r = sim.simulate(&p, 1);
        let expected = 8.0 * 32.0 * c.zeta(1, 8);
        assert!((r.total_time - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn pipeline_bubble_matches_closed_form_for_uniform_stages() {
        // For equal stages, the 1F1B makespan is (m - 1 + S) forward+backward
        // slots of the bottleneck stage (plus P2P).  Check within a few percent.
        let c = coeffs(ModelSpec::llama2_7b());
        let cluster = Cluster::homogeneous(1, 8);
        let snapshot = cluster.snapshot();
        let sim = PipelineSim::new(&c, &snapshot);
        let p = uniform_pipeline(4, 2, 32, 16);
        let r = sim.simulate(&p, 1);
        let per_stage = 8.0 * c.zeta(1, 2); // 8 layers per stage
        let closed_form = (16.0 - 1.0 + 4.0) * per_stage;
        assert!(
            (r.total_time - closed_form).abs() / closed_form < 0.05,
            "sim {} vs closed form {}",
            r.total_time,
            closed_form
        );
    }

    #[test]
    fn straggling_stage_slows_the_whole_pipeline() {
        let c = coeffs(ModelSpec::llama2_7b());
        let mut cluster = Cluster::homogeneous(1, 8);
        let p = uniform_pipeline(4, 2, 32, 16);
        let snapshot = cluster.snapshot();
        let healthy = PipelineSim::new(&c, &snapshot).simulate(&p, 1).total_time;
        cluster.set_rate(GpuId(0), 2.57);
        let snapshot = cluster.snapshot();
        let straggled = PipelineSim::new(&c, &snapshot).simulate(&p, 1).total_time;
        assert!(straggled > healthy * 1.8, "{straggled} vs {healthy}");
    }

    #[test]
    fn more_micro_batches_amortize_the_bubble() {
        let c = coeffs(ModelSpec::llama2_7b());
        let cluster = Cluster::homogeneous(1, 8);
        let snapshot = cluster.snapshot();
        let sim = PipelineSim::new(&c, &snapshot);
        let p_small = uniform_pipeline(4, 2, 32, 4);
        let p_large = uniform_pipeline(4, 2, 32, 32);
        let t_small = sim.simulate(&p_small, 1).total_time / 4.0;
        let t_large = sim.simulate(&p_large, 1).total_time / 32.0;
        assert!(t_large < t_small, "per-micro-batch time should shrink");
    }

    #[test]
    fn zero_micro_batches_take_zero_time() {
        let c = coeffs(ModelSpec::llama2_7b());
        let cluster = Cluster::homogeneous(1, 8);
        let snapshot = cluster.snapshot();
        let sim = PipelineSim::new(&c, &snapshot);
        let mut p = uniform_pipeline(2, 4, 32, 4);
        p.num_micro_batches = 0;
        assert_eq!(sim.simulate(&p, 1).total_time, 0.0);
    }

    #[test]
    fn busy_time_is_total_compute_per_stage() {
        let c = coeffs(ModelSpec::llama2_7b());
        let cluster = Cluster::homogeneous(1, 8);
        let snapshot = cluster.snapshot();
        let sim = PipelineSim::new(&c, &snapshot);
        let p = uniform_pipeline(2, 4, 32, 8);
        let r = sim.simulate(&p, 1);
        assert_eq!(r.per_stage_busy.len(), 2);
        let expected = 8.0 * 16.0 * c.zeta(1, 4);
        assert!((r.per_stage_busy[0] - expected).abs() / expected < 1e-9);
        // Busy time never exceeds the makespan.
        for &b in &r.per_stage_busy {
            assert!(b <= r.total_time + 1e-9);
        }
    }
}
