//! `malleus-sim` — a deterministic simulator of hybrid-parallel LLM training.
//!
//! The original Malleus system executes real training on 64 A800 GPUs through
//! the Hetu deep-learning system.  This crate substitutes that execution
//! substrate with an analytic / event-driven simulator so the reproduction can
//! run anywhere: given a [`malleus_core::ParallelizationPlan`], the current
//! per-GPU straggling rates and the profiled model coefficients, it produces a
//! per-step [`step::StepReport`] containing the step time, per-GPU busy times
//! (consumed by the profiler), peak memory, and MFU.
//!
//! Components:
//!
//! * [`collective`] — time models for ring all-reduce, reduce-scatter,
//!   all-gather, point-to-point activation transfers and batched send-recv;
//! * [`pipeline`] — an event-driven 1F1B schedule simulator honouring
//!   non-uniform stages, layers and micro-batch counts;
//! * [`step`] — a full training step (pipelines + ZeRO-1 gradient
//!   synchronization + optimizer update) plus MFU accounting;
//! * [`memory`] — per-GPU peak-memory accounting and OOM detection;
//! * [`migration`] — migration and checkpoint/restart time models (§5.1, §7.2);
//! * [`zero3`] — a DeepSpeed-style ZeRO-3 (fully-sharded data parallel)
//!   execution model used by the baseline comparison.

pub mod collective;
pub mod memory;
pub mod migration;
pub mod pipeline;
pub mod step;
pub mod zero3;

pub use memory::{MemoryReport, OomError};
pub use migration::{migration_time, restart_time, MigrationCost};
pub use pipeline::PipelineSim;
pub use step::{simulate_step, StepReport, TrainingSimulator};
pub use zero3::{simulate_zero3_step, Zero3Config};
