//! Full training-step simulation: 1F1B pipelines, ZeRO-1 gradient
//! synchronization across data-parallel replicas, optimizer update, MFU and
//! per-GPU accounting.

use crate::collective::allreduce_time;
use crate::memory::{check_memory, MemoryReport, OomError};
use crate::pipeline::PipelineSim;
use malleus_cluster::ClusterSnapshot;
use malleus_core::{CostModel, ParallelizationPlan};
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};

/// Report of one simulated training step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// End-to-end step time in seconds.
    pub step_time: f64,
    /// Compute+P2P time of each pipeline (before gradient sync).
    pub pipeline_times: Vec<f64>,
    /// Gradient reduce-scatter + parameter all-gather time.
    pub grad_sync_time: f64,
    /// Optimizer-update time.
    pub optimizer_time: f64,
    /// Per-GPU busy (compute) seconds, indexed by GPU id.
    pub per_gpu_busy: Vec<f64>,
    /// Per-GPU work units (layer × micro-batch) processed, indexed by GPU id.
    /// The profiler divides busy time by work units to estimate straggling
    /// rates.
    pub per_gpu_work_units: Vec<f64>,
    /// Model FLOPS utilization over the *active* GPUs.
    pub mfu: f64,
    /// Per-GPU peak memory report.
    pub memory: MemoryReport,
}

/// Simulator bundling the profiled coefficients and a cost model.
#[derive(Debug, Clone)]
pub struct TrainingSimulator {
    /// Cost model (shared with the planner so memory accounting matches).
    pub cost: CostModel,
}

impl TrainingSimulator {
    /// Create a simulator from profiled coefficients.
    pub fn new(coeffs: ProfiledCoefficients) -> Self {
        Self {
            cost: CostModel::new(coeffs),
        }
    }

    /// Convenience accessor.
    pub fn coeffs(&self) -> &ProfiledCoefficients {
        &self.cost.coeffs
    }

    /// Simulate one training step of `plan` under the given straggler
    /// situation.
    pub fn step(
        &self,
        plan: &ParallelizationPlan,
        snapshot: &ClusterSnapshot,
    ) -> Result<StepReport, OomError> {
        let coeffs = &self.cost.coeffs;
        let num_gpus = snapshot.num_gpus();
        let memory = check_memory(&self.cost, plan, num_gpus)?;

        let pipeline_sim = PipelineSim::new(coeffs, snapshot);
        let mut pipeline_times = Vec::with_capacity(plan.dp());
        let mut per_gpu_busy = vec![0.0_f64; num_gpus];
        let mut per_gpu_work_units = vec![0.0_f64; num_gpus];

        for pipeline in &plan.pipelines {
            let result = pipeline_sim.simulate(pipeline, plan.micro_batch_size);
            pipeline_times.push(result.total_time);
            for (j, stage) in pipeline.stages.iter().enumerate() {
                let group_rate = stage.group.max_rate(snapshot);
                let busy_at_max = result.per_stage_busy[j];
                let work_units = stage.layers as f64 * pipeline.num_micro_batches as f64;
                for gpu in &stage.group.gpus {
                    let own_rate = snapshot.rate(*gpu);
                    // A faster member of the group finishes its share earlier
                    // and waits; its *busy* time scales with its own rate.
                    per_gpu_busy[gpu.index()] += busy_at_max / group_rate * own_rate;
                    per_gpu_work_units[gpu.index()] += work_units;
                }
            }
        }

        // ZeRO-1 gradient synchronization across data-parallel replicas: each
        // layer's gradients are reduce-scattered and the updated parameters
        // all-gathered, which together cost about one all-reduce of the fp16
        // gradients over the inter-node fabric.  The busiest GPU bounds the
        // time.
        let dp = plan.dp();
        let grad_sync_time = if dp <= 1 {
            0.0
        } else {
            let hw = &coeffs.hardware;
            plan.pipelines
                .iter()
                .flat_map(|p| p.stages.iter())
                .map(|stage| {
                    let bytes = stage.layers as f64
                        * coeffs.gradient_bytes_per_layer_slice(stage.group.tp_degree());
                    allreduce_time(hw, bytes, dp, hw.inter_node_bandwidth)
                })
                .fold(0.0, f64::max)
        };

        // Optimizer update: streaming over the local shard of the fp32 states.
        let max_layers_per_gpu = plan
            .pipelines
            .iter()
            .flat_map(|p| p.stages.iter())
            .map(|s| s.layers as f64 / s.group.tp_degree() as f64)
            .fold(0.0, f64::max);
        let optimizer_bytes =
            max_layers_per_gpu * coeffs.state_bytes_per_layer() / dp.max(1) as f64;
        let optimizer_time = optimizer_bytes / 1.5e12; // HBM-bandwidth bound

        let compute_time = pipeline_times.iter().copied().fold(0.0, f64::max);
        let step_time = compute_time + grad_sync_time + optimizer_time;

        let active = plan.active_gpus().len().max(1);
        let mfu = coeffs.step_flops(plan.global_batch_size())
            / (step_time * active as f64 * coeffs.hardware.gpu_peak_flops);

        Ok(StepReport {
            step_time,
            pipeline_times,
            grad_sync_time,
            optimizer_time,
            per_gpu_busy,
            per_gpu_work_units,
            mfu,
            memory,
        })
    }
}

/// One-shot convenience wrapper around [`TrainingSimulator::step`].
pub fn simulate_step(
    coeffs: &ProfiledCoefficients,
    plan: &ParallelizationPlan,
    snapshot: &ClusterSnapshot,
) -> Result<StepReport, OomError> {
    TrainingSimulator::new(coeffs.clone()).step(plan, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_model::{HardwareParams, ModelSpec};

    fn simulator(spec: ModelSpec) -> TrainingSimulator {
        TrainingSimulator::new(ProfiledCoefficients::derive(
            spec,
            HardwareParams::a800_cluster(),
        ))
    }

    fn uniform_plan_32b() -> ParallelizationPlan {
        let gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
        ParallelizationPlan::uniform(&gpus, 2, 4, 4, 60, 64, 1).unwrap()
    }

    #[test]
    fn healthy_step_time_is_plausible_for_32b() {
        // The paper reports ~11.6 s/step for the 32B model on 32 GPUs.  The
        // simulator should land in the same order of magnitude (seconds to a
        // few tens of seconds).
        let sim = simulator(ModelSpec::llama2_32b());
        let cluster = Cluster::homogeneous(4, 8);
        let report = sim.step(&uniform_plan_32b(), &cluster.snapshot()).unwrap();
        assert!(
            report.step_time > 2.0 && report.step_time < 60.0,
            "step time {}",
            report.step_time
        );
        assert!(report.mfu > 0.2 && report.mfu < 0.7, "mfu {}", report.mfu);
    }

    #[test]
    fn straggler_roughly_multiplies_step_time() {
        let sim = simulator(ModelSpec::llama2_32b());
        let plan = uniform_plan_32b();
        let mut cluster = Cluster::homogeneous(4, 8);
        let healthy = sim.step(&plan, &cluster.snapshot()).unwrap().step_time;
        cluster.set_rate(GpuId(0), 5.42);
        let straggled = sim.step(&plan, &cluster.snapshot()).unwrap().step_time;
        // A uniform plan is gated by the straggler: slowdown approaches x.
        assert!(straggled > healthy * 3.0, "{straggled} vs {healthy}");
        assert!(straggled < healthy * 6.0);
    }

    #[test]
    fn per_gpu_busy_reflects_individual_rates() {
        let sim = simulator(ModelSpec::llama2_32b());
        let plan = uniform_plan_32b();
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(0), 2.57);
        let report = sim.step(&plan, &cluster.snapshot()).unwrap();
        // GPU 0 is 2.57× busier per work unit than its healthy TP peers.
        let unit0 = report.per_gpu_busy[0] / report.per_gpu_work_units[0];
        let unit1 = report.per_gpu_busy[1] / report.per_gpu_work_units[1];
        assert!((unit0 / unit1 - 2.57).abs() < 0.01);
    }

    #[test]
    fn oom_is_reported_for_infeasible_plan() {
        let sim = simulator(ModelSpec::llama2_110b());
        let gpus: Vec<GpuId> = (0..8).map(GpuId).collect();
        let plan = ParallelizationPlan::uniform(&gpus, 1, 1, 8, 80, 8, 1).unwrap();
        let cluster = Cluster::homogeneous(1, 8);
        assert!(sim.step(&plan, &cluster.snapshot()).is_err());
    }

    #[test]
    fn grad_sync_only_with_data_parallelism() {
        let sim = simulator(ModelSpec::llama2_7b());
        let cluster = Cluster::homogeneous(1, 8);
        let gpus: Vec<GpuId> = (0..8).map(GpuId).collect();
        let dp1 = ParallelizationPlan::uniform(&gpus, 1, 2, 4, 32, 8, 1).unwrap();
        let dp2 = ParallelizationPlan::uniform(&gpus, 2, 2, 2, 32, 8, 1).unwrap();
        let r1 = sim.step(&dp1, &cluster.snapshot()).unwrap();
        let r2 = sim.step(&dp2, &cluster.snapshot()).unwrap();
        assert_eq!(r1.grad_sync_time, 0.0);
        assert!(r2.grad_sync_time > 0.0);
    }

    #[test]
    fn simulator_agrees_with_planner_cost_model_within_15_percent() {
        // Table 3 claims the planner's estimate is within a few percent of the
        // measured time; our simulator adds P2P/sync overheads, so allow 15%.
        let sim = simulator(ModelSpec::llama2_32b());
        let plan = uniform_plan_32b();
        let cluster = Cluster::homogeneous(4, 8);
        let snapshot = cluster.snapshot();
        let simulated = sim.step(&plan, &snapshot).unwrap().step_time;
        let estimated = sim.cost.step_time(&plan, &snapshot);
        let gap = (simulated - estimated).abs() / simulated;
        assert!(gap < 0.15, "gap {gap}: sim {simulated} vs est {estimated}");
    }
}
