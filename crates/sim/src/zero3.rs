//! DeepSpeed-style ZeRO-3 (fully-sharded data parallel) execution model.
//!
//! The DeepSpeed baseline of the paper shards all model states across every
//! GPU and gathers each layer's parameters on demand in both the forward and
//! the backward pass.  Because those per-layer gathers are *globally
//! synchronous*, a single straggler stalls every GPU at every layer — which is
//! why the paper finds ZeRO-3 more straggler-sensitive than hybrid parallelism
//! (§7.2).  This module reproduces that behaviour analytically.

use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_model::{layer_flops_forward, MemoryModel, ProfiledCoefficients};
use serde::{Deserialize, Serialize};

/// Configuration of a ZeRO-3 / FSDP run (cf. Table 7's tuned configurations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Zero3Config {
    /// Ulysses-style sequence-parallel degree (1 = none).
    pub sequence_parallel: u32,
    /// Micro-batch size per data-parallel group.
    pub micro_batch_size: u64,
    /// Whether full activation checkpointing is enabled.
    pub activation_checkpointing: bool,
}

impl Default for Zero3Config {
    fn default() -> Self {
        Self {
            sequence_parallel: 2,
            micro_batch_size: 2,
            activation_checkpointing: true,
        }
    }
}

/// Result of a simulated ZeRO-3 step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Zero3Report {
    /// End-to-end step time in seconds.
    pub step_time: f64,
    /// Model FLOPS utilization.
    pub mfu: f64,
    /// Peak per-GPU memory in bytes.
    pub peak_memory_bytes: f64,
    /// Whether the configuration fits in device memory.
    pub memory_feasible: bool,
}

/// Simulate one ZeRO-3 training step over the given set of active GPUs.
pub fn simulate_zero3_step(
    coeffs: &ProfiledCoefficients,
    snapshot: &ClusterSnapshot,
    active_gpus: &[GpuId],
    global_batch_size: u64,
    config: &Zero3Config,
) -> Option<Zero3Report> {
    let n = active_gpus.len();
    if n == 0 {
        return None;
    }
    let sp = config.sequence_parallel.max(1) as usize;
    if !n.is_multiple_of(sp) {
        return None;
    }
    let dp_groups = n / sp;
    if dp_groups == 0 || global_batch_size < dp_groups as u64 {
        return None;
    }
    let spec = &coeffs.spec;
    let hw = &coeffs.hardware;
    let b = config.micro_batch_size.max(1);
    // Sequences per DP group, rounded up to full micro-batches.
    let seqs_per_group = global_batch_size.div_ceil(dp_groups as u64);
    let micro_iters = seqs_per_group.div_ceil(b);

    // The slowest participating GPU gates every per-layer gather.
    let max_rate = active_gpus
        .iter()
        .map(|g| snapshot.rate(*g))
        .fold(1.0_f64, f64::max);
    if !max_rate.is_finite() {
        return None;
    }

    // Per layer, per micro-batch: gather fp16 params, compute forward and
    // backward (sequence-parallel shards the tokens), re-gather for backward,
    // reduce-scatter the gradients.
    let param_bytes = spec.params_per_layer() as f64 * 2.0;
    let collective = |bytes: f64| {
        (n as f64 - 1.0) / n as f64 * bytes / hw.inter_node_bandwidth + hw.collective_latency
    };
    let gather_fwd = collective(param_bytes);
    let gather_bwd = collective(param_bytes);
    let reduce_grads = collective(param_bytes);
    let flops_fwd = layer_flops_forward(spec, b) / sp as f64;
    let recompute_factor = if config.activation_checkpointing {
        4.0
    } else {
        3.0
    };
    let compute = recompute_factor * flops_fwd / hw.effective_flops() * max_rate;
    let per_layer = gather_fwd + gather_bwd + reduce_grads + compute;
    let step_compute = micro_iters as f64 * spec.num_layers as f64 * per_layer;

    // Optimizer update over the local 1/n shard of the fp32 states.
    let optimizer_time = coeffs.memory.total_state_bytes(spec) / n as f64 / 1.5e12;
    let step_time = step_compute + optimizer_time;

    // Memory: the 1/n shard of all states, one layer's gathered parameters,
    // plus retained activations of the local micro-batch.
    let memory_model = if config.activation_checkpointing {
        MemoryModel::with_activation_checkpointing()
    } else {
        coeffs.memory.clone()
    };
    let state_shard = coeffs.memory.total_state_bytes(spec) / n as f64;
    let gathered_layer = param_bytes;
    let activations = spec.num_layers as f64
        * memory_model.activation_forward_bytes(spec, b, config.sequence_parallel);
    let logits = (b * spec.seq_len * spec.vocab_size) as f64 * 6.0 / sp as f64;
    let peak_memory_bytes = state_shard + gathered_layer + activations + logits;
    let memory_feasible = peak_memory_bytes <= hw.usable_memory_bytes();

    let mfu = coeffs.step_flops(global_batch_size) / (step_time * n as f64 * hw.gpu_peak_flops);

    Some(Zero3Report {
        step_time,
        mfu,
        peak_memory_bytes,
        memory_feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::Cluster;
    use malleus_model::{HardwareParams, ModelSpec};

    fn coeffs(spec: ModelSpec) -> ProfiledCoefficients {
        ProfiledCoefficients::derive(spec, HardwareParams::a800_cluster())
    }

    fn all_gpus(n: u32) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn healthy_zero3_step_is_plausible() {
        let c = coeffs(ModelSpec::llama2_70b());
        let cluster = Cluster::paper_testbed();
        let r = simulate_zero3_step(
            &c,
            &cluster.snapshot(),
            &all_gpus(64),
            64,
            &Zero3Config::default(),
        )
        .unwrap();
        assert!(r.step_time > 3.0 && r.step_time < 120.0, "{}", r.step_time);
        assert!(r.memory_feasible);
    }

    #[test]
    fn single_straggler_stalls_everything() {
        // ZeRO-3 is globally synchronous per layer: one straggler slows the
        // whole step roughly by its rate.
        let c = coeffs(ModelSpec::llama2_70b());
        let mut cluster = Cluster::paper_testbed();
        let healthy = simulate_zero3_step(
            &c,
            &cluster.snapshot(),
            &all_gpus(64),
            64,
            &Zero3Config::default(),
        )
        .unwrap()
        .step_time;
        cluster.set_rate(GpuId(0), 5.42);
        let straggled = simulate_zero3_step(
            &c,
            &cluster.snapshot(),
            &all_gpus(64),
            64,
            &Zero3Config::default(),
        )
        .unwrap()
        .step_time;
        assert!(straggled > healthy * 2.5, "{straggled} vs {healthy}");
    }

    #[test]
    fn without_activation_checkpointing_memory_grows() {
        let c = coeffs(ModelSpec::llama2_70b());
        let cluster = Cluster::paper_testbed();
        let with_ac = simulate_zero3_step(
            &c,
            &cluster.snapshot(),
            &all_gpus(64),
            64,
            &Zero3Config {
                activation_checkpointing: true,
                ..Zero3Config::default()
            },
        )
        .unwrap();
        let without_ac = simulate_zero3_step(
            &c,
            &cluster.snapshot(),
            &all_gpus(64),
            64,
            &Zero3Config {
                activation_checkpointing: false,
                ..Zero3Config::default()
            },
        )
        .unwrap();
        assert!(without_ac.peak_memory_bytes > with_ac.peak_memory_bytes);
        assert!(without_ac.step_time < with_ac.step_time);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let c = coeffs(ModelSpec::llama2_7b());
        let cluster = Cluster::paper_testbed();
        // Sequence-parallel degree not dividing the GPU count.
        let cfg = Zero3Config {
            sequence_parallel: 3,
            ..Zero3Config::default()
        };
        assert!(simulate_zero3_step(&c, &cluster.snapshot(), &all_gpus(64), 64, &cfg).is_none());
        // No GPUs.
        assert!(
            simulate_zero3_step(&c, &cluster.snapshot(), &[], 64, &Zero3Config::default())
                .is_none()
        );
    }

    #[test]
    fn failed_gpu_makes_step_impossible() {
        let c = coeffs(ModelSpec::llama2_7b());
        let mut cluster = Cluster::paper_testbed();
        cluster.set_rate(GpuId(0), f64::INFINITY);
        assert!(simulate_zero3_step(
            &c,
            &cluster.snapshot(),
            &all_gpus(64),
            64,
            &Zero3Config::default()
        )
        .is_none());
    }
}
