//! Communication-time models for the collectives used in hybrid-parallel
//! training.
//!
//! All models are standard α–β (latency–bandwidth) estimates: a ring collective
//! over `n` participants moves `2(n−1)/n · bytes` (all-reduce) or
//! `(n−1)/n · bytes` (reduce-scatter / all-gather) over the slowest link on the
//! ring.  The link bandwidth is NVLink when every participant shares a node and
//! InfiniBand otherwise.

use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_model::HardwareParams;

/// Pick the bandwidth of the slowest link among a set of participants: NVLink
/// if they are all on one node, otherwise the inter-node fabric.
pub fn group_bandwidth(hw: &HardwareParams, snapshot: &ClusterSnapshot, gpus: &[GpuId]) -> f64 {
    let mut nodes = gpus.iter().map(|g| snapshot.node_of(*g));
    match nodes.next() {
        None => hw.intra_node_bandwidth,
        Some(first) => {
            if nodes.all(|n| n == first) {
                hw.intra_node_bandwidth
            } else {
                hw.inter_node_bandwidth
            }
        }
    }
}

/// Ring all-reduce time of `bytes` across `n` participants.
pub fn allreduce_time(hw: &HardwareParams, bytes: f64, n: usize, bandwidth: f64) -> f64 {
    if n <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * (n - 1.0) / n * bytes / bandwidth + hw.collective_latency
}

/// Ring reduce-scatter (or all-gather) time of `bytes` across `n` participants.
pub fn reduce_scatter_time(hw: &HardwareParams, bytes: f64, n: usize, bandwidth: f64) -> f64 {
    if n <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let n = n as f64;
    (n - 1.0) / n * bytes / bandwidth + hw.collective_latency
}

/// Point-to-point transfer time of `bytes` between two GPUs.
pub fn p2p_time(
    hw: &HardwareParams,
    snapshot: &ClusterSnapshot,
    src: GpuId,
    dst: GpuId,
    bytes: f64,
) -> f64 {
    if src == dst || bytes <= 0.0 {
        return 0.0;
    }
    let bandwidth = if snapshot.node_of(src) == snapshot.node_of(dst) {
        hw.intra_node_bandwidth
    } else {
        hw.inter_node_bandwidth
    };
    bytes / bandwidth + hw.collective_latency
}

/// Time for a batched send-recv where each GPU `g` sends `out[g]` and receives
/// `in[g]` bytes, with `messages` fused message launches (§5.1 packs 4 layers
/// per message).  Transfers proceed in parallel; the busiest GPU's traffic over
/// the inter-node fabric bounds the time.
pub fn batched_send_recv_time(
    hw: &HardwareParams,
    per_gpu_bytes: &[(f64, f64)],
    messages: usize,
) -> f64 {
    let busiest = per_gpu_bytes
        .iter()
        .map(|(received, sent)| received + sent)
        .fold(0.0, f64::max);
    if busiest <= 0.0 {
        return 0.0;
    }
    busiest / hw.inter_node_bandwidth + messages as f64 * hw.collective_latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::Cluster;

    fn hw() -> HardwareParams {
        HardwareParams::a800_cluster()
    }

    #[test]
    fn bandwidth_depends_on_node_locality() {
        let snapshot = Cluster::homogeneous(2, 8).snapshot();
        let intra = group_bandwidth(&hw(), &snapshot, &[GpuId(0), GpuId(1)]);
        let inter = group_bandwidth(&hw(), &snapshot, &[GpuId(0), GpuId(8)]);
        assert!(intra > inter);
    }

    #[test]
    fn allreduce_scales_with_bytes_and_saturates_with_n() {
        let h = hw();
        let t1 = allreduce_time(&h, 1e9, 8, h.intra_node_bandwidth);
        let t2 = allreduce_time(&h, 2e9, 8, h.intra_node_bandwidth);
        assert!(t2 > t1 * 1.9);
        // All-reduce over 1 GPU is free.
        assert_eq!(allreduce_time(&h, 1e9, 1, h.intra_node_bandwidth), 0.0);
        // The 2(n-1)/n factor approaches 2 from below.
        let t64 = allreduce_time(&h, 1e9, 64, h.intra_node_bandwidth);
        assert!(t64 < 2.0 * 1e9 / h.intra_node_bandwidth + 1e-3);
    }

    #[test]
    fn reduce_scatter_is_cheaper_than_allreduce() {
        let h = hw();
        assert!(
            reduce_scatter_time(&h, 1e9, 8, h.inter_node_bandwidth)
                < allreduce_time(&h, 1e9, 8, h.inter_node_bandwidth)
        );
    }

    #[test]
    fn p2p_prefers_nvlink_within_a_node() {
        let h = hw();
        let snapshot = Cluster::homogeneous(2, 8).snapshot();
        let same = p2p_time(&h, &snapshot, GpuId(0), GpuId(1), 1e8);
        let cross = p2p_time(&h, &snapshot, GpuId(0), GpuId(8), 1e8);
        assert!(same < cross);
        assert_eq!(p2p_time(&h, &snapshot, GpuId(0), GpuId(0), 1e8), 0.0);
    }

    #[test]
    fn batched_send_recv_bounded_by_busiest_gpu() {
        let h = hw();
        let traffic = vec![(1e9, 0.0), (0.0, 1e9), (5e8, 5e8)];
        let t = batched_send_recv_time(&h, &traffic, 4);
        assert!(t >= 1e9 / h.inter_node_bandwidth);
        assert_eq!(batched_send_recv_time(&h, &[], 0), 0.0);
    }
}
