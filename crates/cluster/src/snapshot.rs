//! Immutable cluster snapshots consumed by the profiler and planner.

use crate::topology::GpuId;
use serde::{Deserialize, Serialize};

/// A point-in-time view of the cluster topology and the (observed or true)
/// per-GPU straggling rates.  This is the planner's sole input about hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Node index of each GPU (indexed by GPU id).
    pub node_of: Vec<u32>,
    /// Straggling rate of each GPU (indexed by GPU id).
    pub rates: Vec<f64>,
}

impl ClusterSnapshot {
    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.rates.len()
    }

    /// The GPUs hosted on a node, in id order.
    pub fn gpus_on_node(&self, node: u32) -> Vec<GpuId> {
        self.node_of
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == node)
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Straggling rate of a GPU.
    pub fn rate(&self, gpu: GpuId) -> f64 {
        self.rates[gpu.index()]
    }

    /// Node hosting a GPU.
    pub fn node_of(&self, gpu: GpuId) -> u32 {
        self.node_of[gpu.index()]
    }

    /// GPUs whose rate exceeds a threshold.
    pub fn stragglers(&self, threshold: f64) -> Vec<GpuId> {
        self.rates
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > threshold)
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Replace the rate of one GPU, returning a new snapshot (used by what-if
    /// analyses and the re-planning tests).
    pub fn with_rate(&self, gpu: GpuId, rate: f64) -> Self {
        let mut next = self.clone();
        next.rates[gpu.index()] = rate;
        next
    }

    /// Largest relative change of any GPU's rate w.r.t. another snapshot.
    /// The paper triggers re-planning when this exceeds 5%.
    pub fn max_relative_shift(&self, other: &ClusterSnapshot) -> f64 {
        self.rates
            .iter()
            .zip(other.rates.iter())
            .map(|(&a, &b)| {
                if a.is_infinite() && b.is_infinite() {
                    0.0
                } else if a.is_infinite() || b.is_infinite() {
                    f64::INFINITY
                } else {
                    (a - b).abs() / b.max(1e-12)
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Cluster;

    #[test]
    fn snapshot_queries() {
        let mut c = Cluster::homogeneous(2, 4);
        c.set_rate(GpuId(5), 2.57);
        let s = c.snapshot();
        assert_eq!(s.num_gpus(), 8);
        assert_eq!(
            s.gpus_on_node(1),
            vec![GpuId(4), GpuId(5), GpuId(6), GpuId(7)]
        );
        assert_eq!(s.rate(GpuId(5)), 2.57);
        assert_eq!(s.node_of(GpuId(5)), 1);
        assert_eq!(s.stragglers(1.05), vec![GpuId(5)]);
    }

    #[test]
    fn relative_shift_detects_changes() {
        let c = Cluster::homogeneous(1, 4);
        let a = c.snapshot();
        let b = a.with_rate(GpuId(2), 1.04);
        assert!(a.max_relative_shift(&b) < 0.05);
        let b = a.with_rate(GpuId(2), 1.2);
        assert!(a.max_relative_shift(&b) > 0.05);
        let b = a.with_rate(GpuId(2), f64::INFINITY);
        assert!(a.max_relative_shift(&b).is_infinite());
    }

    #[test]
    fn identical_snapshots_have_zero_shift() {
        let c = Cluster::homogeneous(1, 8);
        let s = c.snapshot();
        assert_eq!(s.max_relative_shift(&s.clone()), 0.0);
    }
}
