//! Immutable cluster snapshots consumed by the profiler and planner.

use crate::topology::GpuId;
use serde::{Deserialize, Serialize};

/// A point-in-time view of the cluster topology and the (observed or true)
/// per-GPU straggling rates.  This is the planner's sole input about hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Node index of each GPU (indexed by GPU id).
    pub node_of: Vec<u32>,
    /// Straggling rate of each GPU (indexed by GPU id).
    pub rates: Vec<f64>,
}

impl ClusterSnapshot {
    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.rates.len()
    }

    /// The GPUs hosted on a node, in id order.
    pub fn gpus_on_node(&self, node: u32) -> Vec<GpuId> {
        self.node_of
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == node)
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Straggling rate of a GPU.
    pub fn rate(&self, gpu: GpuId) -> f64 {
        self.rates[gpu.index()]
    }

    /// Node hosting a GPU.
    pub fn node_of(&self, gpu: GpuId) -> u32 {
        self.node_of[gpu.index()]
    }

    /// GPUs whose rate exceeds a threshold.
    pub fn stragglers(&self, threshold: f64) -> Vec<GpuId> {
        self.rates
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > threshold)
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Replace the rate of one GPU, returning a new snapshot (used by what-if
    /// analyses and the re-planning tests).
    pub fn with_rate(&self, gpu: GpuId, rate: f64) -> Self {
        let mut next = self.clone();
        next.rates[gpu.index()] = rate;
        next
    }

    /// A cheap structural fingerprint of the snapshot: FNV-1a over the node
    /// topology and the exact bit patterns of the straggling rates.  Two equal
    /// snapshots always share a fingerprint, so it can key memoization caches
    /// (e.g. the planner's shared grouping memo); collisions are possible and
    /// callers must confirm hits with a full equality check.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(mut h: u64, v: u64) -> u64 {
            for byte in v.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
            h
        }
        let mut h = mix(OFFSET, self.num_nodes as u64);
        for &n in &self.node_of {
            h = mix(h, n as u64);
        }
        for &r in &self.rates {
            h = mix(h, r.to_bits());
        }
        h
    }

    /// Whether another snapshot shares this one's structure: same node
    /// topology and the same availability pattern (a rate flipping between
    /// finite and infinite is a node/GPU loss or join, not a drift).
    /// Drift-only diffs — `same_structure` true — are the events the
    /// incremental replanner may warm-start; structural diffs route to full
    /// enumeration.
    pub fn same_structure(&self, other: &ClusterSnapshot) -> bool {
        self.num_nodes == other.num_nodes
            && self.node_of == other.node_of
            && self.rates.len() == other.rates.len()
            && self
                .rates
                .iter()
                .zip(other.rates.iter())
                .all(|(a, b)| a.is_finite() == b.is_finite())
    }

    /// Largest relative change of any GPU's rate w.r.t. another snapshot.
    /// The paper triggers re-planning when this exceeds 5%.
    pub fn max_relative_shift(&self, other: &ClusterSnapshot) -> f64 {
        self.rates
            .iter()
            .zip(other.rates.iter())
            .map(|(&a, &b)| {
                if a.is_infinite() && b.is_infinite() {
                    0.0
                } else if a.is_infinite() || b.is_infinite() {
                    f64::INFINITY
                } else {
                    (a - b).abs() / b.max(1e-12)
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Cluster;

    #[test]
    fn snapshot_queries() {
        let mut c = Cluster::homogeneous(2, 4);
        c.set_rate(GpuId(5), 2.57);
        let s = c.snapshot();
        assert_eq!(s.num_gpus(), 8);
        assert_eq!(
            s.gpus_on_node(1),
            vec![GpuId(4), GpuId(5), GpuId(6), GpuId(7)]
        );
        assert_eq!(s.rate(GpuId(5)), 2.57);
        assert_eq!(s.node_of(GpuId(5)), 1);
        assert_eq!(s.stragglers(1.05), vec![GpuId(5)]);
    }

    #[test]
    fn relative_shift_detects_changes() {
        let c = Cluster::homogeneous(1, 4);
        let a = c.snapshot();
        let b = a.with_rate(GpuId(2), 1.04);
        assert!(a.max_relative_shift(&b) < 0.05);
        let b = a.with_rate(GpuId(2), 1.2);
        assert!(a.max_relative_shift(&b) > 0.05);
        let b = a.with_rate(GpuId(2), f64::INFINITY);
        assert!(a.max_relative_shift(&b).is_infinite());
    }

    #[test]
    fn fingerprint_tracks_equality() {
        let mut c = Cluster::homogeneous(2, 8);
        let a = c.snapshot();
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        c.set_rate(GpuId(3), 2.57);
        let b = c.snapshot();
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Failures (infinite rates) are representable and distinguishable.
        c.set_rate(GpuId(3), f64::INFINITY);
        assert_ne!(b.fingerprint(), c.snapshot().fingerprint());
    }

    #[test]
    fn same_structure_distinguishes_drift_from_availability_changes() {
        let c = Cluster::homogeneous(2, 4);
        let a = c.snapshot();
        // Drift — even a large one — is not structural.
        assert!(a.same_structure(&a.with_rate(GpuId(3), 12.53)));
        // A failure (finite → infinite) is structural, and so is the
        // subsequent join (infinite → finite), at any rate.
        let failed = a.with_rate(GpuId(3), f64::INFINITY);
        assert!(!a.same_structure(&failed));
        assert!(!failed.same_structure(&failed.with_rate(GpuId(3), 2.57)));
        // Two snapshots with the same failure pattern but different drifts
        // share structure.
        assert!(failed.same_structure(&failed.with_rate(GpuId(0), 3.75)));
    }

    #[test]
    fn identical_snapshots_have_zero_shift() {
        let c = Cluster::homogeneous(1, 8);
        let s = c.snapshot();
        assert_eq!(s.max_relative_shift(&s.clone()), 0.0);
    }
}
