//! Straggler levels and events.
//!
//! The paper simulates stragglers by launching 1–3 (and, in the ablation, 8)
//! extra compute processes on a victim GPU.  The resulting slow-down factors
//! reported in the paper's case studies (Table 4, §7.3 and Figure 9) are used
//! here as the canonical level→rate mapping so that the reproduction's
//! scenarios are numerically comparable to the published plans.

use crate::topology::GpuId;
use serde::{Deserialize, Serialize};

/// Severity of an injected straggler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StragglerLevel {
    /// One interfering process (x ≈ 2.57).
    Level1,
    /// Two interfering processes (x ≈ 3.75).
    Level2,
    /// Three interfering processes (x ≈ 5.42).
    Level3,
    /// Eight interfering processes (x ≈ 12.53, used in the ablation study).
    Level8,
    /// A completely failed GPU (x = ∞).
    Failed,
    /// An arbitrary custom rate.
    Custom(f64),
}

impl StragglerLevel {
    /// The straggling rate associated with this level.
    ///
    /// Levels 1–3 and 8 use the values measured in the paper's case studies
    /// (`x₁₆ = 2.57`, `x₈ = 3.75`, `x₀ = 5.42` in Table 4, `x = 12.53` in
    /// Figure 9).  Other process counts interpolate linearly.
    pub fn rate(&self) -> f64 {
        match self {
            StragglerLevel::Level1 => 2.57,
            StragglerLevel::Level2 => 3.75,
            StragglerLevel::Level3 => 5.42,
            StragglerLevel::Level8 => 12.53,
            StragglerLevel::Failed => f64::INFINITY,
            StragglerLevel::Custom(r) => *r,
        }
    }

    /// Build a level from a number of interfering processes.
    pub fn from_process_count(processes: u32) -> Self {
        match processes {
            0 => StragglerLevel::Custom(1.0),
            1 => StragglerLevel::Level1,
            2 => StragglerLevel::Level2,
            3 => StragglerLevel::Level3,
            8 => StragglerLevel::Level8,
            n => StragglerLevel::Custom(1.0 + 1.44 * n as f64),
        }
    }
}

/// A change in the straggling rate of a single GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerEvent {
    /// The affected GPU.
    pub gpu: GpuId,
    /// Its new straggling rate.
    pub rate: f64,
}

impl StragglerEvent {
    /// Event setting a GPU to a given straggler level.
    pub fn new(gpu: GpuId, level: StragglerLevel) -> Self {
        Self {
            gpu,
            rate: level.rate(),
        }
    }

    /// Event marking a GPU as recovered (healthy).
    pub fn recovered(gpu: GpuId) -> Self {
        Self { gpu, rate: 1.0 }
    }

    /// Event marking a GPU as failed.
    pub fn failed(gpu: GpuId) -> Self {
        Self {
            gpu,
            rate: f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_rates_match_paper_case_studies() {
        assert_eq!(StragglerLevel::Level1.rate(), 2.57);
        assert_eq!(StragglerLevel::Level2.rate(), 3.75);
        assert_eq!(StragglerLevel::Level3.rate(), 5.42);
        assert_eq!(StragglerLevel::Level8.rate(), 12.53);
        assert!(StragglerLevel::Failed.rate().is_infinite());
    }

    #[test]
    fn process_count_mapping_is_monotone() {
        let mut prev = 1.0;
        for n in 1..=10 {
            let r = StragglerLevel::from_process_count(n).rate();
            assert!(
                r > prev || (n == 4 && r > 1.0),
                "rate at {n} processes = {r}"
            );
            if n <= 3 || n >= 8 {
                prev = r;
            }
        }
    }

    #[test]
    fn events_build_correctly() {
        let e = StragglerEvent::new(GpuId(7), StragglerLevel::Level2);
        assert_eq!(e.gpu, GpuId(7));
        assert_eq!(e.rate, 3.75);
        assert_eq!(StragglerEvent::recovered(GpuId(7)).rate, 1.0);
        assert!(StragglerEvent::failed(GpuId(7)).rate.is_infinite());
    }
}
