//! Cluster topology: GPUs, nodes and the dynamic per-GPU straggling rates.

use crate::snapshot::ClusterSnapshot;
use crate::straggler::StragglerEvent;
use serde::{Deserialize, Serialize};

/// Globally unique identifier of a GPU (index into the cluster's GPU list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuId(pub u32);

impl GpuId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// A physical GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gpu {
    /// Global identifier.
    pub id: GpuId,
    /// Node (server) hosting this GPU.
    pub node: u32,
    /// Index of the GPU within its node (0..gpus_per_node).
    pub local_index: u32,
}

/// A server hosting several GPUs connected by NVLink.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Node index.
    pub index: u32,
    /// GPUs hosted by this node.
    pub gpus: Vec<GpuId>,
}

/// A GPU cluster with dynamic per-GPU straggling rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    nodes: Vec<Node>,
    gpus: Vec<Gpu>,
    /// Current true straggling rate of each GPU (`1.0` = healthy,
    /// `f64::INFINITY` = failed).
    rates: Vec<f64>,
}

impl Cluster {
    /// Build a homogeneous cluster of `num_nodes` servers with `gpus_per_node`
    /// GPUs each, all healthy.
    pub fn homogeneous(num_nodes: u32, gpus_per_node: u32) -> Self {
        assert!(num_nodes > 0 && gpus_per_node > 0);
        let mut nodes = Vec::with_capacity(num_nodes as usize);
        let mut gpus = Vec::with_capacity((num_nodes * gpus_per_node) as usize);
        for n in 0..num_nodes {
            let mut node_gpus = Vec::with_capacity(gpus_per_node as usize);
            for l in 0..gpus_per_node {
                let id = GpuId(n * gpus_per_node + l);
                node_gpus.push(id);
                gpus.push(Gpu {
                    id,
                    node: n,
                    local_index: l,
                });
            }
            nodes.push(Node {
                index: n,
                gpus: node_gpus,
            });
        }
        let rates = vec![1.0; gpus.len()];
        Self { nodes, gpus, rates }
    }

    /// The paper's testbed: 8 nodes × 8 A800 GPUs = 64 GPUs.
    pub fn paper_testbed() -> Self {
        Self::homogeneous(8, 8)
    }

    /// Number of GPUs in the cluster.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// GPUs per node (assumes a homogeneous layout).
    pub fn gpus_per_node(&self) -> usize {
        self.nodes.first().map(|n| n.gpus.len()).unwrap_or(0)
    }

    /// All GPUs.
    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node hosting a GPU.
    pub fn node_of(&self, gpu: GpuId) -> u32 {
        self.gpus[gpu.index()].node
    }

    /// GPU ids hosted on a node.
    pub fn gpus_on_node(&self, node: u32) -> &[GpuId] {
        &self.nodes[node as usize].gpus
    }

    /// Current true straggling rate of a GPU.
    pub fn rate(&self, gpu: GpuId) -> f64 {
        self.rates[gpu.index()]
    }

    /// All current rates, indexed by GPU id.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Set the straggling rate of a GPU (must be `>= 1` or infinite).
    pub fn set_rate(&mut self, gpu: GpuId, rate: f64) {
        assert!(
            rate >= 1.0 || rate.is_infinite(),
            "straggling rate must be >= 1 (or +inf for a failure), got {rate}"
        );
        self.rates[gpu.index()] = rate;
    }

    /// Reset every GPU to healthy (`rate = 1`).
    pub fn reset_rates(&mut self) {
        for r in &mut self.rates {
            *r = 1.0;
        }
    }

    /// Apply a straggler event.
    pub fn apply_event(&mut self, event: &StragglerEvent) {
        self.set_rate(event.gpu, event.rate);
    }

    /// Apply a whole set of rates (e.g. a trace situation), resetting all other
    /// GPUs to healthy first.
    pub fn apply_situation(&mut self, rates: &[(GpuId, f64)]) {
        self.reset_rates();
        for &(gpu, rate) in rates {
            self.set_rate(gpu, rate);
        }
    }

    /// Whether a GPU has failed (infinite rate).
    pub fn is_failed(&self, gpu: GpuId) -> bool {
        self.rates[gpu.index()].is_infinite()
    }

    /// GPUs whose rate exceeds the given threshold (the stragglers).
    pub fn stragglers(&self, threshold: f64) -> Vec<GpuId> {
        self.gpus
            .iter()
            .filter(|g| self.rates[g.id.index()] > threshold)
            .map(|g| g.id)
            .collect()
    }

    /// An immutable snapshot of the topology and current rates, as consumed by
    /// the profiler and the planner.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            num_nodes: self.num_nodes(),
            node_of: self.gpus.iter().map(|g| g.node).collect(),
            rates: self.rates.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_layout() {
        let c = Cluster::homogeneous(4, 8);
        assert_eq!(c.num_gpus(), 32);
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.gpus_per_node(), 8);
        assert_eq!(c.node_of(GpuId(9)), 1);
        assert_eq!(c.gpus_on_node(2).len(), 8);
        assert_eq!(c.gpus_on_node(3)[0], GpuId(24));
    }

    #[test]
    fn paper_testbed_has_64_gpus() {
        let c = Cluster::paper_testbed();
        assert_eq!(c.num_gpus(), 64);
        assert_eq!(c.num_nodes(), 8);
    }

    #[test]
    fn rates_default_to_healthy_and_can_be_set() {
        let mut c = Cluster::homogeneous(1, 8);
        assert!(c.rates().iter().all(|&r| r == 1.0));
        c.set_rate(GpuId(3), 5.42);
        assert_eq!(c.rate(GpuId(3)), 5.42);
        assert_eq!(c.stragglers(1.05), vec![GpuId(3)]);
        c.reset_rates();
        assert!(c.stragglers(1.05).is_empty());
    }

    #[test]
    fn failure_is_infinite_rate() {
        let mut c = Cluster::homogeneous(1, 4);
        c.set_rate(GpuId(1), f64::INFINITY);
        assert!(c.is_failed(GpuId(1)));
        assert!(!c.is_failed(GpuId(0)));
    }

    #[test]
    #[should_panic(expected = "straggling rate must be >= 1")]
    fn rates_below_one_are_rejected() {
        let mut c = Cluster::homogeneous(1, 2);
        c.set_rate(GpuId(0), 0.5);
    }

    #[test]
    fn apply_situation_resets_previous_stragglers() {
        let mut c = Cluster::homogeneous(2, 8);
        c.apply_situation(&[(GpuId(0), 2.57)]);
        c.apply_situation(&[(GpuId(5), 3.75)]);
        assert_eq!(c.rate(GpuId(0)), 1.0);
        assert_eq!(c.rate(GpuId(5)), 3.75);
    }

    #[test]
    fn snapshot_reflects_topology_and_rates() {
        let mut c = Cluster::homogeneous(2, 4);
        c.set_rate(GpuId(6), 2.57);
        let s = c.snapshot();
        assert_eq!(s.num_nodes, 2);
        assert_eq!(s.node_of[6], 1);
        assert_eq!(s.rates[6], 2.57);
    }
}
