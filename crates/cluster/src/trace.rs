//! Straggler traces: the paper's six situations (S1–S6) and synthetic
//! generators for robustness testing.
//!
//! §7.1 defines the evaluation trace as a sequence of straggler *situations*:
//!
//! * **S1** — one level-1 straggler;
//! * **S2** — one level-3 straggler;
//! * **S3** — one level-1 and one level-3 straggler on different nodes;
//! * **S4** — one level-1, one level-2 and one level-3 straggler on three
//!   different nodes;
//! * **S5** — eight level-1 stragglers on one node plus one level-2 straggler
//!   on another node;
//! * **S6** — eight level-1 stragglers on the same node.
//!
//! The end-to-end experiment runs Normal → S1 → … → S6 → Normal so both the
//! appearance and the disappearance of stragglers are exercised.

use crate::straggler::StragglerLevel;
use crate::topology::{Cluster, GpuId};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A named straggler situation: the set of GPUs that deviate from healthy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Situation {
    /// Human-readable name (e.g. `"S3"`).
    pub name: String,
    /// Straggling GPUs and their rates; every unlisted GPU is healthy.
    pub rates: Vec<(GpuId, f64)>,
}

impl Situation {
    /// The all-healthy situation.
    pub fn normal() -> Self {
        Self {
            name: "Normal".to_string(),
            rates: Vec::new(),
        }
    }

    /// Number of straggling GPUs in this situation.
    pub fn num_stragglers(&self) -> usize {
        self.rates.iter().filter(|(_, r)| *r > 1.0).count()
    }

    /// The full per-GPU rate vector for a cluster of `num_gpus` devices.
    pub fn rate_vector(&self, num_gpus: usize) -> Vec<f64> {
        let mut rates = vec![1.0; num_gpus];
        for &(gpu, rate) in &self.rates {
            rates[gpu.index()] = rate;
        }
        rates
    }
}

/// The paper's canonical situations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperSituation {
    /// No stragglers.
    Normal,
    /// One level-1 straggler.
    S1,
    /// One level-3 straggler.
    S2,
    /// Level-1 + level-3 on different nodes.
    S3,
    /// Level-1 + level-2 + level-3 on different nodes.
    S4,
    /// Eight level-1 on one node + one level-2 on another node.
    S5,
    /// Eight level-1 on one node.
    S6,
}

impl PaperSituation {
    /// All situations in trace order (without the surrounding Normal phases).
    pub fn all() -> [PaperSituation; 6] {
        [
            PaperSituation::S1,
            PaperSituation::S2,
            PaperSituation::S3,
            PaperSituation::S4,
            PaperSituation::S5,
            PaperSituation::S6,
        ]
    }

    /// Short name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            PaperSituation::Normal => "Normal",
            PaperSituation::S1 => "S1",
            PaperSituation::S2 => "S2",
            PaperSituation::S3 => "S3",
            PaperSituation::S4 => "S4",
            PaperSituation::S5 => "S5",
            PaperSituation::S6 => "S6",
        }
    }

    /// Materialize the situation onto a concrete cluster.  Straggling GPUs are
    /// placed deterministically: the first straggler on GPU 0 of node 0, the
    /// second on GPU 0 of node 1, and so on, matching the placements used in
    /// the paper's case studies (x₀, x₈, x₁₆ …).
    pub fn situation(&self, cluster: &Cluster) -> Situation {
        let gpn = cluster.gpus_per_node() as u32;
        let gpu_on = |node: u32, local: u32| GpuId(node * gpn + local);
        let rates = match self {
            PaperSituation::Normal => vec![],
            PaperSituation::S1 => vec![(gpu_on(0, 0), StragglerLevel::Level1.rate())],
            PaperSituation::S2 => vec![(gpu_on(0, 0), StragglerLevel::Level3.rate())],
            PaperSituation::S3 => vec![
                (gpu_on(0, 0), StragglerLevel::Level3.rate()),
                (gpu_on(1, 0), StragglerLevel::Level1.rate()),
            ],
            PaperSituation::S4 => vec![
                (gpu_on(0, 0), StragglerLevel::Level3.rate()),
                (gpu_on(1, 0), StragglerLevel::Level2.rate()),
                (gpu_on(2, 0), StragglerLevel::Level1.rate()),
            ],
            PaperSituation::S5 => {
                let mut v: Vec<(GpuId, f64)> =
                    (0..gpn.min(8)).map(|l| (gpu_on(0, l), 2.62)).collect();
                v.push((gpu_on(1, 0), 3.8));
                v
            }
            PaperSituation::S6 => (0..gpn.min(8)).map(|l| (gpu_on(0, l), 2.62)).collect(),
        };
        Situation {
            name: self.name().to_string(),
            rates,
        }
    }
}

/// One phase of a trace: a situation held for a number of training iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePhase {
    /// The straggler situation active during this phase.
    pub situation: Situation,
    /// Number of training iterations the situation persists.
    pub iterations: u32,
}

/// A full straggler trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Ordered phases.
    pub phases: Vec<TracePhase>,
}

impl Trace {
    /// The paper's end-to-end trace: Normal → S1 → S2 → S3 → S4 → S5 → S6 →
    /// Normal, each held for `iterations_per_phase` iterations.
    pub fn paper_trace(cluster: &Cluster, iterations_per_phase: u32) -> Self {
        let mut phases = Vec::new();
        phases.push(TracePhase {
            situation: Situation::normal(),
            iterations: iterations_per_phase,
        });
        for s in PaperSituation::all() {
            phases.push(TracePhase {
                situation: s.situation(cluster),
                iterations: iterations_per_phase,
            });
        }
        phases.push(TracePhase {
            situation: Situation::normal(),
            iterations: iterations_per_phase,
        });
        Self { phases }
    }

    /// A reproducible random trace: each phase picks a random subset of GPUs
    /// and random straggler levels; occasionally all stragglers vanish.
    pub fn random(
        cluster: &Cluster,
        num_phases: usize,
        iterations_per_phase: u32,
        max_stragglers_per_phase: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = [
            StragglerLevel::Level1,
            StragglerLevel::Level2,
            StragglerLevel::Level3,
            StragglerLevel::Level8,
        ];
        let mut phases = Vec::with_capacity(num_phases);
        for p in 0..num_phases {
            let count = if rng.random_bool(0.2) {
                0
            } else {
                rng.random_range(1..=max_stragglers_per_phase.max(1))
            };
            let mut chosen: Vec<u32> = (0..cluster.num_gpus() as u32).collect();
            chosen.shuffle(&mut rng);
            chosen.truncate(count);
            let rates = chosen
                .into_iter()
                .map(|g| {
                    let level = levels[rng.random_range(0..levels.len())];
                    (GpuId(g), level.rate())
                })
                .collect();
            phases.push(TracePhase {
                situation: Situation {
                    name: format!("R{p}"),
                    rates,
                },
                iterations: iterations_per_phase,
            });
        }
        Self { phases }
    }

    /// Total number of iterations across all phases.
    pub fn total_iterations(&self) -> u64 {
        self.phases.iter().map(|p| p.iterations as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_situations_have_expected_straggler_counts() {
        let cluster = Cluster::paper_testbed();
        let counts: Vec<usize> = PaperSituation::all()
            .iter()
            .map(|s| s.situation(&cluster).num_stragglers())
            .collect();
        assert_eq!(counts, vec![1, 1, 2, 3, 9, 8]);
    }

    #[test]
    fn s3_and_s4_stragglers_live_on_distinct_nodes() {
        let cluster = Cluster::paper_testbed();
        for s in [PaperSituation::S3, PaperSituation::S4] {
            let sit = s.situation(&cluster);
            let nodes: std::collections::HashSet<u32> =
                sit.rates.iter().map(|(g, _)| cluster.node_of(*g)).collect();
            assert_eq!(nodes.len(), sit.rates.len());
        }
    }

    #[test]
    fn s5_is_node_plus_gpu_granular() {
        let cluster = Cluster::paper_testbed();
        let sit = PaperSituation::S5.situation(&cluster);
        let node0: Vec<_> = sit
            .rates
            .iter()
            .filter(|(g, _)| cluster.node_of(*g) == 0)
            .collect();
        assert_eq!(node0.len(), 8);
        assert_eq!(sit.num_stragglers(), 9);
    }

    #[test]
    fn paper_trace_starts_and_ends_normal() {
        let cluster = Cluster::paper_testbed();
        let trace = Trace::paper_trace(&cluster, 20);
        assert_eq!(trace.phases.len(), 8);
        assert_eq!(trace.phases.first().unwrap().situation.num_stragglers(), 0);
        assert_eq!(trace.phases.last().unwrap().situation.num_stragglers(), 0);
        assert_eq!(trace.total_iterations(), 160);
    }

    #[test]
    fn rate_vector_expands_to_full_cluster() {
        let cluster = Cluster::paper_testbed();
        let sit = PaperSituation::S2.situation(&cluster);
        let v = sit.rate_vector(cluster.num_gpus());
        assert_eq!(v.len(), 64);
        assert_eq!(v[0], 5.42);
        assert!(v[1..].iter().all(|&r| r == 1.0));
    }

    #[test]
    fn random_trace_is_reproducible() {
        let cluster = Cluster::paper_testbed();
        let a = Trace::random(&cluster, 10, 5, 4, 42);
        let b = Trace::random(&cluster, 10, 5, 4, 42);
        let c = Trace::random(&cluster, 10, 5, 4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for phase in &a.phases {
            assert!(phase.situation.num_stragglers() <= 4);
        }
    }
}
