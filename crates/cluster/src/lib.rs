//! `malleus-cluster` — the simulated GPU cluster substrate.
//!
//! The paper runs on 8 servers × 8 A800 GPUs connected by NVLink (intra-node)
//! and InfiniBand (inter-node), and *simulates* stragglers by launching
//! interfering compute processes on victim GPUs.  This crate reproduces that
//! substrate: a [`topology::Cluster`] of nodes and GPUs, per-GPU dynamic
//! straggling rates, the paper's straggler levels and situations (S1–S6), and
//! trace generators that drive the end-to-end experiments.
//!
//! The straggling rate `x ≥ 1` of a GPU is the factor by which it is slower
//! than a healthy GPU (`x = 1` means healthy, `x = ∞` means failed). Rates are
//! the *only* channel through which stragglers influence the planner — exactly
//! as in the paper, where the profiler reduces all root causes (thermal
//! throttling, jitter, co-located jobs) to this one number.

pub mod snapshot;
pub mod straggler;
pub mod topology;
pub mod trace;

pub use snapshot::ClusterSnapshot;
pub use straggler::{StragglerEvent, StragglerLevel};
pub use topology::{Cluster, Gpu, GpuId, Node};
pub use trace::{PaperSituation, Situation, Trace, TracePhase};
