//! `malleus-wire` — hand-rolled length-prefixed binary codec for the
//! standalone plan server.
//!
//! The workspace's offline `serde` shim is a no-op marker (derives compile but
//! produce no serialization), so the cross-process transport cannot lean on
//! `serde_json`/`bincode`.  This crate provides an explicit, versioned binary
//! encoding instead:
//!
//! * the [`Wire`] trait — `encode` into an [`Encoder`], `decode` from a
//!   [`Decoder`] — implemented here for every planner type that travels
//!   between a `PlanClient` and the daemon (`PlanOutcome`, `PlannedOutcome`,
//!   `PlanError`, `ParallelizationPlan`, `PlannerConfig`,
//!   `ProfiledCoefficients`, `ClusterSnapshot`, `ScoredLattice`, ...), and by
//!   `malleus_service::server` for its own request/response/error types;
//! * framing ([`write_frame`] / [`read_frame`]): each message is prefixed
//!   with a fixed 10-byte header carrying a magic, the protocol version and
//!   the payload length, so a reader can reject foreign/corrupt/oversized
//!   traffic *before* allocating for it.
//!
//! Determinism contract: `f64` values are encoded as their IEEE-754 bit
//! patterns ([`f64::to_bits`]) and decoded with [`f64::from_bits`], so a plan
//! that crosses the wire is **byte-identical** to the plan the planner
//! produced — the facade's equivalence harness proves socket-path plans equal
//! the direct `Planner::plan` oracle bit for bit.
//!
//! Robustness contract: decoding never panics and never allocates more than
//! the input could justify.  Malformed input surfaces as a typed
//! [`WireError`] — truncated buffers, length prefixes past the frame cap,
//! unknown enum tags, unknown protocol versions, trailing garbage.  Length
//! prefixes are validated against the bytes actually available before any
//! `Vec` reservation, so a hostile "2^60 elements follow" prefix costs
//! nothing.

use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_core::{
    BackendId, LatticeEntry, Parallelism, ParallelizationPlan, PipelinePlan, PlanError,
    PlanOutcome, PlanTiming, PlannedOutcome, PlannerConfig, ScoredLattice, StagePlan, TpGroup,
};
use malleus_model::{HardwareParams, MemoryModel, ModelSpec, ProfiledCoefficients};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// Protocol version carried in every frame header.
pub const WIRE_VERSION: u16 = 1;

/// Frame magic: rejects non-malleus traffic on the first four bytes.
pub const FRAME_MAGIC: [u8; 4] = *b"MWIR";

/// Frame header size: magic (4) + version (2) + payload length (4).
pub const FRAME_HEADER_LEN: usize = 10;

/// Default cap on a frame payload (64 MiB — a 512-GPU lattice-bearing
/// outcome is well under 1 MiB, so this is generous without allowing a
/// hostile peer to command an unbounded allocation).
pub const DEFAULT_MAX_FRAME_LEN: usize = 64 << 20;

/// Typed decode/framing failures.  Every malformed-input path lands here —
/// the codec never panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A length prefix exceeded the configured cap.
    Oversized {
        /// The claimed length.
        len: usize,
        /// The cap it violated.
        cap: usize,
    },
    /// An enum tag no variant claims (wrong type, corrupt stream, or a newer
    /// peer).
    UnknownTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u64,
    },
    /// The frame header carried a protocol version this build does not speak.
    UnknownVersion {
        /// The version in the header.
        version: u16,
    },
    /// The frame header did not start with [`FRAME_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// A complete value decoded but bytes remained — the payload is not what
    /// the caller thinks it is.
    TrailingBytes {
        /// Bytes left over.
        remaining: usize,
    },
    /// A field decoded but held an impossible value (invalid UTF-8, a bool
    /// that is neither 0 nor 1, a u64 that does not fit `usize`).
    Corrupt {
        /// The field/type that was corrupt.
        what: &'static str,
    },
    /// The underlying stream failed while reading/writing a frame.
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            WireError::Oversized { len, cap } => {
                write!(f, "length prefix {len} exceeds the cap {cap}")
            }
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::UnknownVersion { version } => {
                write!(f, "unknown wire protocol version {version}")
            }
            WireError::BadMagic { found } => write!(f, "bad frame magic {found:?}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
            WireError::Corrupt { what } => write!(f, "corrupt {what}"),
            WireError::Io { kind, detail } => write!(f, "frame I/O failed ({kind:?}): {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

/// Append-only encode buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` so 32- and 64-bit peers interoperate.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Exact IEEE-754 bit pattern — the byte-identity contract.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked decode cursor over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let truncated = WireError::Truncated {
            needed: n,
            available: self.remaining(),
        };
        // `.get` (never slice indexing) so a hostile length can only produce
        // a typed error, not a panic in the request path.
        let end = self.pos.checked_add(n).ok_or(truncated.clone())?;
        let slice = self.buf.get(self.pos..end).ok_or(truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// [`take`](Self::take) into a fixed-size array (for `from_le_bytes`),
    /// avoiding the panicking `try_into().unwrap()` conversion.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array::<2>()?))
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array::<4>()?))
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array::<8>()?))
    }

    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.get_u64()?).map_err(|_| WireError::Corrupt { what: "usize" })
    }

    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag {
                what: "bool",
                tag: tag as u64,
            }),
        }
    }

    /// A length prefix for a sequence whose elements each occupy at least one
    /// byte: validated against the remaining input *before* any allocation,
    /// so a hostile count can never command memory the stream cannot back.
    pub fn get_seq_len(&mut self) -> Result<usize, WireError> {
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(WireError::Truncated {
                needed: len,
                available: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_seq_len()?;
        self.take(len)
    }

    /// Length-prefixed UTF-8.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt {
            what: "utf-8 string",
        })
    }

    /// Assert the value consumed the whole buffer.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

/// Binary encode/decode for one type.  Implementations must round-trip
/// *exactly* — `decode(encode(x)) == x`, with `f64`s compared by bit pattern.
pub trait Wire: Sized {
    /// Append this value to the encoder.
    fn encode(&self, e: &mut Encoder);
    /// Consume this value from the decoder.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError>;
}

/// Encode a value to a fresh byte vector.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut e = Encoder::new();
    value.encode(&mut e);
    e.into_bytes()
}

/// Decode a value that must consume the whole buffer (trailing bytes are a
/// typed error, not silently ignored).
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut d = Decoder::new(bytes);
    let value = T::decode(&mut d)?;
    d.finish()?;
    Ok(value)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one framed message: `MWIR` + version + payload length + payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], cap: usize) -> Result<(), WireError> {
    if payload.len() > cap || payload.len() > u32::MAX as usize {
        return Err(WireError::Oversized {
            len: payload.len(),
            cap: cap.min(u32::MAX as usize),
        });
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    header[6..10].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Read until `buf` is full or EOF; returns bytes read.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut got = 0;
    while got < buf.len() {
        // malleus-lint: allow(ML002, reason = "got < buf.len() loop invariant keeps the slice start in bounds")
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(got)
}

/// Read one framed payload.  The header is validated (magic, version, length
/// ≤ `cap`) before the payload allocation, and a stream that ends mid-frame
/// is a typed [`WireError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R, cap: usize) -> Result<Vec<u8>, WireError> {
    match read_frame_opt(r, cap)? {
        Some(payload) => Ok(payload),
        None => Err(WireError::Truncated {
            needed: FRAME_HEADER_LEN,
            available: 0,
        }),
    }
}

/// Like [`read_frame`], but a clean EOF *before any header byte* returns
/// `Ok(None)` — how a server loop distinguishes "client hung up" from
/// "client sent garbage".
pub fn read_frame_opt<R: Read>(r: &mut R, cap: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let got = read_full(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < FRAME_HEADER_LEN {
        return Err(WireError::Truncated {
            needed: FRAME_HEADER_LEN,
            available: got,
        });
    }
    if header[..4] != FRAME_MAGIC {
        return Err(WireError::BadMagic {
            found: [header[0], header[1], header[2], header[3]],
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnknownVersion { version });
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > cap {
        return Err(WireError::Oversized { len, cap });
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got < len {
        return Err(WireError::Truncated {
            needed: len,
            available: got,
        });
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Primitive / container impls
// ---------------------------------------------------------------------------

macro_rules! wire_primitive {
    ($t:ty, $put:ident, $get:ident) => {
        impl Wire for $t {
            fn encode(&self, e: &mut Encoder) {
                e.$put(*self);
            }
            fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
                d.$get()
            }
        }
    };
}

wire_primitive!(u8, put_u8, get_u8);
wire_primitive!(u16, put_u16, get_u16);
wire_primitive!(u32, put_u32, get_u32);
wire_primitive!(u64, put_u64, get_u64);
wire_primitive!(usize, put_usize, get_usize);
wire_primitive!(f64, put_f64, get_f64);
wire_primitive!(bool, put_bool, get_bool);

impl Wire for String {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.get_str()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            tag => Err(WireError::UnknownTag {
                what: "Option",
                tag: tag as u64,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.len());
        for item in self {
            item.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        // Every Wire value occupies ≥ 1 byte, so get_seq_len's
        // count-vs-remaining check bounds the reservation.
        let len = d.get_seq_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Arc<T> {
    fn encode(&self, e: &mut Encoder) {
        (**self).encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Arc::new(T::decode(d)?))
    }
}

impl Wire for Duration {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.as_secs());
        e.put_u32(self.subsec_nanos());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let secs = d.get_u64()?;
        let nanos = d.get_u32()?;
        if nanos >= 1_000_000_000 {
            return Err(WireError::Corrupt {
                what: "Duration subsecond nanos",
            });
        }
        Ok(Duration::new(secs, nanos))
    }
}

// ---------------------------------------------------------------------------
// Cluster / model types
// ---------------------------------------------------------------------------

impl Wire for GpuId {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(GpuId(d.get_u32()?))
    }
}

impl Wire for ClusterSnapshot {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.num_nodes);
        self.node_of.encode(e);
        self.rates.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ClusterSnapshot {
            num_nodes: usize::decode(d)?,
            node_of: Vec::decode(d)?,
            rates: Vec::decode(d)?,
        })
    }
}

impl Wire for ModelSpec {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        e.put_u32(self.num_layers);
        e.put_u64(self.hidden_size);
        e.put_u64(self.ffn_hidden_size);
        e.put_u64(self.num_heads);
        e.put_u64(self.num_kv_heads);
        e.put_u64(self.vocab_size);
        e.put_u64(self.seq_len);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ModelSpec {
            name: d.get_str()?,
            num_layers: d.get_u32()?,
            hidden_size: d.get_u64()?,
            ffn_hidden_size: d.get_u64()?,
            num_heads: d.get_u64()?,
            num_kv_heads: d.get_u64()?,
            vocab_size: d.get_u64()?,
            seq_len: d.get_u64()?,
        })
    }
}

impl Wire for HardwareParams {
    fn encode(&self, e: &mut Encoder) {
        e.put_f64(self.gpu_peak_flops);
        e.put_f64(self.achievable_flops_fraction);
        e.put_f64(self.gpu_memory_bytes);
        e.put_f64(self.memory_reserve_bytes);
        e.put_f64(self.intra_node_bandwidth);
        e.put_f64(self.inter_node_bandwidth);
        e.put_f64(self.collective_latency);
        e.put_f64(self.checkpoint_bandwidth);
        e.put_f64(self.restart_init_seconds);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(HardwareParams {
            gpu_peak_flops: d.get_f64()?,
            achievable_flops_fraction: d.get_f64()?,
            gpu_memory_bytes: d.get_f64()?,
            memory_reserve_bytes: d.get_f64()?,
            intra_node_bandwidth: d.get_f64()?,
            inter_node_bandwidth: d.get_f64()?,
            collective_latency: d.get_f64()?,
            checkpoint_bandwidth: d.get_f64()?,
            restart_init_seconds: d.get_f64()?,
        })
    }
}

impl Wire for MemoryModel {
    fn encode(&self, e: &mut Encoder) {
        e.put_f64(self.activation_bytes_per_token_per_hidden);
        e.put_f64(self.backward_peak_factor);
        e.put_f64(self.param_and_grad_bytes_per_param);
        e.put_f64(self.optimizer_bytes_per_param);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(MemoryModel {
            activation_bytes_per_token_per_hidden: d.get_f64()?,
            backward_peak_factor: d.get_f64()?,
            param_and_grad_bytes_per_param: d.get_f64()?,
            optimizer_bytes_per_param: d.get_f64()?,
        })
    }
}

impl Wire for ProfiledCoefficients {
    fn encode(&self, e: &mut Encoder) {
        self.spec.encode(e);
        self.hardware.encode(e);
        self.memory.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ProfiledCoefficients {
            spec: ModelSpec::decode(d)?,
            hardware: HardwareParams::decode(d)?,
            memory: MemoryModel::decode(d)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Core planner types
// ---------------------------------------------------------------------------

impl Wire for Parallelism {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Parallelism::Auto => e.put_u8(0),
            Parallelism::Fixed(n) => {
                e.put_u8(1);
                e.put_usize(*n);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(Parallelism::Auto),
            1 => Ok(Parallelism::Fixed(d.get_usize()?)),
            tag => Err(WireError::UnknownTag {
                what: "Parallelism",
                tag: tag as u64,
            }),
        }
    }
}

impl Wire for PlannerConfig {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.global_batch_size);
        self.candidate_tp_degrees.encode(e);
        self.candidate_micro_batch_sizes.encode(e);
        self.candidate_dp.encode(e);
        self.fixed_dp.encode(e);
        e.put_f64(self.straggler_threshold);
        e.put_bool(self.enable_group_splitting);
        e.put_bool(self.nonuniform_layers);
        e.put_bool(self.nonuniform_data);
        e.put_bool(self.nonuniform_stages);
        self.parallelism.encode(e);
        e.put_bool(self.incremental);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(PlannerConfig {
            global_batch_size: d.get_u64()?,
            candidate_tp_degrees: Vec::decode(d)?,
            candidate_micro_batch_sizes: Vec::decode(d)?,
            candidate_dp: Option::decode(d)?,
            fixed_dp: Option::decode(d)?,
            straggler_threshold: d.get_f64()?,
            enable_group_splitting: d.get_bool()?,
            nonuniform_layers: d.get_bool()?,
            nonuniform_data: d.get_bool()?,
            nonuniform_stages: d.get_bool()?,
            parallelism: Parallelism::decode(d)?,
            incremental: d.get_bool()?,
        })
    }
}

impl Wire for TpGroup {
    fn encode(&self, e: &mut Encoder) {
        self.gpus.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(TpGroup {
            gpus: Vec::decode(d)?,
        })
    }
}

impl Wire for StagePlan {
    fn encode(&self, e: &mut Encoder) {
        self.group.encode(e);
        e.put_u32(self.layers);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(StagePlan {
            group: TpGroup::decode(d)?,
            layers: d.get_u32()?,
        })
    }
}

impl Wire for PipelinePlan {
    fn encode(&self, e: &mut Encoder) {
        self.stages.encode(e);
        e.put_u64(self.num_micro_batches);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(PipelinePlan {
            stages: Vec::decode(d)?,
            num_micro_batches: d.get_u64()?,
        })
    }
}

impl Wire for ParallelizationPlan {
    fn encode(&self, e: &mut Encoder) {
        self.pipelines.encode(e);
        e.put_u64(self.micro_batch_size);
        self.removed_gpus.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ParallelizationPlan {
            pipelines: Vec::decode(d)?,
            micro_batch_size: d.get_u64()?,
            removed_gpus: Vec::decode(d)?,
        })
    }
}

impl Wire for PlanTiming {
    fn encode(&self, e: &mut Encoder) {
        self.grouping.encode(e);
        self.division.encode(e);
        self.ordering.encode(e);
        self.assignment.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(PlanTiming {
            grouping: Duration::decode(d)?,
            division: Duration::decode(d)?,
            ordering: Duration::decode(d)?,
            assignment: Duration::decode(d)?,
        })
    }
}

impl Wire for LatticeEntry {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.max_tp);
        e.put_usize(self.dp);
        e.put_u64(self.micro_batch);
        e.put_bool(self.nonuniform_division);
        self.estimated_step_time.encode(e);
        e.put_bool(self.reused);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(LatticeEntry {
            max_tp: d.get_u32()?,
            dp: d.get_usize()?,
            micro_batch: d.get_u64()?,
            nonuniform_division: d.get_bool()?,
            estimated_step_time: Option::decode(d)?,
            reused: d.get_bool()?,
        })
    }
}

impl Wire for ScoredLattice {
    fn encode(&self, e: &mut Encoder) {
        self.snapshot.encode(e);
        self.forced_dp.encode(e);
        self.entries.encode(e);
        e.put_usize(self.reused);
        e.put_usize(self.evaluated);
        e.put_bool(self.delta);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ScoredLattice {
            snapshot: ClusterSnapshot::decode(d)?,
            forced_dp: Option::decode(d)?,
            entries: Vec::decode(d)?,
            reused: d.get_usize()?,
            evaluated: d.get_usize()?,
            delta: d.get_bool()?,
        })
    }
}

impl Wire for PlanOutcome {
    fn encode(&self, e: &mut Encoder) {
        self.plan.encode(e);
        e.put_f64(self.estimated_step_time);
        e.put_f64(self.estimated_step_time_simplified);
        e.put_u32(self.chosen_tp);
        e.put_usize(self.dp);
        self.timing.encode(e);
        self.lattice.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(PlanOutcome {
            plan: ParallelizationPlan::decode(d)?,
            estimated_step_time: d.get_f64()?,
            estimated_step_time_simplified: d.get_f64()?,
            chosen_tp: d.get_u32()?,
            dp: d.get_usize()?,
            timing: PlanTiming::decode(d)?,
            lattice: Option::decode(d)?,
        })
    }
}

impl Wire for BackendId {
    fn encode(&self, e: &mut Encoder) {
        // Tag = position in BackendId::ALL — stable like BackendId::code(),
        // but one byte.
        let tag = match BackendId::ALL.iter().position(|b| b == self) {
            Some(i) => i as u8,
            // Unreachable by construction (ALL enumerates the enum); emit a
            // tag `decode` rejects as UnknownTag rather than panicking in an
            // encode path.
            None => u8::MAX,
        };
        e.put_u8(tag);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let tag = d.get_u8()?;
        BackendId::ALL
            .get(tag as usize)
            .copied()
            .ok_or(WireError::UnknownTag {
                what: "BackendId",
                tag: tag as u64,
            })
    }
}

impl Wire for PlannedOutcome {
    fn encode(&self, e: &mut Encoder) {
        self.backend.encode(e);
        self.plan.encode(e);
        self.active_gpus.encode(e);
        e.put_f64(self.estimated_step_time);
        e.put_f64(self.transition_cost);
        e.put_str(&self.description);
        self.malleus.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(PlannedOutcome {
            backend: BackendId::decode(d)?,
            plan: Option::decode(d)?,
            active_gpus: Vec::decode(d)?,
            estimated_step_time: d.get_f64()?,
            transition_cost: d.get_f64()?,
            description: d.get_str()?,
            malleus: Option::decode(d)?,
        })
    }
}

impl Wire for PlanError {
    fn encode(&self, e: &mut Encoder) {
        match self {
            PlanError::NoUsableGpus => e.put_u8(0),
            PlanError::NoFeasiblePlan { reason } => {
                e.put_u8(1);
                e.put_str(reason);
            }
            PlanError::InvalidPlan { reason } => {
                e.put_u8(2);
                e.put_str(reason);
            }
            PlanError::InfeasibleDataParallel { dp, groups } => {
                e.put_u8(3);
                e.put_usize(*dp);
                e.put_usize(*groups);
            }
            PlanError::NoHealthyNodes => e.put_u8(4),
            PlanError::InfeasibleConfiguration { backend, reason } => {
                e.put_u8(5);
                e.put_str(backend);
                e.put_str(reason);
            }
            PlanError::CannotAdapt { backend, reason } => {
                e.put_u8(6);
                e.put_str(backend);
                e.put_str(reason);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(PlanError::NoUsableGpus),
            1 => Ok(PlanError::NoFeasiblePlan {
                reason: d.get_str()?,
            }),
            2 => Ok(PlanError::InvalidPlan {
                reason: d.get_str()?,
            }),
            3 => Ok(PlanError::InfeasibleDataParallel {
                dp: d.get_usize()?,
                groups: d.get_usize()?,
            }),
            4 => Ok(PlanError::NoHealthyNodes),
            5 => Ok(PlanError::InfeasibleConfiguration {
                backend: d.get_str()?,
                reason: d.get_str()?,
            }),
            6 => Ok(PlanError::CannotAdapt {
                backend: d.get_str()?,
                reason: d.get_str()?,
            }),
            tag => Err(WireError::UnknownTag {
                what: "PlanError",
                tag: tag as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_bit_patterns_survive_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1.0000000000000002,
        ] {
            let decoded: f64 = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(decoded.to_bits(), v.to_bits());
        }
        // NaN payload bits survive too.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let decoded: f64 = from_bytes(&to_bytes(&nan)).unwrap();
        assert_eq!(decoded.to_bits(), nan.to_bits());
    }

    #[test]
    fn hostile_sequence_length_is_rejected_before_allocation() {
        // Claims 2^60 u64 elements with only 8 bytes of backing input.
        let mut e = Encoder::new();
        e.put_u64(1u64 << 60);
        e.put_u64(42);
        let err = from_bytes::<Vec<u64>>(&e.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn trailing_bytes_are_a_typed_error() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0xAB);
        assert_eq!(
            from_bytes::<u32>(&bytes).unwrap_err(),
            WireError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let payload = to_bytes(&"hello".to_string());
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, DEFAULT_MAX_FRAME_LEN).unwrap();
        let mut reader = &buf[..];
        let read = read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(read, payload);
        assert_eq!(read_frame_opt(&mut reader, DEFAULT_MAX_FRAME_LEN), Ok(None));
    }

    #[test]
    fn oversized_payload_is_rejected_on_write_and_read() {
        let payload = vec![0u8; 32];
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &payload, 16),
            Err(WireError::Oversized { len: 32, cap: 16 })
        ));
        write_frame(&mut buf, &payload, 64).unwrap();
        assert!(matches!(
            read_frame(&mut &buf[..], 16),
            Err(WireError::Oversized { len: 32, cap: 16 })
        ));
    }
}
