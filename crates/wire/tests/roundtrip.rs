//! Roundtrip proptests over every wire-encodable planner type — including
//! lattice-bearing `PlanOutcome`s — plus malformed-frame tests proving the
//! decoder fails with *typed* `WireError`s (never a panic, never an
//! unbounded allocation) on truncated, oversized, unknown-version and
//! unknown-tag input.

use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_core::{
    BackendId, LatticeEntry, Parallelism, ParallelizationPlan, PipelinePlan, PlanError,
    PlanOutcome, PlanTiming, PlannedOutcome, PlannerConfig, ScoredLattice, StagePlan, TpGroup,
};
use malleus_model::{HardwareParams, MemoryModel, ModelSpec, ProfiledCoefficients};
use malleus_wire::{
    from_bytes, read_frame, read_frame_opt, to_bytes, write_frame, WireError,
    DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN, FRAME_MAGIC, WIRE_VERSION,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Small deterministic generator: the proptest shim has no `any::<T>()`, so
/// each case draws a `u64` seed and expands it through splitmix64 into
/// arbitrary-but-reproducible structured values.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Any non-NaN bit pattern (including ±0, ±∞ and subnormals). NaN would
    /// break the `PartialEq` assertions here (`NaN != NaN`); NaN payload
    /// survival is pinned by a dedicated bit-level test in the crate itself.
    fn f64_bits(&mut self) -> f64 {
        loop {
            let v = f64::from_bits(self.next_u64());
            if !v.is_nan() {
                return v;
            }
        }
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn string(&mut self) -> String {
        let len = self.below(24) as usize;
        (0..len)
            .map(|_| char::from(b'a' + (self.below(26) as u8)))
            .collect()
    }

    fn snapshot(&mut self) -> ClusterSnapshot {
        let nodes = 1 + self.below(4) as usize;
        let gpus = nodes * (1 + self.below(8) as usize);
        ClusterSnapshot {
            num_nodes: nodes,
            node_of: (0..gpus).map(|g| (g % nodes) as u32).collect(),
            rates: (0..gpus).map(|_| self.f64_bits()).collect(),
        }
    }

    fn coeffs(&mut self) -> ProfiledCoefficients {
        ProfiledCoefficients {
            spec: ModelSpec {
                name: self.string(),
                num_layers: self.below(200) as u32,
                hidden_size: self.next_u64(),
                ffn_hidden_size: self.next_u64(),
                num_heads: self.next_u64(),
                num_kv_heads: self.next_u64(),
                vocab_size: self.next_u64(),
                seq_len: self.next_u64(),
            },
            hardware: HardwareParams {
                gpu_peak_flops: self.f64_bits(),
                achievable_flops_fraction: self.f64_bits(),
                gpu_memory_bytes: self.f64_bits(),
                memory_reserve_bytes: self.f64_bits(),
                intra_node_bandwidth: self.f64_bits(),
                inter_node_bandwidth: self.f64_bits(),
                collective_latency: self.f64_bits(),
                checkpoint_bandwidth: self.f64_bits(),
                restart_init_seconds: self.f64_bits(),
            },
            memory: MemoryModel {
                activation_bytes_per_token_per_hidden: self.f64_bits(),
                backward_peak_factor: self.f64_bits(),
                param_and_grad_bytes_per_param: self.f64_bits(),
                optimizer_bytes_per_param: self.f64_bits(),
            },
        }
    }

    fn config(&mut self) -> PlannerConfig {
        PlannerConfig {
            global_batch_size: 1 + self.below(4096),
            candidate_tp_degrees: (0..self.below(4))
                .map(|_| 1 + self.below(8) as u32)
                .collect(),
            candidate_micro_batch_sizes: (0..self.below(4)).map(|_| 1 + self.below(16)).collect(),
            candidate_dp: if self.bool() {
                Some(
                    (0..self.below(4) as usize)
                        .map(|_| 1 + self.below(64) as usize)
                        .collect(),
                )
            } else {
                None
            },
            fixed_dp: if self.bool() {
                Some(1 + self.below(64) as usize)
            } else {
                None
            },
            straggler_threshold: self.f64_bits(),
            enable_group_splitting: self.bool(),
            nonuniform_layers: self.bool(),
            nonuniform_data: self.bool(),
            nonuniform_stages: self.bool(),
            parallelism: if self.bool() {
                Parallelism::Auto
            } else {
                Parallelism::Fixed(1 + self.below(16) as usize)
            },
            incremental: self.bool(),
        }
    }

    fn plan(&mut self) -> ParallelizationPlan {
        let pipelines = (0..1 + self.below(3))
            .map(|_| PipelinePlan {
                stages: (0..1 + self.below(4))
                    .map(|_| StagePlan {
                        group: TpGroup {
                            gpus: (0..1 + self.below(4))
                                .map(|_| GpuId(self.below(512) as u32))
                                .collect(),
                        },
                        layers: 1 + self.below(32) as u32,
                    })
                    .collect(),
                num_micro_batches: 1 + self.below(64),
            })
            .collect();
        ParallelizationPlan {
            pipelines,
            micro_batch_size: 1 + self.below(16),
            removed_gpus: (0..self.below(3))
                .map(|_| GpuId(self.below(512) as u32))
                .collect(),
        }
    }

    fn lattice(&mut self) -> ScoredLattice {
        ScoredLattice {
            snapshot: self.snapshot(),
            forced_dp: if self.bool() {
                Some(1 + self.below(64) as usize)
            } else {
                None
            },
            entries: (0..self.below(12))
                .map(|_| LatticeEntry {
                    max_tp: 1 + self.below(8) as u32,
                    dp: 1 + self.below(64) as usize,
                    micro_batch: 1 + self.below(16),
                    nonuniform_division: self.bool(),
                    estimated_step_time: if self.bool() {
                        Some(self.f64_bits())
                    } else {
                        None
                    },
                    reused: self.bool(),
                })
                .collect(),
            reused: self.below(64) as usize,
            evaluated: self.below(64) as usize,
            delta: self.bool(),
        }
    }

    fn outcome(&mut self) -> PlanOutcome {
        PlanOutcome {
            plan: self.plan(),
            estimated_step_time: self.f64_bits(),
            estimated_step_time_simplified: self.f64_bits(),
            chosen_tp: 1 + self.below(8) as u32,
            dp: 1 + self.below(64) as usize,
            timing: PlanTiming {
                grouping: Duration::new(self.below(1 << 20), self.below(1_000_000_000) as u32),
                division: Duration::new(self.below(1 << 20), self.below(1_000_000_000) as u32),
                ordering: Duration::new(self.below(1 << 20), self.below(1_000_000_000) as u32),
                assignment: Duration::new(self.below(1 << 20), self.below(1_000_000_000) as u32),
            },
            lattice: if self.bool() {
                Some(Arc::new(self.lattice()))
            } else {
                None
            },
        }
    }

    fn planned(&mut self) -> PlannedOutcome {
        let backend = BackendId::ALL[self.below(BackendId::ALL.len() as u64) as usize];
        PlannedOutcome {
            backend,
            plan: if self.bool() { Some(self.plan()) } else { None },
            active_gpus: (0..self.below(16))
                .map(|_| GpuId(self.below(512) as u32))
                .collect(),
            estimated_step_time: self.f64_bits(),
            transition_cost: self.f64_bits(),
            description: self.string(),
            malleus: if self.bool() {
                Some(Arc::new(self.outcome()))
            } else {
                None
            },
        }
    }

    fn plan_error(&mut self) -> PlanError {
        match self.below(7) {
            0 => PlanError::NoUsableGpus,
            1 => PlanError::NoFeasiblePlan {
                reason: self.string(),
            },
            2 => PlanError::InvalidPlan {
                reason: self.string(),
            },
            3 => PlanError::InfeasibleDataParallel {
                dp: self.below(256) as usize,
                groups: self.below(256) as usize,
            },
            4 => PlanError::NoHealthyNodes,
            5 => PlanError::InfeasibleConfiguration {
                backend: self.string(),
                reason: self.string(),
            },
            _ => PlanError::CannotAdapt {
                backend: self.string(),
                reason: self.string(),
            },
        }
    }
}

/// `PlanOutcome`'s manual `PartialEq` deliberately excludes the lattice, so
/// equality for wire purposes must check it explicitly.
fn assert_outcome_identical(a: &PlanOutcome, b: &PlanOutcome) {
    assert_eq!(a, b);
    assert_eq!(
        a.estimated_step_time.to_bits(),
        b.estimated_step_time.to_bits()
    );
    assert_eq!(
        a.estimated_step_time_simplified.to_bits(),
        b.estimated_step_time_simplified.to_bits()
    );
    match (&a.lattice, &b.lattice) {
        (None, None) => {}
        (Some(x), Some(y)) => assert_eq!(**x, **y),
        _ => panic!("lattice presence diverged across the wire"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cluster_snapshots_roundtrip(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let v = g.snapshot();
        let back: ClusterSnapshot = from_bytes(&to_bytes(&v)).unwrap();
        prop_assert_eq!(&back, &v);
        // Rates must be bit-identical even when PartialEq would accept NaN-free
        // approximations.
        for (x, y) in v.rates.iter().zip(back.rates.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn coefficients_roundtrip(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let v = g.coeffs();
        let back: ProfiledCoefficients = from_bytes(&to_bytes(&v)).unwrap();
        prop_assert_eq!(back.spec, v.spec);
        prop_assert_eq!(
            back.hardware.gpu_peak_flops.to_bits(),
            v.hardware.gpu_peak_flops.to_bits()
        );
        prop_assert_eq!(
            back.memory.optimizer_bytes_per_param.to_bits(),
            v.memory.optimizer_bytes_per_param.to_bits()
        );
    }

    #[test]
    fn planner_configs_roundtrip(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let v = g.config();
        let back: PlannerConfig = from_bytes(&to_bytes(&v)).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn lattice_bearing_outcomes_roundtrip(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let mut v = g.outcome();
        // Force the lattice on for half the cases regardless of the coin flip
        // so the lattice path is always exercised across the run.
        if seed % 2 == 0 && v.lattice.is_none() {
            v.lattice = Some(Arc::new(g.lattice()));
        }
        let back: PlanOutcome = from_bytes(&to_bytes(&v)).unwrap();
        assert_outcome_identical(&back, &v);
    }

    #[test]
    fn planned_outcomes_roundtrip_for_every_backend(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        for backend in BackendId::ALL {
            let mut v = g.planned();
            v.backend = backend;
            let back: PlannedOutcome = from_bytes(&to_bytes(&v)).unwrap();
            prop_assert_eq!(&back, &v);
            prop_assert_eq!(back.backend, backend);
            prop_assert_eq!(back.estimated_step_time.to_bits(), v.estimated_step_time.to_bits());
            if let (Some(x), Some(y)) = (&back.malleus, &v.malleus) {
                assert_outcome_identical(x, y);
            }
        }
    }

    #[test]
    fn plan_errors_roundtrip(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        for _ in 0..8 {
            let v = g.plan_error();
            let back: PlanError = from_bytes(&to_bytes(&v)).unwrap();
            prop_assert_eq!(back, v);
        }
    }

    #[test]
    fn frames_roundtrip_back_to_back(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let first = to_bytes(&g.planned());
        let second = to_bytes(&g.plan_error());
        let mut buf = Vec::new();
        write_frame(&mut buf, &first, DEFAULT_MAX_FRAME_LEN).unwrap();
        write_frame(&mut buf, &second, DEFAULT_MAX_FRAME_LEN).unwrap();
        let mut reader = &buf[..];
        prop_assert_eq!(read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap(), first);
        prop_assert_eq!(read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap(), second);
        prop_assert_eq!(read_frame_opt(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap(), None);
    }

    #[test]
    fn truncating_any_prefix_yields_a_typed_error(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let v = g.planned();
        let bytes = to_bytes(&v);
        // Chop the encoding at a pseudo-random set of points; every prefix
        // must fail with a typed error (usually Truncated; an unlucky cut can
        // also surface as UnknownTag/Corrupt) — never a panic.
        for i in 0..16u64 {
            let cut = (g.below(bytes.len() as u64)) as usize;
            let err = from_bytes::<PlannedOutcome>(&bytes[..cut]);
            prop_assert!(err.is_err(), "prefix {} (cut {}) decoded", i, cut);
        }
    }
}

#[test]
fn every_plan_error_variant_roundtrips() {
    let variants = [
        PlanError::NoUsableGpus,
        PlanError::NoFeasiblePlan { reason: "r".into() },
        PlanError::InvalidPlan { reason: "r".into() },
        PlanError::InfeasibleDataParallel { dp: 8, groups: 3 },
        PlanError::NoHealthyNodes,
        PlanError::InfeasibleConfiguration {
            backend: "b".into(),
            reason: "r".into(),
        },
        PlanError::CannotAdapt {
            backend: "b".into(),
            reason: "r".into(),
        },
    ];
    for v in variants {
        let back: PlanError = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(back, v);
    }
}

#[test]
fn truncated_payload_is_a_typed_truncated_error() {
    let payload = to_bytes(&"plan payload".to_string());
    let mut buf = Vec::new();
    write_frame(&mut buf, &payload, DEFAULT_MAX_FRAME_LEN).unwrap();
    buf.truncate(buf.len() - 4);
    match read_frame(&mut &buf[..], DEFAULT_MAX_FRAME_LEN) {
        Err(WireError::Truncated { needed, available }) => {
            assert_eq!(needed, payload.len());
            assert_eq!(available, payload.len() - 4);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn truncated_header_is_a_typed_truncated_error() {
    let mut buf = Vec::new();
    write_frame(&mut buf, b"x", DEFAULT_MAX_FRAME_LEN).unwrap();
    for cut in 1..FRAME_HEADER_LEN {
        match read_frame(&mut &buf[..cut], DEFAULT_MAX_FRAME_LEN) {
            Err(WireError::Truncated { needed, available }) => {
                assert_eq!(needed, FRAME_HEADER_LEN);
                assert_eq!(available, cut);
            }
            other => panic!("expected Truncated at cut {cut}, got {other:?}"),
        }
    }
}

#[test]
fn length_prefix_beyond_the_cap_never_allocates() {
    // Hand-forge a header claiming a 4 GiB-1 payload with no bytes behind it.
    let mut buf = Vec::new();
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    buf.extend_from_slice(&u32::MAX.to_le_bytes());
    match read_frame(&mut &buf[..], DEFAULT_MAX_FRAME_LEN) {
        Err(WireError::Oversized { len, cap }) => {
            assert_eq!(len, u32::MAX as usize);
            assert_eq!(cap, DEFAULT_MAX_FRAME_LEN);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn unknown_version_is_rejected_before_the_payload() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.extend_from_slice(&(WIRE_VERSION + 1).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(
        read_frame(&mut &buf[..], DEFAULT_MAX_FRAME_LEN),
        Err(WireError::UnknownVersion {
            version: WIRE_VERSION + 1
        })
    );
}

#[test]
fn foreign_magic_is_rejected() {
    let mut buf = Vec::new();
    buf.extend_from_slice(b"HTTP");
    buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(
        read_frame(&mut &buf[..], DEFAULT_MAX_FRAME_LEN),
        Err(WireError::BadMagic { found: *b"HTTP" })
    );
}

#[test]
fn unknown_enum_tags_are_typed_errors() {
    // BackendId tag 6 does not exist.
    assert_eq!(
        from_bytes::<BackendId>(&[6]),
        Err(WireError::UnknownTag {
            what: "BackendId",
            tag: 6
        })
    );
    // Parallelism tag 9 does not exist.
    assert_eq!(
        from_bytes::<Parallelism>(&[9]),
        Err(WireError::UnknownTag {
            what: "Parallelism",
            tag: 9
        })
    );
    // PlanError tag 7 does not exist.
    assert_eq!(
        from_bytes::<PlanError>(&[7]),
        Err(WireError::UnknownTag {
            what: "PlanError",
            tag: 7
        })
    );
    // Option tag 2 does not exist.
    assert_eq!(
        from_bytes::<Option<u8>>(&[2]),
        Err(WireError::UnknownTag {
            what: "Option",
            tag: 2
        })
    );
}

#[test]
fn hostile_vec_count_inside_a_struct_is_bounded() {
    // A ClusterSnapshot whose node_of claims 2^50 entries backed by 4 bytes.
    let mut buf = Vec::new();
    buf.extend_from_slice(&3u64.to_le_bytes()); // num_nodes
    buf.extend_from_slice(&(1u64 << 50).to_le_bytes()); // node_of length
    buf.extend_from_slice(&[0u8; 4]);
    match from_bytes::<ClusterSnapshot>(&buf) {
        Err(WireError::Truncated { needed, .. }) => assert_eq!(needed, 1usize << 50),
        other => panic!("expected Truncated, got {other:?}"),
    }
}
