//! Hardware description and the profiled-coefficient bundle.
//!
//! [`HardwareParams`] captures the per-GPU and interconnect characteristics of
//! the training cluster (the paper uses 8-GPU A800 nodes with 400 GB/s NVLink
//! and 200 Gb/s InfiniBand).  [`ProfiledCoefficients`] packages a model spec
//! with the hardware description and exposes exactly the quantities the
//! planner's cost model consumes: `τ(b)`, `ρ_n`, the μ/ν/C memory coefficients
//! of Appendix B.4, and byte counts for communication.

use crate::compute;
use crate::memory::MemoryModel;
use crate::spec::ModelSpec;
use serde::{Deserialize, Serialize};

/// Hardware characteristics of a (homogeneous) GPU cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareParams {
    /// Peak dense FLOPS of one GPU (bf16), e.g. `312e12` for an A800.
    pub gpu_peak_flops: f64,
    /// Fraction of peak FLOPS achievable for transformer layers (kernel
    /// efficiency ceiling), typically 0.45–0.6.
    pub achievable_flops_fraction: f64,
    /// Usable device memory in bytes (80 GiB for an A800).
    pub gpu_memory_bytes: f64,
    /// Memory reserved for NCCL / CUDA contexts (the paper reserves 4 GiB).
    pub memory_reserve_bytes: f64,
    /// Intra-node (NVLink) bandwidth in bytes/s.
    pub intra_node_bandwidth: f64,
    /// Inter-node (InfiniBand) bandwidth in bytes/s.
    pub inter_node_bandwidth: f64,
    /// Fixed latency per collective call in seconds.
    pub collective_latency: f64,
    /// Sustained bandwidth for checkpoint save/load (restart cost model).
    pub checkpoint_bandwidth: f64,
    /// Fixed framework re-initialization time on restart (resource allocation,
    /// process groups, ...), in seconds.
    pub restart_init_seconds: f64,
}

impl HardwareParams {
    /// The A800 (80 GB) cluster used in the paper: 8 GPUs per node, 400 GB/s
    /// NVLink, 200 Gb/s InfiniBand.
    pub fn a800_cluster() -> Self {
        Self {
            gpu_peak_flops: 312e12,
            achievable_flops_fraction: 0.55,
            gpu_memory_bytes: 80.0 * 1024.0 * 1024.0 * 1024.0,
            memory_reserve_bytes: 4096.0 * 1024.0 * 1024.0,
            intra_node_bandwidth: 400e9,
            inter_node_bandwidth: 25e9,
            collective_latency: 30e-6,
            checkpoint_bandwidth: 2e9,
            restart_init_seconds: 90.0,
        }
    }

    /// Effective sustained FLOPS of one non-straggling GPU.
    pub fn effective_flops(&self) -> f64 {
        self.gpu_peak_flops * self.achievable_flops_fraction
    }

    /// Usable memory per GPU after the reserve gap (`C_X - G` in Appendix B.4).
    pub fn usable_memory_bytes(&self) -> f64 {
        (self.gpu_memory_bytes - self.memory_reserve_bytes).max(0.0)
    }
}

impl Default for HardwareParams {
    fn default() -> Self {
        Self::a800_cluster()
    }
}

/// Bundle of all profiled coefficients the planner and simulator need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfiledCoefficients {
    /// Model architecture.
    pub spec: ModelSpec,
    /// Hardware description.
    pub hardware: HardwareParams,
    /// Memory model derived from the spec.
    pub memory: MemoryModel,
}

impl ProfiledCoefficients {
    /// Derive all coefficients for a model on a hardware platform.
    pub fn derive(spec: ModelSpec, hardware: HardwareParams) -> Self {
        let memory = MemoryModel::new(&spec);
        Self {
            spec,
            hardware,
            memory,
        }
    }

    /// `τ(b)`: forward+backward time of one layer on a single non-straggling
    /// GPU (TP degree 1) with micro-batch size `b`, in seconds.
    pub fn tau(&self, micro_batch_size: u64) -> f64 {
        compute::layer_time_forward_backward(&self.spec, &self.hardware, micro_batch_size, 1)
    }

    /// `ζ_n(b)`: forward+backward time of one layer on a TP group of `n`
    /// non-straggling GPUs.
    pub fn zeta(&self, micro_batch_size: u64, tp_degree: u32) -> f64 {
        compute::layer_time_forward_backward(
            &self.spec,
            &self.hardware,
            micro_batch_size,
            tp_degree,
        )
    }

    /// `ρ_n`: efficiency-degradation coefficient of a TP group of `n` GPUs
    /// (§4.2).  `ρ_1 = 1`; larger groups have smaller coefficients because the
    /// per-GPU workload shrinks, but not by the ideal `1/n` factor due to
    /// tensor-parallel communication.
    pub fn rho(&self, tp_degree: u32, micro_batch_size: u64) -> f64 {
        compute::tensor_parallel_rho(&self.spec, &self.hardware, micro_batch_size, tp_degree)
    }

    /// Group straggling rate `y = ρ_n · max{x}` for a TP group of `n` GPUs with
    /// the given maximum per-GPU straggling rate.
    pub fn group_rate(&self, tp_degree: u32, max_gpu_rate: f64, micro_batch_size: u64) -> f64 {
        self.rho(tp_degree, micro_batch_size) * max_gpu_rate
    }

    /// μ coefficient of Appendix B.4: per-layer, per-GPU memory of one stage
    /// (model states + retained activations), in bytes.
    ///
    /// * `stage_index` — zero-based index `j` of the stage within its pipeline,
    /// * `pp` — number of stages in the pipeline,
    /// * `tp_degree` — GPUs in the stage's TP group,
    /// * `zero_dp` — number of optimizer-state shards per TP slice (the ZeRO-1
    ///   sharding degree, i.e. the DP degree).
    pub fn mu(
        &self,
        micro_batch_size: u64,
        tp_degree: u32,
        stage_index: usize,
        pp: usize,
        zero_dp: u32,
    ) -> f64 {
        self.memory.mu_bytes_per_layer(
            &self.spec,
            micro_batch_size,
            tp_degree,
            stage_index,
            pp,
            zero_dp,
        )
    }

    /// ν coefficient of Appendix B.4: stage-constant memory (embedding table on
    /// the first stage, LM head + logits on the last stage), in bytes per GPU.
    pub fn nu(
        &self,
        micro_batch_size: u64,
        tp_degree: u32,
        stage_index: usize,
        pp: usize,
        zero_dp: u32,
    ) -> f64 {
        self.memory.nu_bytes(
            &self.spec,
            micro_batch_size,
            tp_degree,
            stage_index,
            pp,
            zero_dp,
        )
    }

    /// Per-GPU memory budget `C_X - G` in bytes.
    pub fn per_gpu_capacity(&self) -> f64 {
        self.hardware.usable_memory_bytes()
    }

    /// Maximum number of layers a stage can hold under the memory constraint
    /// `l·μ + ν ≤ C` (Appendix B.4), or `None` if even zero layers do not fit.
    pub fn max_layers_for_stage(
        &self,
        micro_batch_size: u64,
        tp_degree: u32,
        stage_index: usize,
        pp: usize,
        zero_dp: u32,
    ) -> Option<u64> {
        let mu = self.mu(micro_batch_size, tp_degree, stage_index, pp, zero_dp);
        let nu = self.nu(micro_batch_size, tp_degree, stage_index, pp, zero_dp);
        let cap = self.per_gpu_capacity();
        if nu > cap {
            return None;
        }
        if mu <= 0.0 {
            return Some(u64::MAX);
        }
        Some(((cap - nu) / mu).floor().max(0.0) as u64)
    }

    /// Bytes of gradient data one layer produces per TP slice (used by the
    /// gradient-synchronization simulator), fp16.
    pub fn gradient_bytes_per_layer_slice(&self, tp_degree: u32) -> f64 {
        self.spec.params_per_layer() as f64 * 2.0 / tp_degree as f64
    }

    /// Bytes of the full (parameters + gradients + optimizer) model states of
    /// one layer, used by the migration and checkpoint cost models.
    pub fn state_bytes_per_layer(&self) -> f64 {
        // fp16 params + fp16 grads + fp32 master + two fp32 Adam moments.
        self.spec.params_per_layer() as f64 * (2.0 + 2.0 + 12.0)
    }

    /// Bytes of one micro-batch activation tensor crossing a pipeline stage
    /// boundary (b × s × h, fp16).
    pub fn activation_boundary_bytes(&self, micro_batch_size: u64) -> f64 {
        (micro_batch_size * self.spec.seq_len * self.spec.hidden_size) as f64 * 2.0
    }

    /// Dense model FLOPs of one training step with the given global batch,
    /// used for MFU reporting (6 × params × tokens plus attention).
    pub fn step_flops(&self, global_batch_size: u64) -> f64 {
        let tokens = self.spec.tokens_per_global_batch(global_batch_size) as f64;
        let dense = 6.0 * self.spec.total_params() as f64 * tokens;
        let attn = 12.0
            * self.spec.num_layers as f64
            * self.spec.hidden_size as f64
            * self.spec.seq_len as f64
            * tokens;
        dense + attn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coeffs() -> ProfiledCoefficients {
        ProfiledCoefficients::derive(ModelSpec::llama2_70b(), HardwareParams::a800_cluster())
    }

    #[test]
    fn rho_is_one_for_single_gpu_and_decreasing() {
        let c = coeffs();
        let r1 = c.rho(1, 1);
        let r2 = c.rho(2, 1);
        let r4 = c.rho(4, 1);
        let r8 = c.rho(8, 1);
        assert!((r1 - 1.0).abs() < 1e-12);
        assert!(r1 > r2 && r2 > r4 && r4 > r8, "{r1} {r2} {r4} {r8}");
        // Larger groups are imperfectly efficient: ρ_n > 1/n.
        assert!(r8 > 1.0 / 8.0);
    }

    #[test]
    fn tau_grows_with_micro_batch_size() {
        let c = coeffs();
        assert!(c.tau(2) > c.tau(1));
        assert!(c.tau(4) > c.tau(2));
    }

    #[test]
    fn group_rate_combines_rho_and_max_rate() {
        let c = coeffs();
        let y = c.group_rate(8, 5.42, 1);
        assert!((y - c.rho(8, 1) * 5.42).abs() < 1e-12);
    }

    #[test]
    fn max_layers_single_gpu_cannot_hold_a_70b_stage_alone() {
        // One 80 GB GPU cannot hold 80 layers of a 70B model with optimizer
        // states; the memory model must reflect that.
        let c = coeffs();
        let max = c.max_layers_for_stage(1, 1, 0, 1, 1).unwrap_or(u64::MAX);
        assert!(
            max < 80,
            "single GPU should not fit the full 70B model, got {max}"
        );
    }

    #[test]
    fn max_layers_increases_with_tp_degree() {
        let c = coeffs();
        let m1 = c.max_layers_for_stage(1, 1, 0, 4, 2).unwrap_or(0);
        let m8 = c.max_layers_for_stage(1, 8, 0, 4, 2).unwrap_or(0);
        assert!(m8 > m1);
    }

    #[test]
    fn earlier_stages_hold_fewer_layers() {
        // 1F1B: stage 0 retains more in-flight activations than the last stage,
        // so its per-layer μ is larger and its layer capacity smaller.
        let c = coeffs();
        let first = c.max_layers_for_stage(1, 8, 0, 8, 2).unwrap_or(0);
        let last = c.max_layers_for_stage(1, 8, 7, 8, 2).unwrap_or(0);
        assert!(first <= last, "first={first} last={last}");
    }

    #[test]
    fn step_flops_has_llm_scale() {
        let c = coeffs();
        let flops = c.step_flops(64);
        // 6 * 70e9 * 262144 ≈ 1.1e17
        assert!(flops > 5e16 && flops < 5e17, "got {flops}");
    }

    #[test]
    fn usable_memory_subtracts_reserve() {
        let hw = HardwareParams::a800_cluster();
        assert!(hw.usable_memory_bytes() < hw.gpu_memory_bytes);
        assert!(hw.usable_memory_bytes() > 70.0 * 1024.0 * 1024.0 * 1024.0);
    }
}
