//! Memory cost model (Appendix B.4 of the paper).
//!
//! For the `j`-th stage of a pipeline with `PP` stages running 1F1B, the peak
//! per-GPU memory is
//!
//! ```text
//!   l · μ_j(b) + ν_j(b) ≤ C
//! ```
//!
//! where `l` is the number of layers on the stage, `μ_j(b)` accounts for the
//! model states of one layer plus the forward activations retained while
//! `PP − j` further micro-batches are in flight, and `ν_j(b)` is the
//! stage-constant footprint of the embedding table (first stage) or LM head and
//! logits (last stage).  All per-GPU quantities shrink with the tensor-parallel
//! degree `k` because parameters and activations are sharded across the group
//! (sequence parallelism is assumed for activations, as in Megatron-LM).

use crate::spec::ModelSpec;
use serde::{Deserialize, Serialize};

/// Tunable constants of the analytic memory model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Bytes of retained forward activation per token per hidden unit for one
    /// layer (Megatron-style accounting with FlashAttention ≈ 26–34 bytes).
    pub activation_bytes_per_token_per_hidden: f64,
    /// Multiplier capturing the extra transient working set while a layer is in
    /// its backward pass (`a_{f+b} = peak_factor · a_f`).
    pub backward_peak_factor: f64,
    /// Bytes per parameter for fp16 parameters + fp16 gradients.
    pub param_and_grad_bytes_per_param: f64,
    /// Bytes per parameter for the fp32 master copy and Adam moments (sharded
    /// by the ZeRO-1 data-parallel degree).
    pub optimizer_bytes_per_param: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        Self {
            activation_bytes_per_token_per_hidden: 30.0,
            backward_peak_factor: 1.3,
            param_and_grad_bytes_per_param: 4.0,
            optimizer_bytes_per_param: 12.0,
        }
    }
}

impl MemoryModel {
    /// Build the default memory model for a model spec.  (The spec itself is
    /// passed to each query; the constructor exists so alternative constants —
    /// e.g. full activation checkpointing — can be plugged in later.)
    pub fn new(_spec: &ModelSpec) -> Self {
        Self::default()
    }

    /// A variant with full activation recomputation (used by the baseline
    /// configuration search, which enables activation checkpointing to squeeze
    /// models onto fewer GPUs, cf. Tables 6–7).
    pub fn with_activation_checkpointing() -> Self {
        Self {
            // Only the layer-boundary activation is retained.
            activation_bytes_per_token_per_hidden: 2.0,
            backward_peak_factor: 4.0,
            ..Self::default()
        }
    }

    /// Retained forward-activation bytes per layer, per GPU, for one
    /// micro-batch of size `b` on a TP group of `k` GPUs (`a_f` at TP `k`).
    pub fn activation_forward_bytes(
        &self,
        spec: &ModelSpec,
        micro_batch_size: u64,
        tp_degree: u32,
    ) -> f64 {
        let tokens = spec.tokens_per_micro_batch(micro_batch_size) as f64;
        tokens * spec.hidden_size as f64 * self.activation_bytes_per_token_per_hidden
            / tp_degree as f64
    }

    /// Peak activation bytes per layer per GPU during forward+backward
    /// (`a_{f+b}` at TP `k`).
    pub fn activation_peak_bytes(
        &self,
        spec: &ModelSpec,
        micro_batch_size: u64,
        tp_degree: u32,
    ) -> f64 {
        self.activation_forward_bytes(spec, micro_batch_size, tp_degree) * self.backward_peak_factor
    }

    /// Model-state bytes (params, grads, optimizer) of one layer per GPU at TP
    /// degree `k` with ZeRO-1 sharding over `zero_dp` replicas (`s` at TP `k`).
    pub fn layer_state_bytes(&self, spec: &ModelSpec, tp_degree: u32, zero_dp: u32) -> f64 {
        let params = spec.params_per_layer() as f64 / tp_degree as f64;
        params * self.param_and_grad_bytes_per_param
            + params * self.optimizer_bytes_per_param / zero_dp.max(1) as f64
    }

    /// Model-state bytes of the embedding table per GPU.
    pub fn embedding_state_bytes(&self, spec: &ModelSpec, tp_degree: u32, zero_dp: u32) -> f64 {
        let params = spec.embedding_params() as f64 / tp_degree as f64;
        params * self.param_and_grad_bytes_per_param
            + params * self.optimizer_bytes_per_param / zero_dp.max(1) as f64
    }

    /// Model-state bytes of the LM head per GPU.
    pub fn lm_head_state_bytes(&self, spec: &ModelSpec, tp_degree: u32, zero_dp: u32) -> f64 {
        let params = spec.lm_head_params() as f64 / tp_degree as f64;
        params * self.param_and_grad_bytes_per_param
            + params * self.optimizer_bytes_per_param / zero_dp.max(1) as f64
    }

    /// μ_j(b): per-layer, per-GPU memory coefficient of the `j`-th (zero-based)
    /// stage of a `pp`-stage 1F1B pipeline.
    pub fn mu_bytes_per_layer(
        &self,
        spec: &ModelSpec,
        micro_batch_size: u64,
        tp_degree: u32,
        stage_index: usize,
        pp: usize,
        zero_dp: u32,
    ) -> f64 {
        assert!(
            pp >= 1 && stage_index < pp,
            "stage_index {stage_index} out of range for pp {pp}"
        );
        let in_flight = (pp - 1 - stage_index) as f64;
        let a_f = self.activation_forward_bytes(spec, micro_batch_size, tp_degree);
        let a_fb = self.activation_peak_bytes(spec, micro_batch_size, tp_degree);
        let s = self.layer_state_bytes(spec, tp_degree, zero_dp);
        a_f * in_flight + a_fb + s
    }

    /// ν_j(b): stage-constant, per-GPU memory of the `j`-th (zero-based) stage.
    /// Zero for interior stages; embedding-table footprint for the first stage;
    /// LM head plus logits footprint for the last stage.
    pub fn nu_bytes(
        &self,
        spec: &ModelSpec,
        micro_batch_size: u64,
        tp_degree: u32,
        stage_index: usize,
        pp: usize,
        zero_dp: u32,
    ) -> f64 {
        assert!(
            pp >= 1 && stage_index < pp,
            "stage_index {stage_index} out of range for pp {pp}"
        );
        let tokens = spec.tokens_per_micro_batch(micro_batch_size) as f64;
        let mut nu = 0.0;
        if stage_index == 0 {
            // Embedding table states + its output activation held for each
            // in-flight micro-batch.
            let in_flight = (pp - stage_index) as f64;
            let embed_act = tokens * spec.hidden_size as f64 * 2.0 / tp_degree as f64;
            nu += self.embedding_state_bytes(spec, tp_degree, zero_dp) + embed_act * in_flight;
        }
        if stage_index == pp - 1 {
            // LM head states + the fp16 logits and their fp32 softmax buffer.
            let logits = tokens * spec.vocab_size as f64 * (2.0 + 4.0) / tp_degree as f64;
            nu += self.lm_head_state_bytes(spec, tp_degree, zero_dp) + logits;
        }
        nu
    }

    /// Total model-state bytes across the entire model (all layers + embedding
    /// + LM head), unsharded.  Used by the checkpoint/restart cost model.
    pub fn total_state_bytes(&self, spec: &ModelSpec) -> f64 {
        let per_param = self.param_and_grad_bytes_per_param + self.optimizer_bytes_per_param;
        spec.total_params() as f64 * per_param
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ModelSpec {
        ModelSpec::llama2_70b()
    }

    #[test]
    fn activations_shrink_with_tp_degree() {
        let m = MemoryModel::default();
        let s = spec();
        let a1 = m.activation_forward_bytes(&s, 1, 1);
        let a8 = m.activation_forward_bytes(&s, 1, 8);
        assert!((a1 / a8 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn zero1_sharding_reduces_state_bytes() {
        let m = MemoryModel::default();
        let s = spec();
        let dp1 = m.layer_state_bytes(&s, 8, 1);
        let dp4 = m.layer_state_bytes(&s, 8, 4);
        assert!(dp4 < dp1);
        // Only the optimizer part shrinks, params+grads stay.
        assert!(dp4 > m.layer_state_bytes(&s, 8, u32::MAX / 2) * 0.99);
    }

    #[test]
    fn mu_decreases_along_the_pipeline() {
        // Later stages hold fewer in-flight activations (Theorem 3 rationale).
        let m = MemoryModel::default();
        let s = spec();
        let first = m.mu_bytes_per_layer(&s, 1, 8, 0, 8, 2);
        let mid = m.mu_bytes_per_layer(&s, 1, 8, 4, 8, 2);
        let last = m.mu_bytes_per_layer(&s, 1, 8, 7, 8, 2);
        assert!(first > mid && mid > last);
    }

    #[test]
    fn nu_is_zero_for_interior_stages() {
        let m = MemoryModel::default();
        let s = spec();
        assert_eq!(m.nu_bytes(&s, 1, 8, 2, 8, 2), 0.0);
        assert!(m.nu_bytes(&s, 1, 8, 0, 8, 2) > 0.0);
        assert!(m.nu_bytes(&s, 1, 8, 7, 8, 2) > 0.0);
    }

    #[test]
    fn single_stage_pipeline_counts_both_embedding_and_head() {
        let m = MemoryModel::default();
        let s = spec();
        let nu = m.nu_bytes(&s, 1, 8, 0, 1, 1);
        assert!(nu > m.embedding_state_bytes(&s, 8, 1));
        assert!(nu > m.lm_head_state_bytes(&s, 8, 1));
    }

    #[test]
    fn activation_checkpointing_reduces_mu() {
        let s = spec();
        let full = MemoryModel::default();
        let ac = MemoryModel::with_activation_checkpointing();
        let mu_full = full.mu_bytes_per_layer(&s, 1, 8, 0, 8, 2);
        let mu_ac = ac.mu_bytes_per_layer(&s, 1, 8, 0, 8, 2);
        assert!(mu_ac < mu_full);
    }

    #[test]
    fn total_state_bytes_is_16_bytes_per_param() {
        let m = MemoryModel::default();
        let s = spec();
        let expected = s.total_params() as f64 * 16.0;
        assert!((m.total_state_bytes(&s) - expected).abs() < 1.0);
    }
}
