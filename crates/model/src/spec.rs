//! Transformer / LLM architecture descriptions.
//!
//! The paper evaluates LLaMA-2-architecture models with 32B, 70B and 110B
//! parameters (context length 4K, global batch 64 ≙ 256K tokens per step).
//! [`ModelSpec`] captures the architectural hyper-parameters needed to derive
//! parameter counts, FLOPs and memory footprints analytically.

use serde::{Deserialize, Serialize};

/// Architecture description of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"llama2-70b"`.
    pub name: String,
    /// Number of identical transformer layers (`L` in the paper).
    pub num_layers: u32,
    /// Hidden dimension.
    pub hidden_size: u64,
    /// Feed-forward (SwiGLU) inner dimension.
    pub ffn_hidden_size: u64,
    /// Number of attention heads.
    pub num_heads: u64,
    /// Number of key/value heads (grouped-query attention).
    pub num_kv_heads: u64,
    /// Vocabulary size.
    pub vocab_size: u64,
    /// Training sequence (context) length in tokens.
    pub seq_len: u64,
}

impl ModelSpec {
    /// Construct a custom spec.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        num_layers: u32,
        hidden_size: u64,
        ffn_hidden_size: u64,
        num_heads: u64,
        num_kv_heads: u64,
        vocab_size: u64,
        seq_len: u64,
    ) -> Self {
        Self {
            name: name.into(),
            num_layers,
            hidden_size,
            ffn_hidden_size,
            num_heads,
            num_kv_heads,
            vocab_size,
            seq_len,
        }
    }

    /// LLaMA-2 7B (used by the quickstart example and unit tests).
    pub fn llama2_7b() -> Self {
        Self::new("llama2-7b", 32, 4096, 11008, 32, 32, 32000, 4096)
    }

    /// LLaMA-2 13B.
    pub fn llama2_13b() -> Self {
        Self::new("llama2-13b", 40, 5120, 13824, 40, 40, 32000, 4096)
    }

    /// The 32B model of the paper (60 transformer layers, cf. Appendix A.1).
    pub fn llama2_32b() -> Self {
        Self::new("llama2-32b", 60, 6656, 17920, 52, 8, 32000, 4096)
    }

    /// LLaMA-2 70B (80 layers, grouped-query attention).
    pub fn llama2_70b() -> Self {
        Self::new("llama2-70b", 80, 8192, 28672, 64, 8, 32000, 4096)
    }

    /// The 110B model of the paper (80 layers, cf. Table 4).
    pub fn llama2_110b() -> Self {
        Self::new("llama2-110b", 80, 10240, 35840, 80, 8, 32000, 4096)
    }

    /// Return the preset matching a short name (`"32b"`, `"70b"`, `"110b"`, ...).
    pub fn preset(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "7b" | "llama2-7b" => Some(Self::llama2_7b()),
            "13b" | "llama2-13b" => Some(Self::llama2_13b()),
            "32b" | "llama2-32b" => Some(Self::llama2_32b()),
            "70b" | "llama2-70b" => Some(Self::llama2_70b()),
            "110b" | "llama2-110b" => Some(Self::llama2_110b()),
            _ => None,
        }
    }

    /// Parameters of the attention block of one layer (QKV + output projection,
    /// with grouped-query attention shrinking K/V).
    pub fn attention_params_per_layer(&self) -> u64 {
        let h = self.hidden_size;
        let kv_ratio = self.num_kv_heads as f64 / self.num_heads as f64;
        let qo = 2 * h * h;
        let kv = (2.0 * kv_ratio * (h * h) as f64).round() as u64;
        qo + kv
    }

    /// Parameters of the SwiGLU MLP of one layer (gate, up, down projections).
    pub fn mlp_params_per_layer(&self) -> u64 {
        3 * self.hidden_size * self.ffn_hidden_size
    }

    /// Parameters of the RMSNorm weights of one layer.
    pub fn norm_params_per_layer(&self) -> u64 {
        2 * self.hidden_size
    }

    /// Total parameters of one transformer layer.
    pub fn params_per_layer(&self) -> u64 {
        self.attention_params_per_layer()
            + self.mlp_params_per_layer()
            + self.norm_params_per_layer()
    }

    /// Parameters of the input embedding table.
    pub fn embedding_params(&self) -> u64 {
        self.vocab_size * self.hidden_size
    }

    /// Parameters of the (untied) LM head.
    pub fn lm_head_params(&self) -> u64 {
        self.vocab_size * self.hidden_size
    }

    /// Total model parameters.
    pub fn total_params(&self) -> u64 {
        self.num_layers as u64 * self.params_per_layer()
            + self.embedding_params()
            + self.lm_head_params()
    }

    /// Tokens per micro-batch of `b` sequences.
    pub fn tokens_per_micro_batch(&self, micro_batch_size: u64) -> u64 {
        micro_batch_size * self.seq_len
    }

    /// Tokens per global batch of `global_batch_size` sequences.
    pub fn tokens_per_global_batch(&self, global_batch_size: u64) -> u64 {
        global_batch_size * self.seq_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_parameter_counts_are_in_expected_ranges() {
        let b = 1_000_000_000f64;
        let p7 = ModelSpec::llama2_7b().total_params() as f64 / b;
        let p32 = ModelSpec::llama2_32b().total_params() as f64 / b;
        let p70 = ModelSpec::llama2_70b().total_params() as f64 / b;
        let p110 = ModelSpec::llama2_110b().total_params() as f64 / b;
        assert!((6.0..8.5).contains(&p7), "7B preset got {p7}B");
        assert!((28.0..38.0).contains(&p32), "32B preset got {p32}B");
        assert!((62.0..80.0).contains(&p70), "70B preset got {p70}B");
        assert!((95.0..125.0).contains(&p110), "110B preset got {p110}B");
    }

    #[test]
    fn paper_layer_counts() {
        // Appendix A.1: the 32B model has 60 layers; Table 4 / footnote: the
        // 70B and 110B models have 80 layers.
        assert_eq!(ModelSpec::llama2_32b().num_layers, 60);
        assert_eq!(ModelSpec::llama2_70b().num_layers, 80);
        assert_eq!(ModelSpec::llama2_110b().num_layers, 80);
    }

    #[test]
    fn batch_of_64_sequences_is_256k_tokens() {
        // §7.1: "The global batch size is set as 64 by default, constituting
        // each batch with 256K tokens."
        let spec = ModelSpec::llama2_70b();
        assert_eq!(spec.tokens_per_global_batch(64), 64 * 4096);
        assert_eq!(spec.tokens_per_global_batch(64), 262_144);
    }

    #[test]
    fn preset_lookup_by_short_name() {
        assert_eq!(ModelSpec::preset("70B").unwrap().name, "llama2-70b");
        assert_eq!(ModelSpec::preset("llama2-32b").unwrap().num_layers, 60);
        assert!(ModelSpec::preset("gpt-17t").is_none());
    }

    #[test]
    fn gqa_reduces_attention_params() {
        let gqa = ModelSpec::llama2_70b();
        let mut mha = gqa.clone();
        mha.num_kv_heads = mha.num_heads;
        assert!(gqa.attention_params_per_layer() < mha.attention_params_per_layer());
    }
}
