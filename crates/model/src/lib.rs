//! `malleus-model` — analytic descriptions of the large language models and the
//! hardware coefficients the Malleus planner consumes.
//!
//! The Malleus planner never touches tensors: it only needs a handful of
//! *profiled scalars* per model and hardware platform —
//!
//! * `τ(b)` — forward+backward time of one transformer layer on a single
//!   non-straggling GPU with micro-batch size `b`,
//! * `ρ_n` — efficiency coefficient of a tensor-parallel group of `n` GPUs,
//! * `μ`, `ν`, `C` — the per-stage memory model of Appendix B.4,
//! * byte counts for model states, activations and gradients used by the
//!   migration and gradient-synchronization simulators.
//!
//! The original system profiles these online; this reproduction derives them
//! analytically from the model architecture ([`spec::ModelSpec`]) and a
//! hardware description ([`profile::HardwareParams`]), which plays the role of
//! the paper's offline profiler.

pub mod compute;
pub mod memory;
pub mod profile;
pub mod spec;

pub use compute::{layer_flops_forward, layer_time_forward_backward, tensor_parallel_rho};
pub use memory::MemoryModel;
pub use profile::{HardwareParams, ProfiledCoefficients};
pub use spec::ModelSpec;
