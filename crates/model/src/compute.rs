//! Analytic compute-time model for transformer layers under tensor parallelism.
//!
//! These functions stand in for the paper's online profiler: they produce the
//! per-layer forward/backward times `ζ_n(b)` from which `τ(b) = ζ_1(b)` and the
//! efficiency coefficients `ρ_n = ζ_n / ζ_1` are derived (§4.2).

use crate::profile::HardwareParams;
use crate::spec::ModelSpec;

/// Dense FLOPs of the forward pass of one transformer layer for a micro-batch
/// of `b` sequences (matrix multiplies ≈ `2 · params · tokens`, plus the
/// attention score/value products which scale with `s²`).
pub fn layer_flops_forward(spec: &ModelSpec, micro_batch_size: u64) -> f64 {
    let tokens = spec.tokens_per_micro_batch(micro_batch_size) as f64;
    let dense = 2.0 * spec.params_per_layer() as f64 * tokens;
    // QK^T and PV each cost 2·b·s²·h flops (softmax ignored).
    let attn =
        4.0 * micro_batch_size as f64 * (spec.seq_len as f64).powi(2) * spec.hidden_size as f64;
    dense + attn
}

/// Bytes exchanged by one tensor-parallel all-reduce of the layer's activation
/// (b × s × h, fp16).
fn tp_allreduce_bytes(spec: &ModelSpec, micro_batch_size: u64) -> f64 {
    (micro_batch_size * spec.seq_len * spec.hidden_size) as f64 * 2.0
}

/// Time of a ring all-reduce of `bytes` across `n` GPUs connected by NVLink.
fn ring_allreduce_time(hardware: &HardwareParams, bytes: f64, n: u32) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * (n - 1.0) / n * bytes / hardware.intra_node_bandwidth + hardware.collective_latency
}

/// Forward+backward time of one transformer layer on a TP group of `tp_degree`
/// non-straggling GPUs (`ζ_n(b)` in the paper), in seconds.
///
/// The backward pass is modelled as 2× the forward compute (activation and
/// weight gradients).  Tensor parallelism requires two all-reduces in the
/// forward pass (attention output, MLP output) and two in the backward pass.
pub fn layer_time_forward_backward(
    spec: &ModelSpec,
    hardware: &HardwareParams,
    micro_batch_size: u64,
    tp_degree: u32,
) -> f64 {
    assert!(tp_degree >= 1, "tensor-parallel degree must be at least 1");
    let flops_fwd = layer_flops_forward(spec, micro_batch_size);
    let compute = 3.0 * flops_fwd / (tp_degree as f64 * hardware.effective_flops());
    let comm = 4.0
        * ring_allreduce_time(
            hardware,
            tp_allreduce_bytes(spec, micro_batch_size),
            tp_degree,
        );
    compute + comm
}

/// `ρ_n` of §4.2: `ζ_n / max_n' ζ_n' = ζ_n / ζ_1` (a single GPU is always the
/// slowest way to run a layer, so the maximum is attained at `n = 1`).
pub fn tensor_parallel_rho(
    spec: &ModelSpec,
    hardware: &HardwareParams,
    micro_batch_size: u64,
    tp_degree: u32,
) -> f64 {
    let zeta_n = layer_time_forward_backward(spec, hardware, micro_batch_size, tp_degree);
    let zeta_1 = layer_time_forward_backward(spec, hardware, micro_batch_size, 1);
    zeta_n / zeta_1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_flops_scale_linearly_with_micro_batch() {
        let spec = ModelSpec::llama2_32b();
        let f1 = layer_flops_forward(&spec, 1);
        let f4 = layer_flops_forward(&spec, 4);
        assert!((f4 / f1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn layer_time_decreases_with_tp_but_sublinearly() {
        let spec = ModelSpec::llama2_70b();
        let hw = HardwareParams::a800_cluster();
        let t1 = layer_time_forward_backward(&spec, &hw, 1, 1);
        let t8 = layer_time_forward_backward(&spec, &hw, 1, 8);
        assert!(t8 < t1);
        assert!(t8 > t1 / 8.0, "communication must make TP-8 sublinear");
    }

    #[test]
    fn rho_matches_paper_shape() {
        // The paper's ρ table (profiled on A800s) has ρ_1 = 1 and strictly
        // decreasing values that stay above the ideal 1/n.
        let spec = ModelSpec::llama2_110b();
        let hw = HardwareParams::a800_cluster();
        let rho: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|&n| tensor_parallel_rho(&spec, &hw, 1, n))
            .collect();
        assert!((rho[0] - 1.0).abs() < 1e-12);
        for w in rho.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert!(rho[3] > 0.125 && rho[3] < 0.35, "rho_8 = {}", rho[3]);
    }

    #[test]
    fn single_gpu_70b_layer_time_is_plausible() {
        // One 70B layer forward+backward for 4096 tokens on an A800 should take
        // on the order of tens of milliseconds.
        let spec = ModelSpec::llama2_70b();
        let hw = HardwareParams::a800_cluster();
        let t = layer_time_forward_backward(&spec, &hw, 1, 1);
        assert!(t > 0.005 && t < 0.2, "got {t} s");
    }
}
