//! `malleus-runtime` — the Malleus system loop (Figure 3).
//!
//! This crate ties together the three components of the paper's architecture:
//!
//! * the **profiler** (§5.2) monitors per-GPU efficiency from the executed
//!   steps, estimates straggling rates, probes standby devices, and raises a
//!   re-planning notification when any rate shifts by more than 5%;
//! * the **planner** (`malleus-core`) deduces a new parallelization plan;
//! * the **executor** (§5.1) instantiates plans on the simulated cluster,
//!   migrates model states on the fly and runs training steps.
//!
//! [`session::TrainingSession`] drives the full loop over a straggler trace,
//! with asynchronous (overlapped) re-planning and failure recovery, producing
//! the per-phase reports the end-to-end experiments (Figure 7 / Table 2) are
//! built from.

pub mod executor;
pub mod profiler;
pub mod replanner;
pub mod session;

pub use executor::Executor;
pub use profiler::{Profiler, ProfilerObservation};
pub use replanner::{
    replan_overlapped, replan_overlapped_backend, replan_overlapped_incremental,
    replan_overlapped_shared, BackendReplan, ReplanOutcome,
};
pub use session::{PhaseReport, RuntimeError, SessionReport, TrainingSession};
