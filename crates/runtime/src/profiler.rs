//! The profiler (§5.2): straggling-rate estimation and shift detection.
//!
//! During training the profiler measures, for every GPU, how long it was busy
//! per unit of work (one layer × one micro-batch).  Dividing by the fastest
//! GPU's unit time yields the straggling rate.  GPUs that are currently
//! standby (removed from the plan) do not appear in step reports, so the
//! profiler periodically micro-benchmarks them — here that probe reads the
//! cluster's current rate directly, standing in for the paper's background
//! benchmark kernels.  A re-planning notification fires when any rate changes
//! by more than the 5% threshold since the last accepted observation.

use malleus_cluster::ClusterSnapshot;
use malleus_sim::StepReport;
use serde::{Deserialize, Serialize};

/// One profiler observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilerObservation {
    /// Estimated straggling rate of every GPU.
    pub rates: Vec<f64>,
    /// Whether any rate shifted by more than the threshold since the previous
    /// observation (triggers re-planning).
    pub shift_detected: bool,
    /// The largest relative shift observed.
    pub max_shift: f64,
}

/// The profiler component.
#[derive(Debug, Clone)]
pub struct Profiler {
    /// Relative-change threshold that triggers re-planning (the paper uses 5%).
    pub shift_threshold: f64,
    last_rates: Option<Vec<f64>>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new(0.05)
    }
}

impl Profiler {
    /// Create a profiler with the given shift threshold.
    pub fn new(shift_threshold: f64) -> Self {
        Self {
            shift_threshold,
            last_rates: None,
        }
    }

    /// The most recent accepted rates, if any.
    pub fn last_rates(&self) -> Option<&[f64]> {
        self.last_rates.as_deref()
    }

    /// Estimate per-GPU straggling rates from a step report.  GPUs that
    /// executed no work in this step (standby devices) are filled in from the
    /// micro-benchmark `probe`.
    pub fn estimate_rates(report: &StepReport, probe: &ClusterSnapshot) -> Vec<f64> {
        let n = report.per_gpu_busy.len();
        let mut unit_times = vec![f64::NAN; n];
        for (g, slot) in unit_times.iter_mut().enumerate() {
            if report.per_gpu_work_units[g] > 0.0 {
                *slot = report.per_gpu_busy[g] / report.per_gpu_work_units[g];
            }
        }
        let fastest = unit_times
            .iter()
            .copied()
            .filter(|t| t.is_finite() && *t > 0.0)
            .fold(f64::INFINITY, f64::min);
        (0..n)
            .map(|g| {
                if unit_times[g].is_finite() && fastest.is_finite() {
                    (unit_times[g] / fastest).max(1.0)
                } else {
                    // Standby or failed GPU: use the micro-benchmark probe.
                    probe.rates.get(g).copied().unwrap_or(1.0).max(1.0)
                }
            })
            .collect()
    }

    /// Observe one executed step.  Returns the estimated rates and whether a
    /// re-planning notification should fire.
    pub fn observe(&mut self, report: &StepReport, probe: &ClusterSnapshot) -> ProfilerObservation {
        let rates = Self::estimate_rates(report, probe);
        let max_shift = match &self.last_rates {
            None => 0.0,
            Some(previous) => rates
                .iter()
                .zip(previous.iter())
                .map(|(&a, &b)| {
                    if a.is_infinite() && b.is_infinite() {
                        0.0
                    } else if a.is_infinite() || b.is_infinite() {
                        f64::INFINITY
                    } else {
                        (a - b).abs() / b.max(1e-12)
                    }
                })
                .fold(0.0, f64::max),
        };
        let shift_detected = self.last_rates.is_some() && max_shift > self.shift_threshold;
        self.last_rates = Some(rates.clone());
        ProfilerObservation {
            rates,
            shift_detected,
            max_shift,
        }
    }

    /// Forget the observation history (used after a restart-style recovery).
    pub fn reset(&mut self) {
        self.last_rates = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_core::ParallelizationPlan;
    use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};
    use malleus_sim::TrainingSimulator;

    fn run_step(cluster: &Cluster) -> StepReport {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let sim = TrainingSimulator::new(coeffs);
        let gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
        let plan = ParallelizationPlan::uniform(&gpus, 2, 4, 4, 60, 64, 1).unwrap();
        sim.step(&plan, &cluster.snapshot()).unwrap()
    }

    #[test]
    fn estimated_rates_recover_true_rates() {
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(0), 2.57);
        cluster.set_rate(GpuId(9), 3.75);
        let report = run_step(&cluster);
        let rates = Profiler::estimate_rates(&report, &cluster.snapshot());
        assert!((rates[0] - 2.57).abs() < 0.05, "rate[0] = {}", rates[0]);
        assert!((rates[9] - 3.75).abs() < 0.05, "rate[9] = {}", rates[9]);
        assert!((rates[20] - 1.0).abs() < 0.05);
    }

    #[test]
    fn shift_detection_fires_only_on_meaningful_changes() {
        let mut profiler = Profiler::new(0.05);
        let mut cluster = Cluster::homogeneous(4, 8);
        let report = run_step(&cluster);
        let first = profiler.observe(&report, &cluster.snapshot());
        assert!(!first.shift_detected, "first observation never triggers");
        // Same situation again: no shift.
        let report = run_step(&cluster);
        let second = profiler.observe(&report, &cluster.snapshot());
        assert!(!second.shift_detected);
        // Now a straggler appears: shift.
        cluster.set_rate(GpuId(3), 5.42);
        let report = run_step(&cluster);
        let third = profiler.observe(&report, &cluster.snapshot());
        assert!(third.shift_detected);
        assert!(third.max_shift > 0.05);
    }

    #[test]
    fn standby_gpus_are_probed() {
        // Build a report where GPUs 32..64 did no work; their rates must come
        // from the probe snapshot.
        let mut cluster = Cluster::homogeneous(8, 8);
        cluster.set_rate(GpuId(40), 12.53);
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let sim = TrainingSimulator::new(coeffs);
        let gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
        let plan = ParallelizationPlan::uniform(&gpus, 2, 4, 4, 60, 64, 1).unwrap();
        let report = sim.step(&plan, &cluster.snapshot()).unwrap();
        let rates = Profiler::estimate_rates(&report, &cluster.snapshot());
        assert!((rates[40] - 12.53).abs() < 1e-9);
        assert!((rates[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn reset_clears_history() {
        let mut profiler = Profiler::new(0.05);
        let cluster = Cluster::homogeneous(4, 8);
        let report = run_step(&cluster);
        profiler.observe(&report, &cluster.snapshot());
        assert!(profiler.last_rates().is_some());
        profiler.reset();
        assert!(profiler.last_rates().is_none());
    }
}
