//! Asynchronous re-planning (§5.3).
//!
//! When the profiler reports a shift, Malleus keeps training with the current
//! plan while the planning algorithm runs on background CPU processes.  Only if
//! planning takes longer than the current training step does the job stall for
//! the remainder.  In the paper's experiments the planning time (10–30 s) is
//! always hidden behind one training step; the reproduction computes its own
//! planner wall-clock time and applies the same overlap rule.
//!
//! Re-planning inherits the planner's candidate-lattice parallelism
//! ([`malleus_core::Parallelism`], default `Auto`): the background planning
//! processes of §5.3 map to the scoped worker threads of
//! `malleus_core::parallel`, shrinking the window during which a stall can
//! occur.  The deterministic reduction guarantees the adapted plan is the same
//! whatever the worker count, so overlap never trades away plan quality.

use malleus_cluster::ClusterSnapshot;
use malleus_core::{
    BackendId, ClusterEvent, ParallelizationPlan, PlanBackend, PlanError, PlanOutcome,
    PlannedOutcome, Planner, PlannerConfig, DEFAULT_STRAGGLER_THRESHOLD,
};
use malleus_model::ProfiledCoefficients;
use malleus_service::{PlanRequest, PlanTransport, ServiceError};
use serde::{Deserialize, Serialize};

/// Result of an overlapped re-planning round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanOutcome {
    /// The planner's output.
    pub outcome: PlanOutcome,
    /// Wall-clock planning time in seconds.
    pub planning_time: f64,
    /// Seconds of training stall not hidden by the overlap (usually zero).
    pub stall_time: f64,
    /// Whether the new plan differs from the previous one.
    pub plan_changed: bool,
}

/// Result of an overlapped re-planning round through a backend-neutral
/// [`PlanBackend`] (the trait-path analogue of [`ReplanOutcome`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendReplan {
    /// The backend's output.
    pub outcome: PlannedOutcome,
    /// Wall-clock planning time in seconds.
    pub planning_time: f64,
    /// Seconds of training stall not hidden by the overlap (usually zero).
    pub stall_time: f64,
    /// Whether the adapted plan (or active GPU set) differs from the previous
    /// one.
    pub plan_changed: bool,
}

/// Run the planner for the observed rates, overlapping the planning time with
/// one training step of `current_step_time` seconds.
///
/// The stall computation uses the *wall-clock* time of the `replan` call, not
/// `PlanTiming::total()`: the per-phase breakdown sums candidate durations
/// across all workers (aggregate CPU time, what Table 5 accounts), which
/// overstates the elapsed time whenever the candidate fan-out runs on more
/// than one core — and the whole point of overlapped re-planning is that only
/// elapsed time can stall training.
pub fn replan_overlapped(
    planner: &Planner,
    snapshot: &ClusterSnapshot,
    previous: &ParallelizationPlan,
    current_step_time: f64,
) -> Result<ReplanOutcome, PlanError> {
    let t0 = std::time::Instant::now();
    let outcome = planner.replan(snapshot, previous)?;
    let planning_time = t0.elapsed().as_secs_f64();
    let stall_time = (planning_time - current_step_time).max(0.0);
    let plan_changed = outcome.plan != *previous;
    Ok(ReplanOutcome {
        outcome,
        planning_time,
        stall_time,
        plan_changed,
    })
}

/// Warm-start (delta) overlapped re-planning: like [`replan_overlapped`], but
/// threads the previous [`PlanOutcome`] — including its persisted scored
/// lattice — into [`Planner::replan_delta`], so drift-only events reuse
/// memoized candidate evaluations instead of re-enumerating the whole
/// lattice.  Structural events (node loss / node join) and planners with
/// [`malleus_core::PlannerConfig::incremental`] off fall back to full
/// enumeration inside `replan_delta`; either way the adapted plan is
/// byte-identical to what [`replan_overlapped`] would produce.
pub fn replan_overlapped_incremental(
    planner: &Planner,
    snapshot: &ClusterSnapshot,
    previous: &PlanOutcome,
    current_step_time: f64,
) -> Result<ReplanOutcome, PlanError> {
    let t0 = std::time::Instant::now();
    let outcome = planner.replan_delta(snapshot, previous)?;
    let planning_time = t0.elapsed().as_secs_f64();
    let stall_time = (planning_time - current_step_time).max(0.0);
    let plan_changed = outcome.plan != previous.plan;
    Ok(ReplanOutcome {
        outcome,
        planning_time,
        stall_time,
        plan_changed,
    })
}

/// Overlapped re-planning through an arbitrary [`PlanBackend`] handle.
///
/// The cluster event is classified from the previous outcome's active GPU set
/// against the observed snapshot ([`ClusterEvent::classify`] with the paper's
/// 5% threshold), then handed to the backend's `replan`.  Static backends
/// (plain Megatron-LM / DeepSpeed) answer failures with
/// `PlanError::CannotAdapt`, which propagates — the caller decides whether
/// that kills the run (it does, for them: that is the paper's point).
pub fn replan_overlapped_backend(
    backend: &dyn PlanBackend,
    snapshot: &ClusterSnapshot,
    previous: &PlannedOutcome,
    current_step_time: f64,
) -> Result<BackendReplan, PlanError> {
    let t0 = std::time::Instant::now();
    let event = ClusterEvent::classify(previous, snapshot, DEFAULT_STRAGGLER_THRESHOLD);
    let outcome = backend.replan(snapshot, previous, event)?;
    let planning_time = t0.elapsed().as_secs_f64();
    let stall_time = (planning_time - current_step_time).max(0.0);
    let plan_changed = outcome.plan != previous.plan || outcome.active_gpus != previous.active_gpus;
    Ok(BackendReplan {
        outcome,
        planning_time,
        stall_time,
        plan_changed,
    })
}

/// Service-backed overlapped re-planning: like [`replan_overlapped`], but the
/// planner invocation goes through a shared [`PlanTransport`] — an in-process
/// [`malleus_service::PlanService`] or a remote
/// [`malleus_service::PlanClient`] dialing a standalone plan daemon — so N
/// sessions replanning after the same cluster event (same snapshot, same
/// coefficients, same configuration, same backend) pay for one planner run
/// and share the cached plan.
///
/// For [`BackendId::Malleus`] this mirrors `Planner::replan` exactly: first
/// request the plan with the previous DP degree pinned (the paper maintains
/// DP across adjustments, footnote 2); if no feasible plan exists with that
/// degree, fall back to the unconstrained search.  Other backends are
/// stateless over the snapshot, so a single `plan_backend` request suffices.
/// Backpressure ([`ServiceError::Overloaded`]) is *not* treated as
/// infeasibility — it propagates so the session can back off rather than
/// silently re-running the expensive fallback.
pub fn replan_overlapped_shared(
    transport: &dyn PlanTransport,
    backend: BackendId,
    coeffs: &ProfiledCoefficients,
    config: &PlannerConfig,
    snapshot: &ClusterSnapshot,
    previous: &ParallelizationPlan,
    current_step_time: f64,
) -> Result<BackendReplan, ServiceError> {
    let t0 = std::time::Instant::now();
    let outcome = if backend == BackendId::Malleus {
        let mut pinned_config = config.clone();
        pinned_config.fixed_dp = Some(previous.dp());
        let pinned = PlanRequest::new(coeffs.clone(), snapshot.clone(), pinned_config);
        match transport.plan_routed(backend, &pinned) {
            Ok(outcome) => outcome,
            Err(ServiceError::Plan(_)) => transport.plan_routed(
                backend,
                &PlanRequest::new(coeffs.clone(), snapshot.clone(), config.clone()),
            )?,
            Err(e) => return Err(e),
        }
    } else {
        transport.plan_routed(
            backend,
            &PlanRequest::new(coeffs.clone(), snapshot.clone(), config.clone()),
        )?
    };
    let planning_time = t0.elapsed().as_secs_f64();
    let stall_time = (planning_time - current_step_time).max(0.0);
    let plan_changed = outcome.plan.as_ref() != Some(previous);
    Ok(BackendReplan {
        outcome: (*outcome).clone(),
        planning_time,
        stall_time,
        plan_changed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_core::PlannerConfig;
    use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};

    fn planner() -> Planner {
        Planner::new(
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster()),
            PlannerConfig::default(),
        )
    }

    #[test]
    fn planning_is_hidden_behind_a_training_step() {
        let p = planner();
        let mut cluster = Cluster::homogeneous(4, 8);
        let initial = p.plan(&cluster.snapshot()).unwrap();
        cluster.set_rate(GpuId(0), 5.42);
        let replan = replan_overlapped(&p, &cluster.snapshot(), &initial.plan, 12.0).unwrap();
        assert!(replan.plan_changed);
        assert!(
            replan.planning_time < 12.0,
            "planning {}",
            replan.planning_time
        );
        assert_eq!(replan.stall_time, 0.0);
    }

    #[test]
    fn unchanged_situation_can_keep_the_same_plan() {
        let p = planner();
        let cluster = Cluster::homogeneous(4, 8);
        let initial = p.plan(&cluster.snapshot()).unwrap();
        let replan = replan_overlapped(&p, &cluster.snapshot(), &initial.plan, 12.0).unwrap();
        // With identical rates the planner should find a plan no better than
        // the current one; whether the exact plan object matches is not
        // guaranteed, but the estimated time must not regress.
        assert!(replan.outcome.estimated_step_time <= initial.estimated_step_time * 1.01);
    }

    #[test]
    fn parallel_replanning_adopts_the_serial_oracle_plan() {
        // The replanner routes through the planner's parallel candidate
        // fan-out; whatever the worker count, the adapted plan must be the
        // one the serial reference path picks.
        use malleus_core::Parallelism;
        let serial = planner().with_parallelism(Parallelism::Fixed(1));
        let parallel = planner().with_parallelism(Parallelism::Fixed(4));
        let mut cluster = Cluster::homogeneous(4, 8);
        let initial = serial.plan(&cluster.snapshot()).unwrap();
        cluster.set_rate(GpuId(2), 3.75);
        cluster.set_rate(GpuId(17), f64::INFINITY);
        let snapshot = cluster.snapshot();
        let a = replan_overlapped(&serial, &snapshot, &initial.plan, 12.0).unwrap();
        let b = replan_overlapped(&parallel, &snapshot, &initial.plan, 12.0).unwrap();
        assert_eq!(a.outcome.plan, b.outcome.plan);
        assert_eq!(a.outcome.dp, b.outcome.dp);
        assert_eq!(
            a.outcome.estimated_step_time.to_bits(),
            b.outcome.estimated_step_time.to_bits()
        );
        assert_eq!(a.plan_changed, b.plan_changed);
    }

    #[test]
    fn shared_replanning_matches_direct_replanning_and_amortizes_work() {
        use malleus_service::{PlanService, ServiceConfig};
        let p = planner();
        let mut cluster = Cluster::homogeneous(4, 8);
        let initial = p.plan(&cluster.snapshot()).unwrap();
        cluster.set_rate(GpuId(0), 5.42);
        let snapshot = cluster.snapshot();
        let direct = replan_overlapped(&p, &snapshot, &initial.plan, 12.0).unwrap();
        let service = PlanService::new(ServiceConfig::default());
        // Two tenants replanning after the same cluster event: one planner
        // invocation, bit-identical to the direct path for both.
        for _ in 0..2 {
            let shared = replan_overlapped_shared(
                &service,
                BackendId::Malleus,
                &p.cost.coeffs,
                &p.config,
                &snapshot,
                &initial.plan,
                12.0,
            )
            .unwrap();
            assert_eq!(shared.outcome.plan.as_ref(), Some(&direct.outcome.plan));
            assert_eq!(
                shared.outcome.plan.as_ref().unwrap().dp(),
                direct.outcome.dp
            );
            assert_eq!(
                shared.outcome.estimated_step_time.to_bits(),
                direct.outcome.estimated_step_time.to_bits()
            );
            assert_eq!(shared.plan_changed, direct.plan_changed);
        }
        let metrics = service.metrics();
        assert_eq!(metrics.planner_invocations, 1);
        assert_eq!(metrics.hits, 1);
    }

    #[test]
    fn backend_trait_replanning_matches_the_direct_path() {
        let p = planner();
        let mut cluster = Cluster::homogeneous(4, 8);
        let initial = p.plan(&cluster.snapshot()).unwrap();
        cluster.set_rate(GpuId(0), 5.42);
        let snapshot = cluster.snapshot();
        let direct = replan_overlapped(&p, &snapshot, &initial.plan, 12.0).unwrap();
        let previous = malleus_core::PlannedOutcome::from_malleus(initial);
        let via_trait = replan_overlapped_backend(&p, &snapshot, &previous, 12.0).unwrap();
        assert_eq!(via_trait.outcome.plan.as_ref(), Some(&direct.outcome.plan));
        assert_eq!(
            via_trait.outcome.estimated_step_time.to_bits(),
            direct.outcome.estimated_step_time.to_bits()
        );
        assert_eq!(via_trait.plan_changed, direct.plan_changed);
    }

    #[test]
    fn shared_replanning_falls_back_when_pinned_dp_is_infeasible() {
        use malleus_service::{PlanService, ServiceConfig};
        let p = planner();
        let mut cluster = Cluster::homogeneous(4, 8);
        let initial = p.plan(&cluster.snapshot()).unwrap();
        // Fail three of four nodes: the previous DP degree cannot survive and
        // the documented fallback re-opens the DP enumeration.
        for g in 8..32 {
            cluster.set_rate(GpuId(g), f64::INFINITY);
        }
        let snapshot = cluster.snapshot();
        let direct = p.replan(&snapshot, &initial.plan).unwrap();
        let service = PlanService::new(ServiceConfig::default());
        let shared = replan_overlapped_shared(
            &service,
            BackendId::Malleus,
            &p.cost.coeffs,
            &p.config,
            &snapshot,
            &initial.plan,
            12.0,
        )
        .unwrap();
        assert_eq!(shared.outcome.plan.as_ref(), Some(&direct.plan));
        assert_eq!(shared.outcome.plan.as_ref().unwrap().dp(), direct.dp);
    }

    #[test]
    fn incremental_replanning_is_byte_identical_to_full_replanning() {
        let p = planner();
        let mut cluster = Cluster::homogeneous(4, 8);
        let initial = p.plan(&cluster.snapshot()).unwrap();
        cluster.set_rate(GpuId(0), 5.42);
        let snapshot = cluster.snapshot();
        // Fresh planner for the full path: its memo never saw the event.
        let full = replan_overlapped(&planner(), &snapshot, &initial.plan, 12.0).unwrap();
        let delta = replan_overlapped_incremental(&p, &snapshot, &initial, 12.0).unwrap();
        assert!(
            delta.outcome.lattice.as_ref().unwrap().delta,
            "drift-only event must consult the memo"
        );
        assert_eq!(delta.outcome.plan, full.outcome.plan);
        assert_eq!(delta.outcome.dp, full.outcome.dp);
        assert_eq!(
            delta.outcome.estimated_step_time.to_bits(),
            full.outcome.estimated_step_time.to_bits()
        );
        assert_eq!(delta.plan_changed, full.plan_changed);
    }

    #[test]
    fn stall_is_charged_when_step_time_is_tiny() {
        let p = planner();
        let mut cluster = Cluster::homogeneous(4, 8);
        let initial = p.plan(&cluster.snapshot()).unwrap();
        cluster.set_rate(GpuId(0), 2.57);
        let replan = replan_overlapped(&p, &cluster.snapshot(), &initial.plan, 0.0).unwrap();
        assert!(replan.stall_time > 0.0);
        assert!((replan.stall_time - replan.planning_time).abs() < 1e-12);
    }
}
