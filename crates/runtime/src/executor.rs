//! The executor (§5.1): plan instantiation, training-step execution and
//! on-the-fly model migration.

use malleus_cluster::ClusterSnapshot;
use malleus_core::{plan_migration, ParallelizationPlan};
use malleus_model::ProfiledCoefficients;
use malleus_sim::{migration_time, MigrationCost, OomError, StepReport, TrainingSimulator};

/// The training executor: owns the currently instantiated plan and runs steps
/// against the simulated cluster.
#[derive(Debug, Clone)]
pub struct Executor {
    /// The training simulator (stands in for the Hetu execution engine).
    pub simulator: TrainingSimulator,
    current_plan: Option<ParallelizationPlan>,
}

impl Executor {
    /// Create an executor.
    pub fn new(coeffs: ProfiledCoefficients) -> Self {
        Self {
            simulator: TrainingSimulator::new(coeffs),
            current_plan: None,
        }
    }

    /// The currently instantiated plan, if any.
    pub fn current_plan(&self) -> Option<&ParallelizationPlan> {
        self.current_plan.as_ref()
    }

    /// Instantiate an initial plan (model states are materialized from the
    /// checkpoint / initializer, so there is no migration cost).
    pub fn instantiate(&mut self, plan: ParallelizationPlan) {
        self.current_plan = Some(plan);
    }

    /// Adopt a new plan by migrating the model states on the fly.  Returns the
    /// migration cost (zero when the plan is unchanged).
    pub fn migrate_to(
        &mut self,
        new_plan: ParallelizationPlan,
        snapshot: &ClusterSnapshot,
    ) -> MigrationCost {
        let coeffs = self.simulator.coeffs();
        let cost = match &self.current_plan {
            Some(old) if *old != new_plan => {
                let migration = plan_migration(old, &new_plan, coeffs);
                migration_time(coeffs, snapshot, &migration)
            }
            _ => MigrationCost {
                time: 0.0,
                total_bytes: 0.0,
                messages: 0,
            },
        };
        self.current_plan = Some(new_plan);
        cost
    }

    /// Run one training step with the current plan.
    ///
    /// # Panics
    /// Panics if no plan has been instantiated.
    pub fn train_step(&self, snapshot: &ClusterSnapshot) -> Result<StepReport, OomError> {
        let plan = self
            .current_plan
            .as_ref()
            .expect("executor has no instantiated plan");
        self.simulator.step(plan, snapshot)
    }

    /// Whether the current plan can still run: every active GPU must be alive.
    pub fn plan_runnable(&self, snapshot: &ClusterSnapshot) -> bool {
        match &self.current_plan {
            None => false,
            Some(plan) => plan
                .active_gpus()
                .iter()
                .all(|g| snapshot.rate(*g).is_finite()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_model::{HardwareParams, ModelSpec};

    fn executor() -> Executor {
        Executor::new(ProfiledCoefficients::derive(
            ModelSpec::llama2_32b(),
            HardwareParams::a800_cluster(),
        ))
    }

    fn plan(gpus: std::ops::Range<u32>) -> ParallelizationPlan {
        let ids: Vec<GpuId> = gpus.map(GpuId).collect();
        ParallelizationPlan::uniform(&ids, 2, 4, 4, 60, 64, 1).unwrap()
    }

    #[test]
    fn instantiate_then_train() {
        let mut ex = executor();
        let cluster = Cluster::homogeneous(4, 8);
        ex.instantiate(plan(0..32));
        let report = ex.train_step(&cluster.snapshot()).unwrap();
        assert!(report.step_time > 0.0);
        assert!(ex.plan_runnable(&cluster.snapshot()));
    }

    #[test]
    fn migrating_to_the_same_plan_is_free() {
        let mut ex = executor();
        let cluster = Cluster::homogeneous(4, 8);
        ex.instantiate(plan(0..32));
        let cost = ex.migrate_to(plan(0..32), &cluster.snapshot());
        assert_eq!(cost.time, 0.0);
    }

    #[test]
    fn migrating_to_a_different_plan_costs_time() {
        let mut ex = executor();
        let cluster = Cluster::homogeneous(8, 8);
        ex.instantiate(plan(0..32));
        let cost = ex.migrate_to(plan(32..64), &cluster.snapshot());
        assert!(cost.time > 0.0);
        assert!(cost.total_bytes > 0.0);
        // The paper reports migrations of a few seconds.
        assert!(cost.time < 60.0, "migration took {}", cost.time);
    }

    #[test]
    fn failed_gpu_makes_plan_unrunnable() {
        let mut ex = executor();
        let mut cluster = Cluster::homogeneous(4, 8);
        ex.instantiate(plan(0..32));
        cluster.set_rate(GpuId(5), f64::INFINITY);
        assert!(!ex.plan_runnable(&cluster.snapshot()));
    }

    #[test]
    #[should_panic(expected = "no instantiated plan")]
    fn training_without_a_plan_panics() {
        let ex = executor();
        let cluster = Cluster::homogeneous(4, 8);
        let _ = ex.train_step(&cluster.snapshot());
    }
}
