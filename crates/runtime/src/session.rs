//! End-to-end training sessions over a straggler trace.
//!
//! A [`TrainingSession`] reproduces the overall routine of §3.2: train with the
//! current plan, let the profiler watch per-GPU efficiency, trigger overlapped
//! re-planning when a >5% shift is detected, migrate the model states, and keep
//! going.  Failures (infinite rates on active GPUs) fall back to the
//! checkpoint-restart path with the failed GPUs excluded (§5.1).
//!
//! The session produces one [`PhaseReport`] per trace phase; the end-to-end
//! experiments (Figure 7 / Table 2 / Figure 8) are tabulated directly from
//! these reports.

use crate::executor::Executor;
use crate::profiler::Profiler;
use crate::replanner::{
    replan_overlapped, replan_overlapped_backend, replan_overlapped_incremental,
    replan_overlapped_shared, ReplanOutcome,
};
use malleus_cluster::{Cluster, ClusterSnapshot, Trace};
use malleus_core::{
    BackendId, PlanBackend, PlanError, PlanOutcome, PlannedOutcome, Planner, PlannerConfig,
};
use malleus_model::ProfiledCoefficients;
use malleus_service::{PlanClient, PlanRequest, PlanService, PlanTransport, ServiceError};
use malleus_sim::restart_time;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Errors produced while driving a training session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuntimeError {
    /// The planner could not produce any feasible plan.
    Planning(String),
    /// The executor ran out of memory with a plan that passed planning checks.
    OutOfMemory(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Planning(e) => write!(f, "planning failed: {e}"),
            RuntimeError::OutOfMemory(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<PlanError> for RuntimeError {
    fn from(e: PlanError) -> Self {
        RuntimeError::Planning(e.to_string())
    }
}

impl From<ServiceError> for RuntimeError {
    fn from(e: ServiceError) -> Self {
        RuntimeError::Planning(e.to_string())
    }
}

/// Per-phase summary of a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Name of the straggler situation (e.g. `"S3"`).
    pub situation: String,
    /// Number of training iterations in the phase.
    pub steps: u32,
    /// Steady-state step time with the adapted plan (seconds).
    pub step_time: f64,
    /// Step time measured with the *previous* plan right after the shift (what
    /// the job would keep paying without re-planning).
    pub step_time_before_adaptation: f64,
    /// Planner's estimated step time for the adapted plan.
    pub estimated_step_time: f64,
    /// Whether re-planning was triggered during this phase.
    pub replanned: bool,
    /// Planning wall-clock time (overlapped with training).
    pub planning_time: f64,
    /// Training stall not hidden by the overlap.
    pub stall_time: f64,
    /// Model-state migration time paid when adopting the new plan.
    pub migration_time: f64,
    /// Checkpoint-restart time paid (only on failure recovery).
    pub restart_time: f64,
    /// MFU of the adapted plan during this phase.
    pub mfu: f64,
    /// Data-parallel degree of the adapted plan.
    pub dp: usize,
    /// Number of standby (removed) GPUs under the adapted plan.
    pub standby_gpus: usize,
    /// Human-readable description of the adapted plan.
    pub plan_description: String,
}

/// Full session report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// One report per trace phase.
    pub phases: Vec<PhaseReport>,
    /// Total wall-clock training time across the trace (steady-state steps plus
    /// transition costs).
    pub total_time: f64,
}

impl SessionReport {
    /// Average step time across all phases, weighted by step counts.
    pub fn average_step_time(&self) -> f64 {
        let steps: f64 = self.phases.iter().map(|p| p.steps as f64).sum();
        if steps == 0.0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| p.step_time * p.steps as f64)
            .sum::<f64>()
            / steps
    }
}

/// A Malleus training session: planner + executor + profiler over a cluster.
#[derive(Debug, Clone)]
pub struct TrainingSession {
    /// The parallelization planner.
    pub planner: Planner,
    /// The executor.
    pub executor: Executor,
    /// The profiler.
    pub profiler: Profiler,
    /// The simulated cluster (true straggling rates live here).
    pub cluster: Cluster,
    /// Optional shared planning transport: when set, every planner invocation
    /// (initial plan and re-planning) is routed through it, so concurrent
    /// sessions planning against the same snapshot share one computation.
    /// Either an in-process [`PlanService`] or a [`PlanClient`] dialing a
    /// standalone plan daemon — the session loop cannot tell them apart.
    service: Option<Arc<dyn PlanTransport>>,
    /// Optional backend handle: when set, planning and re-planning go through
    /// this [`PlanBackend`] instead of the built-in Malleus planner, so the
    /// same session loop drives any of the paper's comparison systems.
    backend: Option<Arc<dyn PlanBackend>>,
}

impl TrainingSession {
    /// Create a session.
    pub fn new(coeffs: ProfiledCoefficients, config: PlannerConfig, cluster: Cluster) -> Self {
        Self {
            planner: Planner::new(coeffs.clone(), config),
            executor: Executor::new(coeffs),
            profiler: Profiler::default(),
            cluster,
            service: None,
            backend: None,
        }
    }

    /// Route this session's planning through a shared [`PlanService`]
    /// (multi-tenant path: N sessions replanning after the same cluster event
    /// pay for one planner invocation).  The produced plans are byte-identical
    /// to the direct path, so session reports differ only in planning
    /// wall-clock.
    pub fn with_service(mut self, service: Arc<PlanService>) -> Self {
        self.service = Some(service);
        self
    }

    /// Route this session's planning through a remote plan daemon via a
    /// [`PlanClient`] (the socket analogue of
    /// [`TrainingSession::with_service`]).  The client's L1 cache sits in
    /// front of the daemon's shared L2, and the wire codec preserves `f64`
    /// bit patterns, so the produced plans — and therefore the session
    /// reports — are byte-identical to the in-process paths.
    pub fn with_remote(mut self, client: Arc<PlanClient>) -> Self {
        self.service = Some(client);
        self
    }

    /// Drive this session's planning through an arbitrary [`PlanBackend`]
    /// (Malleus itself, or any baseline).  The backend must produce an
    /// executable [`malleus_core::ParallelizationPlan`] (`plan: Some`) —
    /// configuration-only backends like DeepSpeed cannot feed the executor
    /// and fail with [`RuntimeError::Planning`].  Takes precedence over
    /// [`TrainingSession::with_service`] for plan computation.
    pub fn with_backend(mut self, backend: Arc<dyn PlanBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Observed snapshot: what the profiler believes (here: true rates, since
    /// the simulator's measurements are exact).
    fn observed(&self) -> ClusterSnapshot {
        self.cluster.snapshot()
    }

    /// Initial planning, optionally via the shared service.
    ///
    /// Service backpressure ([`ServiceError::Overloaded`]) is transient and
    /// must not kill a training session: the session degrades to its own
    /// direct planner — the plan is byte-identical, it just forgoes the
    /// shared cache for that one invocation.  Planner infeasibility and
    /// service-internal failures remain fatal errors.
    fn plan_initial(&self, snapshot: &ClusterSnapshot) -> Result<PlanOutcome, RuntimeError> {
        match &self.service {
            Some(service) => {
                let request = PlanRequest::new(
                    self.planner.cost.coeffs.clone(),
                    snapshot.clone(),
                    self.planner.config.clone(),
                );
                match service.plan_routed(BackendId::Malleus, &request) {
                    Ok(outcome) => {
                        let malleus = outcome.malleus.clone().ok_or_else(|| {
                            RuntimeError::Planning(
                                "transport returned a non-Malleus outcome on the Malleus route"
                                    .into(),
                            )
                        })?;
                        Ok((*malleus).clone())
                    }
                    Err(ServiceError::Overloaded { .. }) => Ok(self.planner.plan(snapshot)?),
                    Err(e) => Err(e.into()),
                }
            }
            None => Ok(self.planner.plan(snapshot)?),
        }
    }

    /// Overlapped re-planning, optionally via the shared service (with the
    /// same overload degradation as [`TrainingSession::plan_initial`]).
    fn replan(
        &self,
        snapshot: &ClusterSnapshot,
        previous: &malleus_core::ParallelizationPlan,
        current_step_time: f64,
    ) -> Result<ReplanOutcome, RuntimeError> {
        match &self.service {
            Some(service) => {
                match replan_overlapped_shared(
                    service.as_ref(),
                    BackendId::Malleus,
                    &self.planner.cost.coeffs,
                    &self.planner.config,
                    snapshot,
                    previous,
                    current_step_time,
                ) {
                    Ok(replan) => {
                        let malleus = replan.outcome.malleus.clone().ok_or_else(|| {
                            RuntimeError::Planning(
                                "service returned a non-Malleus outcome on the Malleus route"
                                    .into(),
                            )
                        })?;
                        Ok(ReplanOutcome {
                            outcome: (*malleus).clone(),
                            planning_time: replan.planning_time,
                            stall_time: replan.stall_time,
                            plan_changed: replan.plan_changed,
                        })
                    }
                    Err(ServiceError::Overloaded { .. }) => Ok(replan_overlapped(
                        &self.planner,
                        snapshot,
                        previous,
                        current_step_time,
                    )?),
                    Err(e) => Err(e.into()),
                }
            }
            None => Ok(replan_overlapped(
                &self.planner,
                snapshot,
                previous,
                current_step_time,
            )?),
        }
    }

    /// Run the session over a trace.
    pub fn run(&mut self, trace: &Trace) -> Result<SessionReport, RuntimeError> {
        let mut phases = Vec::with_capacity(trace.phases.len());
        let mut total_time = 0.0;

        // Initial plan: deduced with the rates of the first phase's situation
        // already applied?  No — the paper starts from the healthy-cluster plan
        // and adapts; we instantiate with whatever the cluster currently shows.
        if let Some(first) = trace.phases.first() {
            self.cluster.apply_situation(&first.situation.rates);
        }
        let initial = match &self.backend {
            Some(backend) => backend
                .plan(&self.observed(), &self.planner.config)
                .map_err(RuntimeError::from)?,
            None => PlannedOutcome::from_malleus(self.plan_initial(&self.observed())?),
        };
        let first_plan = initial.plan.clone().ok_or_else(|| {
            RuntimeError::Planning(format!(
                "{} produced no executable plan for the initial snapshot",
                initial.backend
            ))
        })?;
        self.executor.instantiate(first_plan);
        let mut current = initial.clone();
        // Direct-path sessions thread the previous outcome (with its scored
        // candidate lattice) into every re-plan, so drift-only events take the
        // warm-start delta path instead of full enumeration.
        let mut last_outcome: Option<PlanOutcome> = current.malleus.as_deref().cloned();

        for (index, phase) in trace.phases.iter().enumerate() {
            self.cluster.apply_situation(&phase.situation.rates);
            let snapshot = self.observed();

            // One detection step with the current (old) plan, if it can run.
            let mut restart_cost = 0.0;
            let mut step_before = f64::NAN;
            let runnable = self.executor.plan_runnable(&snapshot);
            if runnable {
                let report = self
                    .executor
                    .train_step(&snapshot)
                    .map_err(|e| RuntimeError::OutOfMemory(e.to_string()))?;
                step_before = report.step_time;
                self.profiler.observe(&report, &snapshot);
            } else {
                // Failure: recover from the latest checkpoint on the surviving
                // GPUs (the straggling rate of the failed GPUs is infinite, so
                // the planner excludes them).
                restart_cost = restart_time(&self.planner.cost.coeffs, snapshot.num_nodes);
                self.profiler.reset();
            }

            // Re-plan when the situation differs from what the current plan was
            // built for (first phase keeps the freshly planned initial plan).
            let mut replanned = false;
            let mut planning_time = 0.0;
            let mut stall_time = 0.0;
            let mut migration_time = 0.0;
            let mut estimated = initial.estimated_step_time;
            if index > 0 || !runnable {
                let previous = self
                    .executor
                    .current_plan()
                    .expect("executor always holds a plan after instantiate")
                    .clone();
                let step = if step_before.is_finite() {
                    step_before
                } else {
                    0.0
                };
                match &self.backend {
                    Some(backend) => {
                        let replan =
                            replan_overlapped_backend(backend.as_ref(), &snapshot, &current, step)
                                .map_err(RuntimeError::from)?;
                        replanned = true;
                        planning_time = replan.planning_time;
                        stall_time = replan.stall_time;
                        estimated = replan.outcome.estimated_step_time;
                        if replan.plan_changed {
                            let new_plan = replan.outcome.plan.clone().ok_or_else(|| {
                                RuntimeError::Planning(format!(
                                    "{} produced no executable plan after the cluster event",
                                    replan.outcome.backend
                                ))
                            })?;
                            let cost = self.executor.migrate_to(new_plan, &snapshot);
                            // Backends with their own transition model (restart,
                            // Oobleck) report the cost they pay; Malleus-style
                            // live migration is priced by the executor.
                            migration_time = if replan.outcome.transition_cost > 0.0 {
                                replan.outcome.transition_cost
                            } else {
                                cost.time
                            };
                        }
                        current = replan.outcome;
                    }
                    None => {
                        let replan = match (&self.service, &last_outcome) {
                            // Direct path with a remembered outcome: delta
                            // replanning (byte-identical to full enumeration,
                            // falls back on structural cluster changes).
                            (None, Some(prev)) => {
                                replan_overlapped_incremental(&self.planner, &snapshot, prev, step)?
                            }
                            _ => self.replan(&snapshot, &previous, step)?,
                        };
                        replanned = true;
                        planning_time = replan.planning_time;
                        stall_time = replan.stall_time;
                        estimated = replan.outcome.estimated_step_time;
                        last_outcome = Some(replan.outcome.clone());
                        if replan.plan_changed {
                            let cost = self.executor.migrate_to(replan.outcome.plan, &snapshot);
                            migration_time = cost.time;
                        }
                    }
                }
            }

            // Steady-state steps with the adapted plan.
            let report = self
                .executor
                .train_step(&snapshot)
                .map_err(|e| RuntimeError::OutOfMemory(e.to_string()))?;
            self.profiler.observe(&report, &snapshot);
            let plan = self.executor.current_plan().unwrap();
            let phase_time = report.step_time * phase.iterations as f64
                + migration_time
                + stall_time
                + restart_cost;
            total_time += phase_time;

            phases.push(PhaseReport {
                situation: phase.situation.name.clone(),
                steps: phase.iterations,
                step_time: report.step_time,
                step_time_before_adaptation: if step_before.is_finite() {
                    step_before
                } else {
                    report.step_time
                },
                estimated_step_time: estimated,
                replanned,
                planning_time,
                stall_time,
                migration_time,
                restart_time: restart_cost,
                mfu: report.mfu,
                dp: plan.dp(),
                standby_gpus: plan.removed_gpus.len(),
                plan_description: plan.describe(&snapshot),
            });
        }

        Ok(SessionReport { phases, total_time })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{GpuId, PaperSituation, Situation, TracePhase};
    use malleus_model::{HardwareParams, ModelSpec};

    fn session(cluster: Cluster) -> TrainingSession {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        TrainingSession::new(coeffs, PlannerConfig::default(), cluster)
    }

    fn short_trace(cluster: &Cluster, situations: &[PaperSituation]) -> Trace {
        Trace {
            phases: situations
                .iter()
                .map(|s| TracePhase {
                    situation: s.situation(cluster),
                    iterations: 5,
                })
                .collect(),
        }
    }

    #[test]
    fn session_adapts_to_a_straggler_and_recovers() {
        let cluster = Cluster::homogeneous(4, 8);
        let trace = short_trace(
            &cluster,
            &[
                PaperSituation::Normal,
                PaperSituation::S2,
                PaperSituation::Normal,
            ],
        );
        let mut s = session(cluster);
        let report = s.run(&trace).expect("session");
        assert_eq!(report.phases.len(), 3);
        let normal = &report.phases[0];
        let straggled = &report.phases[1];
        let recovered = &report.phases[2];
        // Without adaptation the straggler would roughly multiply the step time;
        // with adaptation the loss must stay well below the straggling rate.
        assert!(straggled.replanned);
        assert!(straggled.step_time < straggled.step_time_before_adaptation * 0.7);
        assert!(straggled.step_time < normal.step_time * 2.0);
        // After the straggler disappears the step time returns close to normal.
        assert!((recovered.step_time - normal.step_time).abs() / normal.step_time < 0.1);
        // Migration happened and was cheap relative to a restart.
        assert!(straggled.migration_time > 0.0);
        assert!(straggled.migration_time < 60.0);
        assert_eq!(straggled.restart_time, 0.0);
    }

    #[test]
    fn session_handles_gpu_failure_with_restart() {
        let cluster = Cluster::homogeneous(4, 8);
        let mut failure = Situation::normal();
        failure.name = "failure".to_string();
        failure.rates = vec![(GpuId(3), f64::INFINITY)];
        let trace = Trace {
            phases: vec![
                TracePhase {
                    situation: Situation::normal(),
                    iterations: 3,
                },
                TracePhase {
                    situation: failure,
                    iterations: 3,
                },
            ],
        };
        let mut s = session(cluster);
        let report = s.run(&trace).expect("session");
        let failed_phase = &report.phases[1];
        assert!(failed_phase.restart_time > 0.0);
        assert!(failed_phase.standby_gpus >= 1);
        assert!(failed_phase.step_time.is_finite());
    }

    #[test]
    fn sessions_sharing_a_service_replan_once_per_cluster_event() {
        use malleus_service::{PlanService, ServiceConfig};
        let cluster = Cluster::homogeneous(4, 8);
        let trace = short_trace(&cluster, &[PaperSituation::Normal, PaperSituation::S3]);
        // Reference: a serviceless session over the same trace.
        let baseline = session(cluster.clone()).run(&trace).expect("baseline");

        let service = Arc::new(PlanService::new(ServiceConfig::default()));
        let tenants = 3;
        let reports: Vec<SessionReport> = (0..tenants)
            .map(|_| {
                let mut s = session(cluster.clone()).with_service(Arc::clone(&service));
                s.run(&trace).expect("service-backed session")
            })
            .collect();
        for report in &reports {
            assert_eq!(report.phases.len(), baseline.phases.len());
            for (ours, theirs) in report.phases.iter().zip(baseline.phases.iter()) {
                // Identical plans (and therefore simulated step times); only
                // planning wall-clock may differ between the paths.
                assert_eq!(ours.step_time, theirs.step_time);
                assert_eq!(ours.dp, theirs.dp);
                assert_eq!(ours.plan_description, theirs.plan_description);
            }
        }
        let metrics = service.metrics();
        // Each tenant plans the same (snapshot, config) sequence: every
        // distinct planning problem is computed once and shared.
        assert!(
            metrics.planner_invocations < metrics.requests,
            "invocations {} must be amortized over {} requests",
            metrics.planner_invocations,
            metrics.requests
        );
        assert!(metrics.hits + metrics.coalesced > 0);
    }

    #[test]
    fn session_survives_service_backpressure_by_planning_locally() {
        use malleus_model::{HardwareParams, ModelSpec};
        use malleus_service::{PlanRequest, PlanService, ServiceConfig};
        let cluster = Cluster::homogeneous(4, 8);
        let trace = short_trace(&cluster, &[PaperSituation::Normal, PaperSituation::S2]);
        let baseline = session(cluster.clone()).run(&trace).expect("baseline");
        // One execution slot, no wait queue: while a foreign tenant holds the
        // slot, every session request is shed with Overloaded.
        let service = Arc::new(PlanService::new(ServiceConfig {
            max_concurrent_plans: 1,
            max_queue_depth: 0,
            ..ServiceConfig::default()
        }));
        let blocker = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                // 110B on 64 GPUs: slow enough to hold the slot for a while.
                let coeffs = ProfiledCoefficients::derive(
                    ModelSpec::llama2_110b(),
                    HardwareParams::a800_cluster(),
                );
                let request = PlanRequest::new(
                    coeffs,
                    Cluster::homogeneous(8, 8).snapshot(),
                    PlannerConfig::default(),
                );
                service.plan(&request).expect("blocker plan");
            })
        };
        while service.metrics().active_plans == 0 {
            std::thread::yield_now();
        }
        // The session must degrade to its own planner (byte-identical plans)
        // instead of dying on the transient overload.
        let report = session(cluster)
            .with_service(Arc::clone(&service))
            .run(&trace)
            .expect("session must survive backpressure");
        for (ours, theirs) in report.phases.iter().zip(baseline.phases.iter()) {
            assert_eq!(ours.step_time, theirs.step_time);
            assert_eq!(ours.dp, theirs.dp);
        }
        assert!(
            service.metrics().rejected > 0,
            "the saturated service should have shed at least the first request"
        );
        blocker.join().unwrap();
    }

    #[test]
    fn remote_session_matches_the_direct_session() {
        use malleus_service::{
            ClientConfig, PlanClient, PlanServer, PlanService, ServerConfig, ServiceConfig,
        };
        let cluster = Cluster::homogeneous(4, 8);
        let trace = short_trace(
            &cluster,
            &[
                PaperSituation::Normal,
                PaperSituation::S2,
                PaperSituation::Normal,
            ],
        );
        let direct = session(cluster.clone()).run(&trace).expect("direct");

        let service = Arc::new(PlanService::new(ServiceConfig::default()));
        let _server = PlanServer::bind_tcp(service, "127.0.0.1:0", ServerConfig::default())
            .expect("bind daemon");
        let addr = _server.tcp_addr().expect("tcp endpoint");
        let client =
            Arc::new(PlanClient::connect_tcp(addr, ClientConfig::default()).expect("connect"));
        let mut remote = session(cluster).with_remote(Arc::clone(&client));
        let via_socket = remote.run(&trace).expect("remote session");

        assert_eq!(via_socket.phases.len(), direct.phases.len());
        for (ours, theirs) in via_socket.phases.iter().zip(direct.phases.iter()) {
            // Byte-identical plans over the wire ⇒ bit-identical step times.
            assert_eq!(ours.step_time.to_bits(), theirs.step_time.to_bits());
            assert_eq!(ours.dp, theirs.dp);
            assert_eq!(ours.plan_description, theirs.plan_description);
            assert_eq!(ours.migration_time, theirs.migration_time);
        }
        let stats = client.l1_stats();
        assert!(stats.requests > 0, "planning went through the client");
    }

    #[test]
    fn malleus_backend_session_matches_the_direct_session() {
        let cluster = Cluster::homogeneous(4, 8);
        let trace = short_trace(
            &cluster,
            &[
                PaperSituation::Normal,
                PaperSituation::S2,
                PaperSituation::Normal,
            ],
        );
        let direct = session(cluster.clone()).run(&trace).expect("direct");
        let s = session(cluster);
        let handle: Arc<dyn malleus_core::PlanBackend> = Arc::new(s.planner.clone());
        let mut s = s.with_backend(handle);
        let via_trait = s.run(&trace).expect("trait");
        assert_eq!(via_trait.phases.len(), direct.phases.len());
        for (ours, theirs) in via_trait.phases.iter().zip(direct.phases.iter()) {
            assert_eq!(ours.step_time.to_bits(), theirs.step_time.to_bits());
            assert_eq!(ours.dp, theirs.dp);
            assert_eq!(ours.plan_description, theirs.plan_description);
            assert_eq!(ours.migration_time, theirs.migration_time);
        }
    }

    #[test]
    fn average_step_time_is_step_weighted() {
        let report = SessionReport {
            phases: vec![
                PhaseReport {
                    situation: "a".into(),
                    steps: 1,
                    step_time: 10.0,
                    step_time_before_adaptation: 10.0,
                    estimated_step_time: 10.0,
                    replanned: false,
                    planning_time: 0.0,
                    stall_time: 0.0,
                    migration_time: 0.0,
                    restart_time: 0.0,
                    mfu: 0.5,
                    dp: 2,
                    standby_gpus: 0,
                    plan_description: String::new(),
                },
                PhaseReport {
                    situation: "b".into(),
                    steps: 3,
                    step_time: 20.0,
                    step_time_before_adaptation: 20.0,
                    estimated_step_time: 20.0,
                    replanned: false,
                    planning_time: 0.0,
                    stall_time: 0.0,
                    migration_time: 0.0,
                    restart_time: 0.0,
                    mfu: 0.5,
                    dp: 2,
                    standby_gpus: 0,
                    plan_description: String::new(),
                },
            ],
            total_time: 70.0,
        };
        assert!((report.average_step_time() - 17.5).abs() < 1e-12);
    }
}
