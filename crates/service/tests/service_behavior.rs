//! Behavioral tests of the planning service: LRU eviction order, coalescing
//! under concurrency (exactly one planner invocation per distinct key), and
//! byte-identical equivalence with a direct `Planner::plan` call.

use malleus_cluster::{Cluster, GpuId};
use malleus_core::{Planner, PlannerConfig};
use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};
use malleus_service::{PlanRequest, PlanService, ServiceConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn coeffs_7b() -> ProfiledCoefficients {
    ProfiledCoefficients::derive(ModelSpec::llama2_7b(), HardwareParams::a800_cluster())
}

/// A distinct small request per variant index (variant 0 = healthy cluster;
/// variant k > 0 straggles GPU k%8 at a distinct rate).
fn request_variant(variant: usize) -> PlanRequest {
    let mut cluster = Cluster::homogeneous(1, 8);
    if variant > 0 {
        cluster.set_rate(GpuId((variant % 8) as u32), 1.5 + variant as f64 * 0.25);
    }
    PlanRequest::new(
        coeffs_7b(),
        cluster.snapshot(),
        PlannerConfig {
            global_batch_size: 8,
            ..PlannerConfig::default()
        },
    )
}

#[test]
fn lru_evicts_least_recently_used_entry() {
    // One shard of capacity 2 so the eviction order is fully observable.
    let service = PlanService::new(ServiceConfig {
        shards: 1,
        capacity_per_shard: 2,
        ..ServiceConfig::default()
    });
    let (a, b, c) = (request_variant(1), request_variant(2), request_variant(3));
    service.plan(&a).unwrap();
    service.plan(&b).unwrap();
    assert_eq!(service.metrics().planner_invocations, 2);
    // Touch A so B becomes the LRU entry, then insert C (evicts B).
    service.plan(&a).unwrap();
    service.plan(&c).unwrap();
    assert_eq!(service.metrics().evictions, 1);
    assert_eq!(service.cached_plans(), 2);
    // A survived the eviction (it was touched), B did not.
    service.plan(&a).unwrap();
    assert_eq!(service.metrics().planner_invocations, 3, "A must still hit");
    service.plan(&b).unwrap();
    assert_eq!(service.metrics().planner_invocations, 4, "B must re-plan");
}

#[test]
fn service_result_is_byte_identical_to_direct_planner() {
    let service = PlanService::new(ServiceConfig::default());
    for variant in [0, 1, 5] {
        let request = request_variant(variant);
        let direct = Planner::new(request.coeffs.clone(), request.config.clone())
            .plan(&request.snapshot)
            .expect("direct plan");
        let miss = service.plan(&request).expect("service plan (miss)");
        let hit = service.plan(&request).expect("service plan (hit)");
        for outcome in [&miss, &hit] {
            assert_eq!(direct.plan, outcome.plan, "variant {variant}");
            assert_eq!(direct.chosen_tp, outcome.chosen_tp);
            assert_eq!(direct.dp, outcome.dp);
            assert_eq!(
                direct.estimated_step_time.to_bits(),
                outcome.estimated_step_time.to_bits()
            );
            assert_eq!(
                direct.estimated_step_time_simplified.to_bits(),
                outcome.estimated_step_time_simplified.to_bits()
            );
        }
    }
}

#[test]
fn worker_budget_does_not_change_the_plan() {
    // Two services with opposite concurrency/thread budgets must produce
    // bit-equal plans: the parallelism override is execution policy only.
    let narrow = PlanService::new(ServiceConfig {
        max_concurrent_plans: 1,
        worker_budget: 1,
        ..ServiceConfig::default()
    });
    let wide = PlanService::new(ServiceConfig {
        max_concurrent_plans: 2,
        worker_budget: 8,
        ..ServiceConfig::default()
    });
    let request = request_variant(2);
    let a = narrow.plan(&request).unwrap();
    let b = wide.plan(&request).unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(
        a.estimated_step_time.to_bits(),
        b.estimated_step_time.to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Spawn N clients issuing an identical request plus M clients issuing
    /// distinct ones, all concurrently: the planner must run exactly once per
    /// distinct key (coalescing + caching), and the ledger must balance.
    #[test]
    fn concurrent_identical_requests_plan_exactly_once(
        identical in 2usize..6,
        distinct in 0usize..3,
    ) {
        let service = Arc::new(PlanService::new(ServiceConfig::default()));
        std::thread::scope(|scope| {
            for _ in 0..identical {
                let service = Arc::clone(&service);
                scope.spawn(move || service.plan(&request_variant(0)).expect("identical"));
            }
            for v in 0..distinct {
                let service = Arc::clone(&service);
                scope.spawn(move || service.plan(&request_variant(v + 1)).expect("distinct"));
            }
        });
        let m = service.metrics();
        prop_assert_eq!(m.requests, (identical + distinct) as u64);
        prop_assert_eq!(m.planner_invocations, 1 + distinct as u64);
        prop_assert_eq!(m.hits + m.misses + m.coalesced, m.requests);
        prop_assert_eq!(m.rejected, 0);
        prop_assert_eq!(service.cached_plans(), 1 + distinct);
        prop_assert_eq!(service.inflight_plans(), 0);
        // A later identical request is a pure cache hit: no new invocation.
        service.plan(&request_variant(0)).expect("cached");
        prop_assert_eq!(service.metrics().planner_invocations, 1 + distinct as u64);
    }
}
