//! Request coalescing (singleflight).
//!
//! Concurrent identical requests must not re-plan: the first arrival for a
//! key becomes the *leader* and runs the planner; later arrivals become
//! *followers* and block on a condvar-backed slot until the leader publishes
//! the shared result.  A fingerprint collision — a different request hashing
//! to an in-flight key — is detected by full-equality comparison against the
//! leader's request and falls back to an independent computation, so
//! coalescing can never hand a tenant another tenant's plan.
//!
//! Leader-failure hardening: if the leader thread panics/unwinds mid-plan it
//! never reaches [`InFlightTable::complete`], which would historically leave
//! followers parked on the condvar forever.  The leader therefore holds an
//! unwind guard (`CompleteSlotOnDrop` in `lib.rs`) that publishes
//! [`Publication::Aborted`] on the way out; followers observing an abort fall
//! back to computing the plan independently instead of hanging or inheriting
//! a synthetic error.

use crate::{KeyedRequest, ServiceError};
use malleus_core::{PlannedOutcome, RankedMutex};
use std::collections::HashMap;
use std::sync::{Arc, Condvar};

/// What a computation produced, shared verbatim with every coalesced waiter.
pub(crate) type PlanResult = Result<Arc<PlannedOutcome>, ServiceError>;

/// What the leader published into the slot.
#[derive(Debug, Clone)]
pub(crate) enum Publication {
    /// The leader ran to completion (successfully or with a typed error).
    Done(PlanResult),
    /// The leader unwound without completing (panic mid-plan); followers
    /// must recompute independently.
    Aborted,
}

/// One in-flight computation.
#[derive(Debug)]
pub(crate) struct InFlight {
    /// The leader's keyed request (followers confirm full equality — backend
    /// included — before waiting).
    request: KeyedRequest,
    result: RankedMutex<Option<Publication>>,
    ready: Condvar,
}

impl InFlight {
    fn new(request: KeyedRequest) -> Self {
        Self {
            request,
            // Rank from crates/lint/lock_order.toml (checked by malleus-lint).
            // `RankedMutex` recovers from poisoning: the slot is an `Option`
            // set exactly once, so a leader panic must not cascade poison
            // panics into every follower.
            result: RankedMutex::new(30, "InFlight.result", None),
            ready: Condvar::new(),
        }
    }

    /// Block until the leader publishes (a result *or* an abort), then return
    /// a clone of the publication.
    pub fn wait(&self) -> Publication {
        let mut slot = self.result.lock();
        while slot.is_none() {
            slot = self.result.wait(&self.ready, slot);
        }
        slot.clone().expect("loop exits only once published")
    }

    fn publish(&self, publication: Publication) {
        *self.result.lock() = Some(publication);
        self.ready.notify_all();
    }
}

/// How a request relates to the in-flight table.
pub(crate) enum Role {
    /// First arrival: owns the computation and must call
    /// [`InFlightTable::complete`] (or [`InFlightTable::abort`]) exactly once.
    Leader(Arc<InFlight>),
    /// Identical request already in flight: wait on its slot.
    Follower(Arc<InFlight>),
    /// A *different* request is in flight under the same fingerprint;
    /// compute independently without touching the slot.
    Collision,
}

/// The singleflight table: at most one slot per key.
#[derive(Debug)]
pub(crate) struct InFlightTable {
    slots: RankedMutex<HashMap<u64, Arc<InFlight>>>,
}

impl Default for InFlightTable {
    fn default() -> Self {
        Self {
            // Rank from crates/lint/lock_order.toml (checked by malleus-lint).
            slots: RankedMutex::new(20, "InFlightTable.slots", HashMap::new()),
        }
    }
}

impl InFlightTable {
    /// Join the in-flight computation for `key`, or become its leader.
    pub fn join(&self, key: u64, request: &KeyedRequest) -> Role {
        let mut slots = self.slots.lock();
        match slots.get(&key) {
            Some(slot) if slot.request.matches(request) => Role::Follower(Arc::clone(slot)),
            Some(_) => Role::Collision,
            None => {
                let slot = Arc::new(InFlight::new(request.clone()));
                slots.insert(key, Arc::clone(&slot));
                Role::Leader(slot)
            }
        }
    }

    /// Leader-side completion: publish the result to every follower (waking
    /// them) and retire the slot so later requests go to the cache.
    pub fn complete(&self, key: u64, slot: &Arc<InFlight>, result: PlanResult) {
        slot.publish(Publication::Done(result));
        self.slots.lock().remove(&key);
    }

    /// Leader-side abort (unwind path): wake every follower with
    /// [`Publication::Aborted`] so they recompute independently, and retire
    /// the slot so a later arrival can become a fresh leader.
    pub fn abort(&self, key: u64, slot: &Arc<InFlight>) {
        slot.publish(Publication::Aborted);
        self.slots.lock().remove(&key);
    }

    /// Number of in-flight computations (diagnostics).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }
}
