//! Request coalescing (singleflight).
//!
//! Concurrent identical requests must not re-plan: the first arrival for a
//! key becomes the *leader* and runs the planner; later arrivals become
//! *followers* and block on a condvar-backed slot until the leader publishes
//! the shared result.  A fingerprint collision — a different request hashing
//! to an in-flight key — is detected by full-equality comparison against the
//! leader's request and falls back to an independent computation, so
//! coalescing can never hand a tenant another tenant's plan.

use crate::{KeyedRequest, ServiceError};
use malleus_core::PlannedOutcome;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// What a computation produced, shared verbatim with every coalesced waiter.
pub(crate) type PlanResult = Result<Arc<PlannedOutcome>, ServiceError>;

/// One in-flight computation.
#[derive(Debug)]
pub(crate) struct InFlight {
    /// The leader's keyed request (followers confirm full equality — backend
    /// included — before waiting).
    request: KeyedRequest,
    result: Mutex<Option<PlanResult>>,
    ready: Condvar,
}

impl InFlight {
    fn new(request: KeyedRequest) -> Self {
        Self {
            request,
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Block until the leader publishes, then return a clone of its result.
    pub fn wait(&self) -> PlanResult {
        let mut slot = self.result.lock().unwrap();
        while slot.is_none() {
            slot = self.ready.wait(slot).unwrap();
        }
        slot.as_ref().unwrap().clone()
    }

    fn publish(&self, result: PlanResult) {
        *self.result.lock().unwrap() = Some(result);
        self.ready.notify_all();
    }
}

/// How a request relates to the in-flight table.
pub(crate) enum Role {
    /// First arrival: owns the computation and must call
    /// [`InFlightTable::complete`] exactly once.
    Leader(Arc<InFlight>),
    /// Identical request already in flight: wait on its slot.
    Follower(Arc<InFlight>),
    /// A *different* request is in flight under the same fingerprint;
    /// compute independently without touching the slot.
    Collision,
}

/// The singleflight table: at most one slot per key.
#[derive(Debug, Default)]
pub(crate) struct InFlightTable {
    slots: Mutex<HashMap<u64, Arc<InFlight>>>,
}

impl InFlightTable {
    /// Join the in-flight computation for `key`, or become its leader.
    pub fn join(&self, key: u64, request: &KeyedRequest) -> Role {
        let mut slots = self.slots.lock().unwrap();
        match slots.get(&key) {
            Some(slot) if slot.request.matches(request) => Role::Follower(Arc::clone(slot)),
            Some(_) => Role::Collision,
            None => {
                let slot = Arc::new(InFlight::new(request.clone()));
                slots.insert(key, Arc::clone(&slot));
                Role::Leader(slot)
            }
        }
    }

    /// Leader-side completion: publish the result to every follower (waking
    /// them) and retire the slot so later requests go to the cache.
    pub fn complete(&self, key: u64, slot: &Arc<InFlight>, result: PlanResult) {
        slot.publish(result);
        self.slots.lock().unwrap().remove(&key);
    }

    /// Number of in-flight computations (diagnostics).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }
}
