//! Sharded LRU cache of completed plans.
//!
//! Keys are the 64-bit [`crate::KeyedRequest::key`] fingerprint (request
//! fingerprint mixed with the backend id and the backend's config
//! fingerprint); every hit is confirmed with a full-equality check of the
//! stored keyed request (the same discipline as
//! `malleus_core::GroupingCache`), so fingerprint collisions degrade to
//! recomputation, never to serving another tenant's — or another backend's —
//! plan.  Distinct requests that share a fingerprint coexist in a small
//! per-key bucket: each occupies its own LRU slot instead of perpetually
//! replacing the other (which would deny one tenant cache hits forever).
//! Shards are independent mutexes selected by key, so concurrent tenants
//! touching different plans do not contend on one lock.  Each shard evicts
//! its least-recently-used entry once full; ties on the (shard-local) use
//! clock break on the smaller key, then the older bucket position, so
//! eviction is deterministic.

use crate::KeyedRequest;
use malleus_core::PlannedOutcome;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct CacheEntry {
    /// The keyed request the plan was computed for (full-equality
    /// confirmation).
    request: KeyedRequest,
    outcome: Arc<PlannedOutcome>,
    /// Shard-local logical timestamp of the last hit or insertion.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// Fingerprint → bucket of colliding entries (almost always length 1).
    entries: HashMap<u64, Vec<CacheEntry>>,
    clock: u64,
}

impl Shard {
    fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Evict the least-recently-used entry across all buckets (deterministic
    /// tie-break: clock, then key, then bucket position).
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .flat_map(|(k, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, e)| (e.last_used, *k, i))
            })
            .min();
        if let Some((_, key, index)) = victim {
            let bucket = self.entries.get_mut(&key).expect("victim bucket");
            bucket.remove(index);
            if bucket.is_empty() {
                self.entries.remove(&key);
            }
            true
        } else {
            false
        }
    }
}

/// The sharded plan cache.
#[derive(Debug)]
pub(crate) struct ShardedPlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

impl ShardedPlanCache {
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Confirmed lookup: only the bucket entry whose stored request fully
    /// matches `request` counts as a hit; colliding co-residents are left
    /// untouched.
    pub fn get(&self, key: u64, request: &KeyedRequest) -> Option<Arc<PlannedOutcome>> {
        let mut shard = self.shard(key).lock().unwrap();
        shard.clock += 1;
        let now = shard.clock;
        let bucket = shard.entries.get_mut(&key)?;
        let entry = bucket.iter_mut().find(|e| e.request.matches(request))?;
        entry.last_used = now;
        Some(Arc::clone(&entry.outcome))
    }

    /// Insert a freshly computed plan, returning the number of entries evicted
    /// (0 or 1).  A request already resident (same fingerprint *and* matching
    /// request) is replaced in place; a colliding request gets its own bucket
    /// slot so both survive.
    pub fn insert(&self, key: u64, request: KeyedRequest, outcome: Arc<PlannedOutcome>) -> u64 {
        if self.capacity_per_shard == 0 {
            return 0;
        }
        let mut shard = self.shard(key).lock().unwrap();
        shard.clock += 1;
        let now = shard.clock;
        if let Some(bucket) = shard.entries.get_mut(&key) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.request.matches(&request)) {
                entry.outcome = outcome;
                entry.last_used = now;
                return 0;
            }
        }
        let mut evicted = 0;
        if shard.len() >= self.capacity_per_shard && shard.evict_lru() {
            evicted = 1;
        }
        shard.entries.entry(key).or_default().push(CacheEntry {
            request,
            outcome,
            last_used: now,
        });
        evicted
    }

    /// Total number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanRequest;
    use malleus_cluster::Cluster;
    use malleus_core::{BackendId, PlannerConfig};
    use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};

    fn keyed(batch: u64) -> KeyedRequest {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_7b(), HardwareParams::a800_cluster());
        KeyedRequest {
            backend: BackendId::Malleus,
            backend_fingerprint: 0,
            request: PlanRequest::new(
                coeffs,
                Cluster::homogeneous(1, 8).snapshot(),
                PlannerConfig {
                    global_batch_size: batch,
                    ..PlannerConfig::default()
                },
            ),
        }
    }

    fn outcome(step_time: f64) -> Arc<PlannedOutcome> {
        Arc::new(PlannedOutcome {
            backend: BackendId::Malleus,
            plan: None,
            active_gpus: Vec::new(),
            estimated_step_time: step_time,
            transition_cost: 0.0,
            description: "test".to_string(),
            malleus: None,
        })
    }

    /// Regression: two distinct requests sharing a 64-bit fingerprint used to
    /// perpetually replace each other's entry — after warm-up, each lookup of
    /// one evicted the other, so one tenant never got cache hits.  The cache
    /// API takes the fingerprint as a parameter, so the collision is forced
    /// directly with distinct requests under one key.
    #[test]
    fn colliding_requests_coexist_and_both_hit_after_warmup() {
        let cache = ShardedPlanCache::new(1, 8);
        let key = 0xdead_beef;
        let a = keyed(8);
        let b = keyed(16);
        assert!(!a.matches(&b), "fixture requests must be distinct");
        // Warm-up: both tenants insert under the colliding fingerprint.
        cache.insert(key, a.clone(), outcome(1.0));
        cache.insert(key, b.clone(), outcome(2.0));
        assert_eq!(cache.len(), 2, "collision must not replace the survivor");
        // Steady state: both hit, repeatedly, with their own outcomes.
        for _ in 0..3 {
            let hit_a = cache.get(key, &a).expect("tenant A hits");
            let hit_b = cache.get(key, &b).expect("tenant B hits");
            assert_eq!(hit_a.estimated_step_time, 1.0);
            assert_eq!(hit_b.estimated_step_time, 2.0);
        }
        // Re-inserting a resident request replaces in place, never a
        // co-resident.
        cache.insert(key, a.clone(), outcome(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(key, &a).unwrap().estimated_step_time, 3.0);
        assert_eq!(cache.get(key, &b).unwrap().estimated_step_time, 2.0);
    }

    #[test]
    fn lru_eviction_spans_collision_buckets() {
        let cache = ShardedPlanCache::new(1, 2);
        let a = keyed(8);
        let b = keyed(16);
        let c = keyed(32);
        cache.insert(1, a.clone(), outcome(1.0));
        cache.insert(1, b.clone(), outcome(2.0));
        // Touch A so B is the LRU entry, then overflow with C on another key.
        cache.get(1, &a).expect("A resident");
        let evicted = cache.insert(2, c.clone(), outcome(3.0));
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, &a).is_some());
        assert!(cache.get(1, &b).is_none(), "LRU bucket entry evicted");
        assert!(cache.get(2, &c).is_some());
    }
}
