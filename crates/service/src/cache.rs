//! Sharded LRU cache of completed plans.
//!
//! Keys are the 64-bit [`crate::KeyedRequest::key`] fingerprint (request
//! fingerprint mixed with the backend id and the backend's config
//! fingerprint); every hit is confirmed with a full-equality check of the
//! stored keyed request (the same discipline as
//! `malleus_core::GroupingCache`), so fingerprint collisions degrade to
//! recomputation, never to serving another tenant's — or another backend's —
//! plan.  Shards are independent mutexes selected by key, so concurrent
//! tenants touching different plans do not contend on one lock.  Each shard
//! evicts its least-recently-used entry once full; ties on the (shard-local)
//! use clock break on the smaller key so eviction is deterministic.

use crate::KeyedRequest;
use malleus_core::PlannedOutcome;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct CacheEntry {
    /// The keyed request the plan was computed for (full-equality
    /// confirmation).
    request: KeyedRequest,
    outcome: Arc<PlannedOutcome>,
    /// Shard-local logical timestamp of the last hit or insertion.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<u64, CacheEntry>,
    clock: u64,
}

/// The sharded plan cache.
#[derive(Debug)]
pub(crate) struct ShardedPlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

impl ShardedPlanCache {
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Confirmed lookup: a fingerprint match whose stored request differs from
    /// `request` is reported as a miss (the entry stays until the recomputed
    /// plan replaces it).
    pub fn get(&self, key: u64, request: &KeyedRequest) -> Option<Arc<PlannedOutcome>> {
        let mut shard = self.shard(key).lock().unwrap();
        shard.clock += 1;
        let now = shard.clock;
        let entry = shard.entries.get_mut(&key)?;
        if !entry.request.matches(request) {
            return None;
        }
        entry.last_used = now;
        Some(Arc::clone(&entry.outcome))
    }

    /// Insert a freshly computed plan, returning the number of entries evicted
    /// (0 or 1).  Re-inserting an existing key (including a fingerprint
    /// collision being replaced) never evicts a third entry.
    pub fn insert(&self, key: u64, request: KeyedRequest, outcome: Arc<PlannedOutcome>) -> u64 {
        if self.capacity_per_shard == 0 {
            return 0;
        }
        let mut shard = self.shard(key).lock().unwrap();
        shard.clock += 1;
        let now = shard.clock;
        let mut evicted = 0;
        if !shard.entries.contains_key(&key) && shard.entries.len() >= self.capacity_per_shard {
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.last_used, **k))
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
                evicted = 1;
            }
        }
        shard.entries.insert(
            key,
            CacheEntry {
                request,
                outcome,
                last_used: now,
            },
        );
        evicted
    }

    /// Total number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }
}
