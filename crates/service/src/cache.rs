//! Sharded LRU cache of completed plans (the shared L2 tier).
//!
//! Keys are the 64-bit [`crate::KeyedRequest::key`] fingerprint (request
//! fingerprint mixed with the backend id and the backend's config
//! fingerprint); every hit is confirmed with a full-equality check of the
//! stored keyed request (the same discipline as
//! `malleus_core::GroupingCache`), so fingerprint collisions degrade to
//! recomputation, never to serving another tenant's — or another backend's —
//! plan.  Distinct requests that share a fingerprint coexist in a small
//! per-key bucket: each occupies its own LRU slot instead of perpetually
//! replacing the other (which would deny one tenant cache hits forever).
//! Shards are independent mutexes selected by key, so concurrent tenants
//! touching different plans do not contend on one lock.
//!
//! Eviction is three-pronged and deterministic:
//! * **LRU capacity**: each shard holds at most `capacity_per_shard` entries;
//!   overflow evicts the least-recently-used entry (ties on the shard-local
//!   use clock break on the smaller key, then the older bucket position).
//! * **TTL**: entries older than the optional `ttl` are purged lazily on the
//!   next touch of their bucket — a plan computed for a cluster state nobody
//!   has asked about in ten minutes is stale by construction.
//! * **Byte budget**: each shard tracks the approximate resident size of its
//!   outcomes ([`approx_outcome_size`]) and evicts LRU-first until under the
//!   optional `max_bytes_per_shard`, so a handful of 512-GPU lattice-bearing
//!   plans cannot squeeze out every small tenant.

use crate::sync::lock_or_poisoned;
use crate::KeyedRequest;
use malleus_core::PlannedOutcome;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Approximate resident bytes of a planned outcome — the variable-size parts
/// (plan topology, lattice, snapshot, description) plus a fixed overhead for
/// the struct itself.  Used for the byte-budget eviction tier; it does not
/// need to be exact, only monotone in the real footprint.
pub(crate) fn approx_outcome_size(outcome: &PlannedOutcome) -> usize {
    let mut size = 128 + outcome.description.len() + outcome.active_gpus.len() * 4;
    if let Some(plan) = &outcome.plan {
        size += plan.removed_gpus.len() * 4;
        for pipeline in &plan.pipelines {
            size += 32;
            for stage in &pipeline.stages {
                size += 16 + stage.group.gpus.len() * 4;
            }
        }
    }
    if let Some(malleus) = &outcome.malleus {
        size += 192;
        size += malleus.plan.removed_gpus.len() * 4;
        for pipeline in &malleus.plan.pipelines {
            size += 32;
            for stage in &pipeline.stages {
                size += 16 + stage.group.gpus.len() * 4;
            }
        }
        if let Some(lattice) = &malleus.lattice {
            size += 64
                + lattice.entries.len() * 40
                + lattice.snapshot.rates.len() * 12
                + lattice.snapshot.node_of.len() * 4;
        }
    }
    size
}

#[derive(Debug)]
struct CacheEntry {
    /// The keyed request the plan was computed for (full-equality
    /// confirmation).
    request: KeyedRequest,
    outcome: Arc<PlannedOutcome>,
    /// Shard-local logical timestamp of the last hit or insertion.
    last_used: u64,
    /// Wall-clock insertion time, for TTL expiry (refreshed on in-place
    /// replacement, *not* on hits — a hit on stale data would otherwise keep
    /// it alive forever).
    inserted: Instant,
    /// Approximate resident bytes of `outcome`.
    size: usize,
}

#[derive(Debug, Default)]
struct Shard {
    /// Fingerprint → bucket of colliding entries (almost always length 1).
    entries: HashMap<u64, Vec<CacheEntry>>,
    clock: u64,
    /// Sum of `CacheEntry::size` across all buckets.
    bytes: usize,
}

impl Shard {
    fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Drop expired entries from the bucket under `key`, returning how many
    /// were purged.
    fn purge_expired(&mut self, key: u64, ttl: Duration, now: Instant) -> u64 {
        let Some(bucket) = self.entries.get_mut(&key) else {
            return 0;
        };
        let before = bucket.len();
        let mut freed = 0;
        bucket.retain(|e| {
            let live = now.duration_since(e.inserted) < ttl;
            if !live {
                freed += e.size;
            }
            live
        });
        let purged = before - bucket.len();
        if bucket.is_empty() {
            self.entries.remove(&key);
        }
        self.bytes -= freed;
        purged as u64
    }

    /// Evict the least-recently-used entry across all buckets (deterministic
    /// tie-break: clock, then key, then bucket position).
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .flat_map(|(k, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, e)| (e.last_used, *k, i))
            })
            .min();
        let Some((_, key, index)) = victim else {
            return false;
        };
        let Some(bucket) = self.entries.get_mut(&key) else {
            return false;
        };
        let removed = bucket.remove(index);
        self.bytes -= removed.size;
        if bucket.is_empty() {
            self.entries.remove(&key);
        }
        true
    }
}

/// The sharded plan cache.
#[derive(Debug)]
pub(crate) struct ShardedPlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    ttl: Option<Duration>,
    max_bytes_per_shard: Option<usize>,
}

impl ShardedPlanCache {
    pub fn new(
        shards: usize,
        capacity_per_shard: usize,
        ttl: Option<Duration>,
        max_bytes_per_shard: Option<usize>,
    ) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard,
            ttl,
            max_bytes_per_shard,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Confirmed lookup: only the bucket entry whose stored request fully
    /// matches `request` counts as a hit; colliding co-residents are left
    /// untouched.  Returns the outcome (if any) and the number of expired
    /// entries purged from the touched bucket along the way.
    pub fn get(&self, key: u64, request: &KeyedRequest) -> (Option<Arc<PlannedOutcome>>, u64) {
        let mut shard = lock_or_poisoned(self.shard(key));
        shard.clock += 1;
        let now = shard.clock;
        let mut expired = 0;
        if let Some(ttl) = self.ttl {
            expired = shard.purge_expired(key, ttl, Instant::now());
        }
        let Some(bucket) = shard.entries.get_mut(&key) else {
            return (None, expired);
        };
        let Some(entry) = bucket.iter_mut().find(|e| e.request.matches(request)) else {
            return (None, expired);
        };
        entry.last_used = now;
        (Some(Arc::clone(&entry.outcome)), expired)
    }

    /// Insert a freshly computed plan, returning the number of entries evicted
    /// or expired to make room.  A request already resident (same fingerprint
    /// *and* matching request) is replaced in place; a colliding request gets
    /// its own bucket slot so both survive.
    pub fn insert(&self, key: u64, request: KeyedRequest, outcome: Arc<PlannedOutcome>) -> u64 {
        if self.capacity_per_shard == 0 {
            return 0;
        }
        let size = approx_outcome_size(&outcome);
        let mut shard = lock_or_poisoned(self.shard(key));
        shard.clock += 1;
        let now = shard.clock;
        let mut evicted = 0;
        if let Some(ttl) = self.ttl {
            evicted += shard.purge_expired(key, ttl, Instant::now());
        }
        if let Some(bucket) = shard.entries.get_mut(&key) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.request.matches(&request)) {
                let old_size = entry.size;
                entry.outcome = outcome;
                entry.last_used = now;
                entry.inserted = Instant::now();
                entry.size = size;
                shard.bytes = shard.bytes - old_size + size;
                return evicted;
            }
        }
        while shard.len() >= self.capacity_per_shard && shard.evict_lru() {
            evicted += 1;
        }
        if let Some(budget) = self.max_bytes_per_shard {
            // The incoming entry counts against the budget too; an outcome
            // larger than the whole budget still gets one slot (evicting all
            // co-residents), otherwise huge plans would be uncacheable and
            // replanned every time.
            while shard.len() > 0 && shard.bytes + size > budget && shard.evict_lru() {
                evicted += 1;
            }
        }
        shard.bytes += size;
        shard.entries.entry(key).or_default().push(CacheEntry {
            request,
            outcome,
            last_used: now,
            inserted: Instant::now(),
            size,
        });
        evicted
    }

    /// Total number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_or_poisoned(s).len()).sum()
    }

    /// Approximate resident bytes across all shards (diagnostics).
    pub fn approx_bytes(&self) -> usize {
        self.shards.iter().map(|s| lock_or_poisoned(s).bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanRequest;
    use malleus_cluster::Cluster;
    use malleus_core::{BackendId, PlannerConfig};
    use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};

    fn keyed(batch: u64) -> KeyedRequest {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_7b(), HardwareParams::a800_cluster());
        KeyedRequest {
            backend: BackendId::Malleus,
            backend_fingerprint: 0,
            request: PlanRequest::new(
                coeffs,
                Cluster::homogeneous(1, 8).snapshot(),
                PlannerConfig {
                    global_batch_size: batch,
                    ..PlannerConfig::default()
                },
            ),
        }
    }

    fn outcome(step_time: f64) -> Arc<PlannedOutcome> {
        Arc::new(PlannedOutcome {
            backend: BackendId::Malleus,
            plan: None,
            active_gpus: Vec::new(),
            estimated_step_time: step_time,
            transition_cost: 0.0,
            description: "test".to_string(),
            malleus: None,
        })
    }

    /// Regression: two distinct requests sharing a 64-bit fingerprint used to
    /// perpetually replace each other's entry — after warm-up, each lookup of
    /// one evicted the other, so one tenant never got cache hits.  The cache
    /// API takes the fingerprint as a parameter, so the collision is forced
    /// directly with distinct requests under one key.
    #[test]
    fn colliding_requests_coexist_and_both_hit_after_warmup() {
        let cache = ShardedPlanCache::new(1, 8, None, None);
        let key = 0xdead_beef;
        let a = keyed(8);
        let b = keyed(16);
        assert!(!a.matches(&b), "fixture requests must be distinct");
        // Warm-up: both tenants insert under the colliding fingerprint.
        cache.insert(key, a.clone(), outcome(1.0));
        cache.insert(key, b.clone(), outcome(2.0));
        assert_eq!(cache.len(), 2, "collision must not replace the survivor");
        // Steady state: both hit, repeatedly, with their own outcomes.
        for _ in 0..3 {
            let hit_a = cache.get(key, &a).0.expect("tenant A hits");
            let hit_b = cache.get(key, &b).0.expect("tenant B hits");
            assert_eq!(hit_a.estimated_step_time, 1.0);
            assert_eq!(hit_b.estimated_step_time, 2.0);
        }
        // Re-inserting a resident request replaces in place, never a
        // co-resident.
        cache.insert(key, a.clone(), outcome(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(key, &a).0.unwrap().estimated_step_time, 3.0);
        assert_eq!(cache.get(key, &b).0.unwrap().estimated_step_time, 2.0);
    }

    #[test]
    fn lru_eviction_spans_collision_buckets() {
        let cache = ShardedPlanCache::new(1, 2, None, None);
        let a = keyed(8);
        let b = keyed(16);
        let c = keyed(32);
        cache.insert(1, a.clone(), outcome(1.0));
        cache.insert(1, b.clone(), outcome(2.0));
        // Touch A so B is the LRU entry, then overflow with C on another key.
        cache.get(1, &a).0.expect("A resident");
        let evicted = cache.insert(2, c.clone(), outcome(3.0));
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, &a).0.is_some());
        assert!(cache.get(1, &b).0.is_none(), "LRU bucket entry evicted");
        assert!(cache.get(2, &c).0.is_some());
    }

    #[test]
    fn expired_entries_are_purged_on_the_next_touch() {
        let ttl = Duration::from_millis(20);
        let cache = ShardedPlanCache::new(1, 8, Some(ttl), None);
        let a = keyed(8);
        cache.insert(1, a.clone(), outcome(1.0));
        assert!(cache.get(1, &a).0.is_some(), "fresh entry hits");
        std::thread::sleep(ttl + Duration::from_millis(20));
        let (hit, expired) = cache.get(1, &a);
        assert!(hit.is_none(), "expired entry must not be served");
        assert_eq!(expired, 1, "expiry is reported for the eviction counter");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.approx_bytes(), 0, "byte accounting survives expiry");
        // Reinsertion after expiry behaves like a fresh entry.
        cache.insert(1, a.clone(), outcome(2.0));
        assert_eq!(cache.get(1, &a).0.unwrap().estimated_step_time, 2.0);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        let a = keyed(8);
        let b = keyed(16);
        let c = keyed(32);
        let per_entry = approx_outcome_size(&outcome(0.0));
        // Budget fits exactly two fixture outcomes.
        let cache = ShardedPlanCache::new(1, 64, None, Some(per_entry * 2));
        cache.insert(1, a.clone(), outcome(1.0));
        cache.insert(2, b.clone(), outcome(2.0));
        assert_eq!(cache.approx_bytes(), per_entry * 2);
        // Touch A so B is LRU, then overflow the byte budget with C.
        cache.get(1, &a).0.expect("A resident");
        let evicted = cache.insert(3, c.clone(), outcome(3.0));
        assert_eq!(evicted, 1, "byte budget forced one LRU eviction");
        assert!(cache.get(1, &a).0.is_some());
        assert!(cache.get(2, &b).0.is_none(), "LRU entry paid for the bytes");
        assert!(cache.get(3, &c).0.is_some());
        assert!(cache.approx_bytes() <= per_entry * 2);
    }

    #[test]
    fn an_outcome_larger_than_the_budget_still_gets_one_slot() {
        let huge = Arc::new(PlannedOutcome {
            description: "x".repeat(4096),
            ..(*outcome(1.0)).clone()
        });
        let cache = ShardedPlanCache::new(1, 64, None, Some(256));
        let a = keyed(8);
        cache.insert(1, a.clone(), Arc::clone(&huge));
        assert!(
            cache.get(1, &a).0.is_some(),
            "oversized outcomes are cached (evicting everything else) rather than thrashing"
        );
        assert_eq!(cache.len(), 1);
    }
}
