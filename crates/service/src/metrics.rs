//! Service-level counters and latency percentiles.
//!
//! Counters are lock-free atomics bumped on the request path; service-time
//! samples land in a fixed-size ring (bounded memory under sustained load).
//! [`ServiceMetrics`] is a consistent-enough point-in-time snapshot for
//! dashboards and the throughput experiment — the counters are read
//! individually, so a snapshot taken while requests are in flight may be off
//! by the requests that completed mid-read.

use crate::sync::lock_or_poisoned;
use malleus_core::BackendId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of service-time samples retained for the percentile estimates.
const LATENCY_WINDOW: usize = 4096;

/// Independent latency stripes: one global sample mutex would re-serialize
/// the cache-hit fast path the sharded cache keeps contention-free, and
/// inflate the very hit latencies it measures.  Recording picks a stripe
/// round-robin; the snapshot merges all stripes.
const LATENCY_STRIPES: usize = 8;

/// Internal recorder owned by the service.
#[derive(Debug)]
pub(crate) struct MetricsRecorder {
    pub requests: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub coalesced: AtomicU64,
    pub planner_invocations: AtomicU64,
    pub evictions: AtomicU64,
    pub rejected: AtomicU64,
    pub timed_out: AtomicU64,
    /// Per-backend counter breakout, indexed by [`BackendId::index`].
    per_backend: Vec<BackendCounters>,
    next_stripe: AtomicU64,
    latencies: Vec<Mutex<LatencyRing>>,
}

/// Lock-free counters for one registered backend.
#[derive(Debug, Default)]
pub(crate) struct BackendCounters {
    pub requests: AtomicU64,
    pub hits: AtomicU64,
    pub coalesced: AtomicU64,
    pub planner_invocations: AtomicU64,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self {
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            planner_invocations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            per_backend: (0..BackendId::ALL.len())
                .map(|_| BackendCounters::default())
                .collect(),
            next_stripe: AtomicU64::new(0),
            latencies: (0..LATENCY_STRIPES)
                .map(|_| Mutex::new(LatencyRing::default()))
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
}

impl LatencyRing {
    fn record(&mut self, seconds: f64) {
        if self.samples.len() < LATENCY_WINDOW / LATENCY_STRIPES {
            self.samples.push(seconds);
        } else {
            let slot = self.next;
            self.samples[slot] = seconds;
        }
        self.next = (self.next + 1) % (LATENCY_WINDOW / LATENCY_STRIPES);
    }
}

impl MetricsRecorder {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The counter block for one backend.
    pub fn backend(&self, id: BackendId) -> &BackendCounters {
        &self.per_backend[id.index()]
    }

    /// Record the end-to-end service time of one request (seconds).
    pub fn record_service_time(&self, seconds: f64) {
        let stripe = self.next_stripe.fetch_add(1, Ordering::Relaxed) as usize % LATENCY_STRIPES;
        lock_or_poisoned(&self.latencies[stripe]).record(seconds);
    }

    pub fn snapshot(&self, queue_depth: usize, active_plans: usize) -> ServiceMetrics {
        let mut samples: Vec<f64> = self
            .latencies
            .iter()
            .flat_map(|stripe| lock_or_poisoned(stripe).samples.clone())
            .collect();
        samples.sort_by(f64::total_cmp);
        ServiceMetrics {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            planner_invocations: self.planner_invocations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            queue_depth,
            active_plans,
            p50_service_time: percentile(&samples, 0.50),
            p99_service_time: percentile(&samples, 0.99),
            per_backend: BackendId::ALL
                .iter()
                .filter_map(|&id| {
                    let counters = &self.per_backend[id.index()];
                    let requests = counters.requests.load(Ordering::Relaxed);
                    (requests > 0).then(|| BackendMetrics {
                        backend: id,
                        requests,
                        hits: counters.hits.load(Ordering::Relaxed),
                        coalesced: counters.coalesced.load(Ordering::Relaxed),
                        planner_invocations: counters.planner_invocations.load(Ordering::Relaxed),
                    })
                })
                .collect(),
        }
    }
}

/// Per-backend slice of the service counters (only backends that have seen at
/// least one request appear in [`ServiceMetrics::per_backend`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendMetrics {
    /// Which backend these counters describe.
    pub backend: BackendId,
    /// Requests routed to this backend.
    pub requests: u64,
    /// Requests answered from the plan cache.
    pub hits: u64,
    /// Requests coalesced onto an identical in-flight computation.
    pub coalesced: u64,
    /// Actual backend `plan` invocations.
    pub planner_invocations: u64,
}

/// Nearest-rank percentile over an ascending sample set (0.0 when empty): the
/// smallest sample whose cumulative frequency reaches `q`, i.e. the
/// `ceil(q · n)`-th order statistic (1-indexed).  No interpolation — the
/// estimate is always an observed sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Point-in-time snapshot of the service's health and cache effectiveness.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceMetrics {
    /// Total requests accepted by [`crate::PlanService::plan`].
    pub requests: u64,
    /// Requests answered from the plan cache.
    pub hits: u64,
    /// Requests that had to invoke (or wait to invoke) the planner.
    pub misses: u64,
    /// Requests that blocked on another tenant's identical in-flight
    /// computation instead of re-planning.
    pub coalesced: u64,
    /// Actual `Planner::plan` invocations (≤ misses; fingerprint-collision
    /// recomputations are counted here too).
    pub planner_invocations: u64,
    /// Cache entries displaced by LRU/byte-budget eviction or TTL expiry.
    pub evictions: u64,
    /// Requests rejected by the admission gate (backpressure).
    pub rejected: u64,
    /// Requests that timed out waiting in the admission queue
    /// (`queue_wait_timeout`).
    pub timed_out: u64,
    /// Requests currently waiting for an admission permit.
    pub queue_depth: usize,
    /// Planner invocations currently executing.
    pub active_plans: usize,
    /// Median end-to-end service time over the recent sample window (s).
    pub p50_service_time: f64,
    /// 99th-percentile end-to-end service time over the window (s).
    pub p99_service_time: f64,
    /// Counter breakout per registered backend (empty until a backend-routed
    /// request arrives).
    pub per_backend: Vec<BackendMetrics>,
}

impl ServiceMetrics {
    /// Fraction of requests answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Fraction of requests that avoided a planner invocation entirely
    /// (cache hits plus coalesced waits).
    pub fn shared_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let recorder = MetricsRecorder::default();
        for i in 1..=100 {
            recorder.record_service_time(i as f64);
        }
        let snap = recorder.snapshot(0, 0);
        assert!((snap.p50_service_time - 50.0).abs() <= 1.0);
        assert!(snap.p99_service_time >= 99.0);
    }

    #[test]
    fn percentile_is_true_nearest_rank_at_boundaries() {
        // n = 1: every quantile is the single sample.
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        // n = 2: nearest rank of the median is ceil(0.5 · 2) = 1st sample
        // (the rounded-interpolation index picked the 2nd here).
        assert_eq!(percentile(&[1.0, 2.0], 0.5), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.99), 2.0);
        // n = 100 over 1..=100: p50 is the 50th order statistic, exactly 50
        // (the rounded-interpolation index produced 51), and p99 the 99th.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 0.5), 50.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        // Degenerate quantiles stay in range.
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
    }

    #[test]
    fn latency_rings_are_bounded() {
        let recorder = MetricsRecorder::default();
        for i in 0..(LATENCY_WINDOW * 2) {
            recorder.record_service_time(i as f64);
        }
        let total: usize = recorder
            .latencies
            .iter()
            .map(|stripe| stripe.lock().unwrap().samples.len())
            .sum();
        assert_eq!(total, LATENCY_WINDOW);
    }

    #[test]
    fn rates_handle_zero_requests() {
        let m = ServiceMetrics::default();
        assert_eq!(m.hit_rate(), 0.0);
        assert_eq!(m.shared_rate(), 0.0);
    }
}
