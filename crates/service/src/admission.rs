//! Bounded admission for planner invocations.
//!
//! The service caps how many planner invocations execute at once
//! (`max_concurrent_plans`) so the total planner thread count stays bounded
//! however many tenants call in: each admitted invocation fans its candidate
//! lattice over `worker_budget / max_concurrent_plans` threads via
//! `malleus_core::parallel`.  Requests beyond the cap queue on a condvar up
//! to `max_queue_depth` waiters; past that the gate sheds load by returning
//! [`ServiceError::Overloaded`] — the backpressure knob.

use crate::ServiceError;
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
    /// Next ticket number handed to a queued waiter.
    next_ticket: u64,
    /// Ticket currently at the head of the queue.  Freed slots go to the
    /// head ticket before any later arrival: a new request that finds
    /// `active < max_active` but `waiting > 0` must still queue, otherwise a
    /// continuous arrival stream barges past the queue and starves it.
    serving: u64,
}

/// Counting semaphore with a bounded wait queue.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    max_active: usize,
    max_queue_depth: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

/// An admission permit; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap();
        state.active -= 1;
        drop(state);
        // Wake every waiter: only the head ticket can proceed, and a targeted
        // notify_one could land on a non-head waiter that just re-sleeps,
        // stranding the head.
        self.gate.freed.notify_all();
    }
}

impl AdmissionGate {
    pub fn new(max_active: usize, max_queue_depth: usize) -> Self {
        Self {
            max_active: max_active.max(1),
            max_queue_depth,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// Acquire a permit, blocking while the gate is saturated *or* earlier
    /// arrivals are still queued (freed slots are handed out FIFO).  Fails
    /// fast with [`ServiceError::Overloaded`] once the wait queue is full.
    pub fn admit(&self) -> Result<Permit<'_>, ServiceError> {
        let mut state = self.state.lock().unwrap();
        if state.active >= self.max_active || state.waiting > 0 {
            if state.waiting >= self.max_queue_depth {
                return Err(ServiceError::Overloaded {
                    queue_depth: state.waiting,
                    limit: self.max_queue_depth,
                });
            }
            let ticket = state.next_ticket;
            state.next_ticket += 1;
            state.waiting += 1;
            while state.active >= self.max_active || state.serving != ticket {
                state = self.freed.wait(state).unwrap();
            }
            state.serving += 1;
            state.waiting -= 1;
            state.active += 1;
            drop(state);
            // The next ticket may already be eligible (several slots freed
            // while the queue drained one at a time).
            self.freed.notify_all();
            return Ok(Permit { gate: self });
        }
        state.active += 1;
        Ok(Permit { gate: self })
    }

    /// (active invocations, queued waiters).
    pub fn depths(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap();
        (state.active, state.waiting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_free_on_drop() {
        let gate = AdmissionGate::new(1, 0);
        let permit = gate.admit().expect("first permit");
        assert_eq!(gate.depths(), (1, 0));
        // Saturated with an empty wait queue: immediate backpressure.
        assert!(matches!(
            gate.admit(),
            Err(ServiceError::Overloaded { limit: 0, .. })
        ));
        drop(permit);
        assert_eq!(gate.depths(), (0, 0));
        let _again = gate.admit().expect("slot freed");
    }

    #[test]
    fn waiters_are_admitted_when_a_slot_frees() {
        let gate = std::sync::Arc::new(AdmissionGate::new(1, 4));
        let permit = gate.admit().unwrap();
        let waiter = {
            let gate = std::sync::Arc::clone(&gate);
            std::thread::spawn(move || gate.admit().map(|_| ()).is_ok())
        };
        // Let the waiter reach the queue, then free the slot.
        while gate.depths().1 == 0 {
            std::thread::yield_now();
        }
        drop(permit);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn zero_max_active_is_clamped_to_one() {
        let gate = AdmissionGate::new(0, 0);
        let _permit = gate.admit().expect("clamped to one slot");
    }

    #[test]
    fn queued_waiter_is_admitted_ahead_of_a_later_arrival() {
        use std::sync::Arc;
        // The barge window is the gap between a permit drop and the queued
        // waiter's wakeup; race it repeatedly — the ticketed gate must never
        // let the later arrival through first.
        for _ in 0..200 {
            let gate = Arc::new(AdmissionGate::new(1, 4));
            let order = Arc::new(Mutex::new(Vec::new()));
            let permit = gate.admit().unwrap();
            let waiter = {
                let gate = Arc::clone(&gate);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    let p = gate.admit().unwrap();
                    order.lock().unwrap().push("waiter");
                    drop(p);
                })
            };
            while gate.depths().1 == 0 {
                std::thread::yield_now();
            }
            // Free the slot, then immediately contend as a later arrival.
            drop(permit);
            let p = gate.admit().unwrap();
            order.lock().unwrap().push("arrival");
            drop(p);
            waiter.join().unwrap();
            assert_eq!(
                order.lock().unwrap().as_slice(),
                ["waiter", "arrival"],
                "later arrival barged past the queued waiter"
            );
        }
    }

    #[test]
    fn freed_slots_are_handed_out_in_arrival_order() {
        use std::sync::Arc;
        let gate = Arc::new(AdmissionGate::new(1, 8));
        let order = Arc::new(Mutex::new(Vec::new()));
        let permit = gate.admit().unwrap();
        let mut waiters = Vec::new();
        for id in 0..3usize {
            let gate_ref = Arc::clone(&gate);
            let order_ref = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                let p = gate_ref.admit().unwrap();
                order_ref.lock().unwrap().push(id);
                drop(p);
            }));
            // Pin the queue order: wait until this waiter is enqueued before
            // spawning the next.
            while gate.depths().1 <= id {
                std::thread::yield_now();
            }
        }
        drop(permit);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(order.lock().unwrap().as_slice(), [0, 1, 2]);
    }
}
