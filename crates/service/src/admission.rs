//! Bounded admission for planner invocations.
//!
//! The service caps how many planner invocations execute at once
//! (`max_concurrent_plans`) so the total planner thread count stays bounded
//! however many tenants call in: each admitted invocation fans its candidate
//! lattice over `worker_budget / max_concurrent_plans` threads via
//! `malleus_core::parallel`.  Requests beyond the cap queue on a condvar up
//! to `max_queue_depth` waiters; past that the gate sheds load by returning
//! [`ServiceError::Overloaded`] — the backpressure knob.
//!
//! Queued waiters additionally honor an optional `queue_wait_timeout`: if no
//! slot frees within the bound, the ticket is *abandoned* and the caller gets
//! a typed [`ServiceError::AdmissionTimeout`] instead of blocking forever on
//! a wedged (or merely slow) planner.  Abandoned tickets are skipped when the
//! serving pointer reaches them, so a timed-out head never strands the
//! waiters queued behind it.

use crate::ServiceError;
use malleus_core::RankedMutex;
use std::collections::BTreeSet;
use std::sync::Condvar;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
    /// Next ticket number handed to a queued waiter.
    next_ticket: u64,
    /// Ticket currently at the head of the queue.  Freed slots go to the
    /// head ticket before any later arrival: a new request that finds
    /// `active < max_active` but `waiting > 0` must still queue, otherwise a
    /// continuous arrival stream barges past the queue and starves it.
    serving: u64,
    /// Tickets whose waiters timed out before being served.  The serving
    /// pointer skips over these so the queue keeps draining.
    abandoned: BTreeSet<u64>,
}

impl GateState {
    /// Advance `serving` past `just_retired` and any abandoned tickets that
    /// follow it, landing on the next ticket with a live waiter (or on
    /// `next_ticket` if the queue is empty).
    fn advance_serving(&mut self, just_retired: u64) {
        self.serving = just_retired + 1;
        while self.abandoned.remove(&self.serving) {
            self.serving += 1;
        }
    }
}

/// Counting semaphore with a bounded, FIFO, optionally time-limited wait
/// queue.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    max_active: usize,
    max_queue_depth: usize,
    queue_wait_timeout: Option<Duration>,
    state: RankedMutex<GateState>,
    freed: Condvar,
}

/// An admission permit; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock();
        state.active -= 1;
        drop(state);
        // Wake every waiter: only the head ticket can proceed, and a targeted
        // notify_one could land on a non-head waiter that just re-sleeps,
        // stranding the head.
        self.gate.freed.notify_all();
    }
}

impl AdmissionGate {
    pub fn new(
        max_active: usize,
        max_queue_depth: usize,
        queue_wait_timeout: Option<Duration>,
    ) -> Self {
        Self {
            max_active: max_active.max(1),
            max_queue_depth,
            queue_wait_timeout,
            // Rank from crates/lint/lock_order.toml (checked by malleus-lint).
            state: RankedMutex::new(10, "AdmissionGate.state", GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// Acquire a permit, blocking while the gate is saturated *or* earlier
    /// arrivals are still queued (freed slots are handed out FIFO).  Fails
    /// fast with [`ServiceError::Overloaded`] once the wait queue is full,
    /// and with [`ServiceError::AdmissionTimeout`] if the gate's
    /// `queue_wait_timeout` elapses before a slot is granted.
    pub fn admit(&self) -> Result<Permit<'_>, ServiceError> {
        self.admit_with_timeout(self.queue_wait_timeout)
    }

    /// [`admit`](Self::admit) with an explicit per-call timeout override
    /// (tests mix bounded and unbounded waiters on one gate).
    pub fn admit_with_timeout(
        &self,
        timeout: Option<Duration>,
    ) -> Result<Permit<'_>, ServiceError> {
        let mut state = self.state.lock();
        if state.active >= self.max_active || state.waiting > 0 {
            if state.waiting >= self.max_queue_depth {
                return Err(ServiceError::Overloaded {
                    queue_depth: state.waiting,
                    limit: self.max_queue_depth,
                });
            }
            let ticket = state.next_ticket;
            state.next_ticket += 1;
            state.waiting += 1;
            let enqueued = Instant::now();
            while state.active >= self.max_active || state.serving != ticket {
                match timeout {
                    None => state = self.state.wait(&self.freed, state),
                    Some(limit) => {
                        let waited = enqueued.elapsed();
                        let Some(remaining) = limit.checked_sub(waited) else {
                            // Abandon the ticket: leave the queue, and make
                            // sure the serving pointer never rests on it.
                            state.waiting -= 1;
                            if state.serving == ticket {
                                state.advance_serving(ticket);
                            } else {
                                state.abandoned.insert(ticket);
                            }
                            drop(state);
                            // The next live ticket may now be at the head.
                            self.freed.notify_all();
                            return Err(ServiceError::AdmissionTimeout {
                                waited,
                                timeout: limit,
                            });
                        };
                        let (guard, _timed_out) =
                            self.state.wait_timeout(&self.freed, state, remaining);
                        state = guard;
                    }
                }
            }
            state.advance_serving(ticket);
            state.waiting -= 1;
            state.active += 1;
            drop(state);
            // The next ticket may already be eligible (several slots freed
            // while the queue drained one at a time).
            self.freed.notify_all();
            return Ok(Permit { gate: self });
        }
        state.active += 1;
        Ok(Permit { gate: self })
    }

    /// (active invocations, queued waiters).
    pub fn depths(&self) -> (usize, usize) {
        let state = self.state.lock();
        (state.active, state.waiting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_free_on_drop() {
        let gate = AdmissionGate::new(1, 0, None);
        let permit = gate.admit().expect("first permit");
        assert_eq!(gate.depths(), (1, 0));
        // Saturated with an empty wait queue: immediate backpressure.
        assert!(matches!(
            gate.admit(),
            Err(ServiceError::Overloaded { limit: 0, .. })
        ));
        drop(permit);
        assert_eq!(gate.depths(), (0, 0));
        let _again = gate.admit().expect("slot freed");
    }

    #[test]
    fn waiters_are_admitted_when_a_slot_frees() {
        let gate = std::sync::Arc::new(AdmissionGate::new(1, 4, None));
        let permit = gate.admit().unwrap();
        let waiter = {
            let gate = std::sync::Arc::clone(&gate);
            std::thread::spawn(move || gate.admit().map(|_| ()).is_ok())
        };
        // Let the waiter reach the queue, then free the slot.
        while gate.depths().1 == 0 {
            std::thread::yield_now();
        }
        drop(permit);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn zero_max_active_is_clamped_to_one() {
        let gate = AdmissionGate::new(0, 0, None);
        let _permit = gate.admit().expect("clamped to one slot");
    }

    #[test]
    fn queued_waiter_is_admitted_ahead_of_a_later_arrival() {
        use std::sync::{Arc, Mutex};
        // The barge window is the gap between a permit drop and the queued
        // waiter's wakeup; race it repeatedly — the ticketed gate must never
        // let the later arrival through first.
        for _ in 0..200 {
            let gate = Arc::new(AdmissionGate::new(1, 4, None));
            let order = Arc::new(Mutex::new(Vec::new()));
            let permit = gate.admit().unwrap();
            let waiter = {
                let gate = Arc::clone(&gate);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    let p = gate.admit().unwrap();
                    order.lock().unwrap().push("waiter");
                    drop(p);
                })
            };
            while gate.depths().1 == 0 {
                std::thread::yield_now();
            }
            // Free the slot, then immediately contend as a later arrival.
            drop(permit);
            let p = gate.admit().unwrap();
            order.lock().unwrap().push("arrival");
            drop(p);
            waiter.join().unwrap();
            assert_eq!(
                order.lock().unwrap().as_slice(),
                ["waiter", "arrival"],
                "later arrival barged past the queued waiter"
            );
        }
    }

    #[test]
    fn freed_slots_are_handed_out_in_arrival_order() {
        use std::sync::{Arc, Mutex};
        let gate = Arc::new(AdmissionGate::new(1, 8, None));
        let order = Arc::new(Mutex::new(Vec::new()));
        let permit = gate.admit().unwrap();
        let mut waiters = Vec::new();
        for id in 0..3usize {
            let gate_ref = Arc::clone(&gate);
            let order_ref = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                let p = gate_ref.admit().unwrap();
                order_ref.lock().unwrap().push(id);
                drop(p);
            }));
            // Pin the queue order: wait until this waiter is enqueued before
            // spawning the next.
            while gate.depths().1 <= id {
                std::thread::yield_now();
            }
        }
        drop(permit);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(order.lock().unwrap().as_slice(), [0, 1, 2]);
    }

    /// Regression: with no `queue_wait_timeout` this configuration blocks the
    /// waiter forever (the permit is never dropped) — the old gate had no
    /// timeout at all, so this test would hang on the old code.  With the
    /// timeout, the waiter must come back with a typed error within the
    /// bound.
    #[test]
    fn queue_wait_timeout_bounds_the_wait_with_a_typed_error() {
        use std::sync::Arc;
        let timeout = Duration::from_millis(50);
        let gate = Arc::new(AdmissionGate::new(1, 4, Some(timeout)));
        // Hold the only slot for the whole test: no slot ever frees.
        let _blocker = gate.admit().expect("first permit is immediate");
        let started = Instant::now();
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit().map(|_| ()))
        };
        let result = waiter.join().unwrap();
        let elapsed = started.elapsed();
        match result {
            Err(ServiceError::AdmissionTimeout { waited, timeout: t }) => {
                assert_eq!(t, timeout);
                assert!(
                    waited >= timeout,
                    "reported wait {waited:?} below the bound"
                );
            }
            other => panic!("expected AdmissionTimeout, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(10),
            "timeout failed to bound the wait ({elapsed:?})"
        );
        // The abandoned ticket must not wedge the gate for later arrivals.
        assert_eq!(gate.depths().1, 0);
    }

    /// An abandoned ticket in the *middle* of the queue must be skipped when
    /// the serving pointer reaches it — the waiters behind it still drain in
    /// order.
    #[test]
    fn later_queue_survives_an_abandoned_head_ticket() {
        use std::sync::{Arc, Mutex};
        let gate = Arc::new(AdmissionGate::new(1, 8, None));
        let order = Arc::new(Mutex::new(Vec::new()));
        let permit = gate.admit().unwrap();

        // A queues first with no timeout.
        let a = {
            let (gate, order) = (Arc::clone(&gate), Arc::clone(&order));
            std::thread::spawn(move || {
                let p = gate.admit_with_timeout(None).unwrap();
                order.lock().unwrap().push("a");
                drop(p);
            })
        };
        while gate.depths().1 < 1 {
            std::thread::yield_now();
        }
        // B queues second with a short timeout — it will abandon its ticket
        // while *not* at the head (A holds the head).
        let b = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.admit_with_timeout(Some(Duration::from_millis(30)))
                    .map(|_| ())
            })
        };
        while gate.depths().1 < 2 {
            std::thread::yield_now();
        }
        // C queues third, unbounded.
        let c = {
            let (gate, order) = (Arc::clone(&gate), Arc::clone(&order));
            std::thread::spawn(move || {
                let p = gate.admit_with_timeout(None).unwrap();
                order.lock().unwrap().push("c");
                drop(p);
            })
        };
        while gate.depths().1 < 3 {
            std::thread::yield_now();
        }

        // Let B time out and abandon its mid-queue ticket.
        assert!(matches!(
            b.join().unwrap(),
            Err(ServiceError::AdmissionTimeout { .. })
        ));
        // Now free the slot: A is admitted, and when A's permit drops the
        // serving pointer must skip B's abandoned ticket straight to C.
        drop(permit);
        a.join().unwrap();
        c.join().unwrap();
        assert_eq!(order.lock().unwrap().as_slice(), ["a", "c"]);
        assert_eq!(gate.depths(), (0, 0));
    }
}
