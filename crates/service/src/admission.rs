//! Bounded admission for planner invocations.
//!
//! The service caps how many planner invocations execute at once
//! (`max_concurrent_plans`) so the total planner thread count stays bounded
//! however many tenants call in: each admitted invocation fans its candidate
//! lattice over `worker_budget / max_concurrent_plans` threads via
//! `malleus_core::parallel`.  Requests beyond the cap queue on a condvar up
//! to `max_queue_depth` waiters; past that the gate sheds load by returning
//! [`ServiceError::Overloaded`] — the backpressure knob.

use crate::ServiceError;
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
}

/// Counting semaphore with a bounded wait queue.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    max_active: usize,
    max_queue_depth: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

/// An admission permit; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap();
        state.active -= 1;
        drop(state);
        self.gate.freed.notify_one();
    }
}

impl AdmissionGate {
    pub fn new(max_active: usize, max_queue_depth: usize) -> Self {
        Self {
            max_active: max_active.max(1),
            max_queue_depth,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// Acquire a permit, blocking while the gate is saturated.  Fails fast
    /// with [`ServiceError::Overloaded`] once the wait queue is full.
    pub fn admit(&self) -> Result<Permit<'_>, ServiceError> {
        let mut state = self.state.lock().unwrap();
        if state.active >= self.max_active {
            if state.waiting >= self.max_queue_depth {
                return Err(ServiceError::Overloaded {
                    queue_depth: state.waiting,
                    limit: self.max_queue_depth,
                });
            }
            state.waiting += 1;
            while state.active >= self.max_active {
                state = self.freed.wait(state).unwrap();
            }
            state.waiting -= 1;
        }
        state.active += 1;
        Ok(Permit { gate: self })
    }

    /// (active invocations, queued waiters).
    pub fn depths(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap();
        (state.active, state.waiting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_free_on_drop() {
        let gate = AdmissionGate::new(1, 0);
        let permit = gate.admit().expect("first permit");
        assert_eq!(gate.depths(), (1, 0));
        // Saturated with an empty wait queue: immediate backpressure.
        assert!(matches!(
            gate.admit(),
            Err(ServiceError::Overloaded { limit: 0, .. })
        ));
        drop(permit);
        assert_eq!(gate.depths(), (0, 0));
        let _again = gate.admit().expect("slot freed");
    }

    #[test]
    fn waiters_are_admitted_when_a_slot_frees() {
        let gate = std::sync::Arc::new(AdmissionGate::new(1, 4));
        let permit = gate.admit().unwrap();
        let waiter = {
            let gate = std::sync::Arc::clone(&gate);
            std::thread::spawn(move || gate.admit().map(|_| ()).is_ok())
        };
        // Let the waiter reach the queue, then free the slot.
        while gate.depths().1 == 0 {
            std::thread::yield_now();
        }
        drop(permit);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn zero_max_active_is_clamped_to_one() {
        let gate = AdmissionGate::new(0, 0);
        let _permit = gate.admit().expect("clamped to one slot");
    }
}
