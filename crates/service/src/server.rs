//! The standalone plan server: socket daemon, remote client, and the
//! client-side L1 plan cache.
//!
//! PR 3's [`PlanService`] amortizes planning across tenants *in one process*;
//! this module promotes it to a cross-process daemon so one warm cache,
//! grouping memo and admission gate serve a whole fleet of training sessions:
//!
//! ```text
//!   TrainingSession ──▶ PlanClient ──frame──▶ PlanServer ──▶ PlanService
//!                        │  L1 cache            bounded        │ admission
//!                        │  (per-tenant,        thread-per-    │ coalescing
//!                        │   drift+TTL+size     connection     │ backend registry
//!                        │   invalidation)      pool           ▼
//!                        ▼                                   shared L2 cache
//!                      hit ⇒ no syscall                     (sharded LRU+TTL+bytes)
//! ```
//!
//! * [`PlanServer`] — a blocking `TcpListener` / Unix-socket daemon.  Each
//!   accepted connection is served by its own thread out of a bounded pool
//!   ([`ServerConfig::max_connections`]); requests decode into the same
//!   [`KeyedRequest`] the in-process service keys on and route through the
//!   existing admission gate, coalescer, backend registry and sharded L2
//!   cache via [`PlanService::plan_backend`].  A malformed payload gets a
//!   typed [`ServiceError::Transport`] response (connection survives); a
//!   framing violation closes the connection; a planner panic is caught and
//!   answered with [`ServiceError::Internal`].
//! * [`PlanClient`] — the tenant-side handle.  It implements
//!   [`PlanTransport`], so `TrainingSession::with_remote` drives the daemon
//!   through exactly the interface it uses for an in-process service, and
//!   keeps a per-tenant **L1 cache** in front of the shared L2: entries
//!   expire by TTL, are bounded by entry count and approximate bytes, and
//!   are **drift-invalidated** — every call evicts entries whose snapshot
//!   has shifted more than [`ClientConfig::drift_threshold`] (the paper's 5%
//!   replan trigger) relative to the live snapshot being planned for, so a
//!   stale plan for a cluster that has meaningfully drifted is never served
//!   from the client cache.
//! * Wire format: `malleus_wire` frames (`MWIR` magic + version + payload
//!   length); the request payload is a [`KeyedRequest`]
//!   (`backend_fingerprint = 0` — advisory, the daemon recomputes it from
//!   its own registered constructor), the response a [`PlanResponse`].
//!
//! Determinism: the codec preserves `f64` bit patterns, so a plan served
//! over the socket is byte-identical to a direct `Planner::plan` call — the
//! facade's `tests/remote_equivalence.rs` proves it across the S1–S6
//! transitions.

use crate::sync::{lock_or_poisoned, wait_or_poisoned};
use crate::{KeyedRequest, PlanRequest, PlanService, PlanTransport, ServiceError};
use malleus_cluster::ClusterSnapshot;
use malleus_core::{BackendId, PlanError, PlanOutcome, PlannedOutcome};
use malleus_wire::{
    from_bytes, read_frame, read_frame_opt, to_bytes, write_frame, Decoder, Encoder, Wire,
    WireError, DEFAULT_MAX_FRAME_LEN,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Wire impls for the service types (the codec crate cannot implement these:
// it must not depend on the service crate).
// ---------------------------------------------------------------------------

impl Wire for PlanRequest {
    fn encode(&self, e: &mut Encoder) {
        self.coeffs.encode(e);
        self.snapshot.encode(e);
        self.config.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(PlanRequest {
            coeffs: Wire::decode(d)?,
            snapshot: Wire::decode(d)?,
            config: Wire::decode(d)?,
        })
    }
}

impl Wire for KeyedRequest {
    fn encode(&self, e: &mut Encoder) {
        self.backend.encode(e);
        e.put_u64(self.backend_fingerprint);
        self.request.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(KeyedRequest {
            backend: BackendId::decode(d)?,
            backend_fingerprint: d.get_u64()?,
            request: PlanRequest::decode(d)?,
        })
    }
}

impl Wire for ServiceError {
    fn encode(&self, e: &mut Encoder) {
        match self {
            ServiceError::Plan(err) => {
                e.put_u8(0);
                err.encode(e);
            }
            ServiceError::Overloaded { queue_depth, limit } => {
                e.put_u8(1);
                e.put_usize(*queue_depth);
                e.put_usize(*limit);
            }
            ServiceError::Internal { reason } => {
                e.put_u8(2);
                e.put_str(reason);
            }
            ServiceError::UnknownBackend { backend } => {
                e.put_u8(3);
                backend.encode(e);
            }
            ServiceError::AdmissionTimeout { waited, timeout } => {
                e.put_u8(4);
                waited.encode(e);
                timeout.encode(e);
            }
            ServiceError::Transport { reason } => {
                e.put_u8(5);
                e.put_str(reason);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(ServiceError::Plan(PlanError::decode(d)?)),
            1 => Ok(ServiceError::Overloaded {
                queue_depth: d.get_usize()?,
                limit: d.get_usize()?,
            }),
            2 => Ok(ServiceError::Internal {
                reason: d.get_str()?,
            }),
            3 => Ok(ServiceError::UnknownBackend {
                backend: BackendId::decode(d)?,
            }),
            4 => Ok(ServiceError::AdmissionTimeout {
                waited: Duration::decode(d)?,
                timeout: Duration::decode(d)?,
            }),
            5 => Ok(ServiceError::Transport {
                reason: d.get_str()?,
            }),
            tag => Err(WireError::UnknownTag {
                what: "ServiceError",
                tag: tag as u64,
            }),
        }
    }
}

/// What the daemon answers every request frame with.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanResponse {
    /// The planned outcome (byte-identical to the in-process result).
    Outcome(PlannedOutcome),
    /// A typed service error (infeasibility, overload, timeout, transport).
    Error(ServiceError),
}

impl Wire for PlanResponse {
    fn encode(&self, e: &mut Encoder) {
        match self {
            PlanResponse::Outcome(outcome) => {
                e.put_u8(0);
                outcome.encode(e);
            }
            PlanResponse::Error(err) => {
                e.put_u8(1);
                err.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(PlanResponse::Outcome(PlannedOutcome::decode(d)?)),
            1 => Ok(PlanResponse::Error(ServiceError::decode(d)?)),
            tag => Err(WireError::UnknownTag {
                what: "PlanResponse",
                tag: tag as u64,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared stream/endpoint plumbing
// ---------------------------------------------------------------------------

/// Where a [`PlanServer`] listens (and what a [`PlanClient`] dials).
#[derive(Debug, Clone, PartialEq)]
pub enum Endpoint {
    /// TCP socket address (bind with port 0 for an ephemeral port).
    Tcp(SocketAddr),
    /// Unix domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// One established connection, transport-erased.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(stream, _)| Conn::Tcp(stream)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(stream, _)| Conn::Unix(stream)),
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Daemon knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Maximum connections served concurrently; the accept loop blocks (TCP
    /// backlog absorbs the burst) once the handler pool is full, so a
    /// connection flood cannot spawn unbounded threads.
    pub max_connections: usize,
    /// Frame-payload cap enforced on both read and write.
    pub max_frame_len: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Bounded handler-thread pool: `acquire` blocks the accept loop while
/// `max_connections` handlers are live; each handler releases its slot on
/// exit (including panics) via the guard's `Drop`.
#[derive(Debug)]
struct ConnSlots {
    limit: usize,
    live: Mutex<usize>,
    freed: Condvar,
}

impl ConnSlots {
    fn new(limit: usize) -> Self {
        Self {
            limit: limit.max(1),
            live: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    fn acquire(self: &Arc<Self>) -> SlotGuard {
        let mut live = lock_or_poisoned(&self.live);
        while *live >= self.limit {
            live = wait_or_poisoned(&self.freed, live);
        }
        *live += 1;
        SlotGuard(Arc::clone(self))
    }
}

#[derive(Debug)]
struct SlotGuard(Arc<ConnSlots>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        *lock_or_poisoned(&self.0.live) -= 1;
        self.0.freed.notify_all();
    }
}

/// The standalone plan daemon.  Binding spawns the accept loop immediately;
/// dropping the server (or calling [`PlanServer::shutdown`]) stops accepting
/// and joins the accept thread.  In-flight connections finish serving their
/// current request and exit when their peer hangs up.
#[derive(Debug)]
pub struct PlanServer {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl PlanServer {
    /// Bind a TCP daemon (use `"127.0.0.1:0"` for an ephemeral port; read it
    /// back with [`PlanServer::tcp_addr`]).
    pub fn bind_tcp(
        service: Arc<PlanService>,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let endpoint = Endpoint::Tcp(listener.local_addr()?);
        Self::spawn(service, Listener::Tcp(listener), endpoint, config)
    }

    /// Bind a Unix-domain-socket daemon (an existing socket file at `path` is
    /// replaced).
    #[cfg(unix)]
    pub fn bind_unix(
        service: Arc<PlanService>,
        path: impl Into<PathBuf>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let path = path.into();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Self::spawn(
            service,
            Listener::Unix(listener),
            Endpoint::Unix(path),
            config,
        )
    }

    fn spawn(
        service: Arc<PlanService>,
        listener: Listener,
        endpoint: Endpoint,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let slots = Arc::new(ConnSlots::new(config.max_connections));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("malleus-plan-server".into())
                .spawn(move || loop {
                    let conn = match listener.accept() {
                        Ok(conn) => conn,
                        Err(_) if stop.load(Ordering::SeqCst) => return,
                        Err(_) => continue,
                    };
                    if stop.load(Ordering::SeqCst) {
                        // The shutdown poke (or a straggler client) landed;
                        // drop it and exit.
                        return;
                    }
                    let guard = slots.acquire();
                    let service = Arc::clone(&service);
                    let max_frame_len = config.max_frame_len;
                    let _ = std::thread::Builder::new()
                        .name("malleus-plan-conn".into())
                        .spawn(move || {
                            let _slot = guard;
                            serve_connection(&service, conn, max_frame_len);
                        });
                })?
        };
        Ok(Self {
            endpoint,
            stop,
            accept: Some(accept),
        })
    }

    /// Where the daemon is listening.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The bound TCP address, when listening on TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.endpoint {
            Endpoint::Tcp(addr) => Some(*addr),
            #[cfg(unix)]
            _ => None,
        }
    }

    /// Stop accepting connections and join the accept thread.  Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the blocking accept() so the loop observes the stop flag.
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one connection until the peer hangs up or the framing breaks.
fn serve_connection(service: &PlanService, mut conn: Conn, max_frame_len: usize) {
    if let Conn::Tcp(stream) = &conn {
        // Request/response is strictly ping-pong; Nagle only adds latency.
        let _ = stream.set_nodelay(true);
    }
    loop {
        let payload = match read_frame_opt(&mut conn, max_frame_len) {
            Ok(Some(payload)) => payload,
            // Clean EOF before a header: the client is done.
            Ok(None) => return,
            // A framing violation (bad magic, foreign version, oversized or
            // truncated frame) means the stream can no longer be trusted to
            // be frame-aligned; close it.
            Err(_) => return,
        };
        let response = match from_bytes::<KeyedRequest>(&payload) {
            Ok(keyed) => {
                // The client's fingerprint is advisory; plan_backend derives
                // the authoritative one from its own registered constructor.
                match catch_unwind(AssertUnwindSafe(|| {
                    service.plan_backend(keyed.backend, &keyed.request)
                })) {
                    Ok(Ok(outcome)) => PlanResponse::Outcome((*outcome).clone()),
                    Ok(Err(err)) => PlanResponse::Error(err),
                    Err(_) => PlanResponse::Error(ServiceError::Internal {
                        reason: "planning panicked while serving a remote request".into(),
                    }),
                }
            }
            // The frame was well-formed but the payload was not a request:
            // answer with a typed error and keep the (still frame-aligned)
            // connection.
            Err(err) => PlanResponse::Error(ServiceError::Transport {
                reason: format!("malformed request payload: {err}"),
            }),
        };
        let bytes = to_bytes(&response);
        if write_frame(&mut conn, &bytes, max_frame_len).is_err() || conn.flush().is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Client + L1 cache
// ---------------------------------------------------------------------------

/// Client-side knobs: the L1 tier and the transport cap.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// Maximum entries in the per-tenant L1 cache.
    pub l1_capacity: usize,
    /// Time-to-live of L1 entries (`None` disables TTL expiry).
    pub l1_ttl: Option<Duration>,
    /// Approximate byte budget of the L1 (`None` disables size-aware
    /// eviction).  Sizes are the encoded response payload lengths — the
    /// exact bytes that crossed the wire.
    pub l1_max_bytes: Option<usize>,
    /// Drift-invalidation threshold: cached entries whose snapshot has
    /// shifted more than this (relative, per GPU) against the live snapshot
    /// being planned for are evicted before lookup.  The paper replans at
    /// 5%.
    pub drift_threshold: f64,
    /// Frame-payload cap enforced on both read and write.
    pub max_frame_len: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            l1_capacity: 128,
            l1_ttl: Some(Duration::from_secs(600)),
            l1_max_bytes: Some(8 << 20),
            drift_threshold: 0.05,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Counters of the client's L1 tier.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct L1Stats {
    /// L1 lookups.
    pub requests: u64,
    /// Lookups answered locally (no socket roundtrip).
    pub hits: u64,
    /// Lookups that went to the daemon.
    pub misses: u64,
    /// Entries purged by TTL expiry.
    pub expired: u64,
    /// Entries evicted because their snapshot drifted past the threshold.
    pub drift_evicted: u64,
    /// Entries displaced by capacity/byte-budget LRU eviction.
    pub evictions: u64,
    /// Entries currently resident.
    pub resident: usize,
    /// Approximate resident bytes (encoded-payload sizes).
    pub approx_bytes: usize,
}

impl L1Stats {
    /// Fraction of lookups answered locally.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

#[derive(Debug)]
struct L1Entry {
    request: KeyedRequest,
    outcome: Arc<PlannedOutcome>,
    last_used: u64,
    inserted: Instant,
    size: usize,
}

#[derive(Debug, Default)]
struct L1Inner {
    entries: HashMap<u64, Vec<L1Entry>>,
    clock: u64,
    bytes: usize,
    requests: u64,
    hits: u64,
    misses: u64,
    expired: u64,
    drift_evicted: u64,
    evictions: u64,
}

impl L1Inner {
    fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    fn evict_lru(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .flat_map(|(k, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, e)| (e.last_used, *k, i))
            })
            .min();
        let Some((_, key, index)) = victim else {
            return false;
        };
        let Some(bucket) = self.entries.get_mut(&key) else {
            return false;
        };
        let removed = bucket.remove(index);
        self.bytes -= removed.size;
        if bucket.is_empty() {
            self.entries.remove(&key);
        }
        true
    }
}

/// The per-tenant L1 plan cache (single mutex: one tenant, low fan-in).
#[derive(Debug)]
struct L1Cache {
    inner: Mutex<L1Inner>,
    capacity: usize,
    ttl: Option<Duration>,
    max_bytes: Option<usize>,
}

impl L1Cache {
    fn new(config: &ClientConfig) -> Self {
        Self {
            inner: Mutex::new(L1Inner::default()),
            capacity: config.l1_capacity,
            ttl: config.l1_ttl,
            max_bytes: config.l1_max_bytes,
        }
    }

    /// Evict every entry whose snapshot has drifted past `threshold`
    /// relative to the live snapshot (structural changes — different GPU
    /// count or availability — always count as drifted).
    fn invalidate_drifted(&self, live: &ClusterSnapshot, threshold: f64) {
        let mut inner = lock_or_poisoned(&self.inner);
        let mut freed = 0usize;
        let mut evicted = 0u64;
        for bucket in inner.entries.values_mut() {
            bucket.retain(|entry| {
                let snapshot = &entry.request.request.snapshot;
                let stale =
                    !snapshot.same_structure(live) || snapshot.max_relative_shift(live) > threshold;
                if stale {
                    freed += entry.size;
                    evicted += 1;
                }
                !stale
            });
        }
        inner.entries.retain(|_, bucket| !bucket.is_empty());
        inner.bytes -= freed;
        inner.drift_evicted += evicted;
    }

    fn get(&self, key: u64, keyed: &KeyedRequest) -> Option<Arc<PlannedOutcome>> {
        let mut inner = lock_or_poisoned(&self.inner);
        inner.requests += 1;
        inner.clock += 1;
        let now = inner.clock;
        if let Some(ttl) = self.ttl {
            let cutoff = Instant::now();
            let mut freed = 0usize;
            let mut expired = 0u64;
            if let Some(bucket) = inner.entries.get_mut(&key) {
                bucket.retain(|e| {
                    let live = cutoff.duration_since(e.inserted) < ttl;
                    if !live {
                        freed += e.size;
                        expired += 1;
                    }
                    live
                });
                if bucket.is_empty() {
                    inner.entries.remove(&key);
                }
            }
            inner.bytes -= freed;
            inner.expired += expired;
        }
        let hit = inner
            .entries
            .get_mut(&key)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.request.matches(keyed)))
            .map(|entry| {
                entry.last_used = now;
                Arc::clone(&entry.outcome)
            });
        match &hit {
            Some(_) => inner.hits += 1,
            None => inner.misses += 1,
        }
        hit
    }

    fn insert(&self, key: u64, request: KeyedRequest, outcome: Arc<PlannedOutcome>, size: usize) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = lock_or_poisoned(&self.inner);
        inner.clock += 1;
        let now = inner.clock;
        if let Some(bucket) = inner.entries.get_mut(&key) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.request.matches(&request)) {
                let old = entry.size;
                entry.outcome = outcome;
                entry.last_used = now;
                entry.inserted = Instant::now();
                entry.size = size;
                inner.bytes = inner.bytes - old + size;
                return;
            }
        }
        while inner.len() >= self.capacity && inner.evict_lru() {
            inner.evictions += 1;
        }
        if let Some(budget) = self.max_bytes {
            while inner.len() > 0 && inner.bytes + size > budget && inner.evict_lru() {
                inner.evictions += 1;
            }
        }
        inner.bytes += size;
        inner.entries.entry(key).or_default().push(L1Entry {
            request,
            outcome,
            last_used: now,
            inserted: Instant::now(),
            size,
        });
    }

    fn stats(&self) -> L1Stats {
        let inner = lock_or_poisoned(&self.inner);
        L1Stats {
            requests: inner.requests,
            hits: inner.hits,
            misses: inner.misses,
            expired: inner.expired,
            drift_evicted: inner.drift_evicted,
            evictions: inner.evictions,
            resident: inner.len(),
            approx_bytes: inner.bytes,
        }
    }
}

fn transport_error(what: impl std::fmt::Display) -> ServiceError {
    ServiceError::Transport {
        reason: what.to_string(),
    }
}

/// Remote handle to a [`PlanServer`].  One persistent connection, serialized
/// ping-pong framing under a mutex; clone-free sharing via `Arc<PlanClient>`.
/// Implements [`PlanTransport`], so `TrainingSession::with_remote` and
/// `replan_overlapped_shared` drive it exactly like an in-process service.
#[derive(Debug)]
pub struct PlanClient {
    endpoint: Endpoint,
    stream: Mutex<Conn>,
    l1: L1Cache,
    config: ClientConfig,
}

impl PlanClient {
    /// Connect to a TCP daemon.
    pub fn connect_tcp(addr: SocketAddr, config: ClientConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            endpoint: Endpoint::Tcp(addr),
            stream: Mutex::new(Conn::Tcp(stream)),
            l1: L1Cache::new(&config),
            config,
        })
    }

    /// Connect to a Unix-domain-socket daemon.
    #[cfg(unix)]
    pub fn connect_unix(path: impl Into<PathBuf>, config: ClientConfig) -> io::Result<Self> {
        let path = path.into();
        let stream = UnixStream::connect(&path)?;
        Ok(Self {
            endpoint: Endpoint::Unix(path),
            stream: Mutex::new(Conn::Unix(stream)),
            l1: L1Cache::new(&config),
            config,
        })
    }

    /// The daemon this client is connected to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Counters of the local L1 tier.
    pub fn l1_stats(&self) -> L1Stats {
        self.l1.stats()
    }

    /// Plan through the daemon with L1-over-L2 caching: drift-stale entries
    /// are invalidated against `request.snapshot` (the live cluster), then a
    /// confirmed L1 hit short-circuits the socket entirely; otherwise one
    /// framed roundtrip hits the daemon's shared L2/planner and the response
    /// lands in L1.
    pub fn plan_backend(
        &self,
        backend: BackendId,
        request: &PlanRequest,
    ) -> Result<Arc<PlannedOutcome>, ServiceError> {
        // The snapshot being planned for IS the live cluster state; anything
        // cached for a snapshot that drifted ≥ threshold from it is exactly
        // what the paper's replan trigger says must not be reused.
        self.l1
            .invalidate_drifted(&request.snapshot, self.config.drift_threshold);
        let keyed = KeyedRequest {
            backend,
            // Advisory on the wire: the daemon recomputes the authoritative
            // fingerprint from its own constructor.  L1 keying is consistent
            // because every entry of this client uses the same convention.
            backend_fingerprint: 0,
            request: request.clone(),
        };
        let key = keyed.key();
        if let Some(outcome) = self.l1.get(key, &keyed) {
            return Ok(outcome);
        }
        let payload = self.roundtrip(&keyed)?;
        match from_bytes::<PlanResponse>(&payload).map_err(transport_error)? {
            PlanResponse::Outcome(outcome) => {
                let outcome = Arc::new(outcome);
                self.l1
                    .insert(key, keyed, Arc::clone(&outcome), payload.len());
                Ok(outcome)
            }
            PlanResponse::Error(err) => Err(err),
        }
    }

    /// Malleus convenience route (the remote analogue of
    /// [`PlanService::plan`]).
    pub fn plan(&self, request: &PlanRequest) -> Result<Arc<PlanOutcome>, ServiceError> {
        let planned = self.plan_backend(BackendId::Malleus, request)?;
        planned
            .malleus
            .clone()
            .ok_or_else(|| ServiceError::Internal {
                reason: "Malleus backend produced an outcome without a PlanOutcome".into(),
            })
    }

    fn roundtrip(&self, keyed: &KeyedRequest) -> Result<Vec<u8>, ServiceError> {
        let payload = to_bytes(keyed);
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| transport_error("client connection poisoned by a panicked request"))?;
        write_frame(&mut *stream, &payload, self.config.max_frame_len).map_err(transport_error)?;
        stream.flush().map_err(transport_error)?;
        read_frame(&mut *stream, self.config.max_frame_len).map_err(transport_error)
    }
}

impl PlanTransport for PlanClient {
    fn plan_routed(
        &self,
        backend: BackendId,
        request: &PlanRequest,
    ) -> Result<Arc<PlannedOutcome>, ServiceError> {
        self.plan_backend(backend, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_core::PlannerConfig;
    use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};

    fn small_request(rate_on_gpu3: f64) -> PlanRequest {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_7b(), HardwareParams::a800_cluster());
        let mut cluster = Cluster::homogeneous(1, 8);
        if rate_on_gpu3 > 1.0 {
            cluster.set_rate(GpuId(3), rate_on_gpu3);
        }
        PlanRequest::new(
            coeffs,
            cluster.snapshot(),
            PlannerConfig {
                global_batch_size: 8,
                ..PlannerConfig::default()
            },
        )
    }

    fn spawn_server() -> (Arc<PlanService>, PlanServer, SocketAddr) {
        let service = Arc::new(PlanService::new(ServiceConfig::default()));
        let server =
            PlanServer::bind_tcp(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
                .expect("bind");
        let addr = server.tcp_addr().expect("tcp endpoint");
        (service, server, addr)
    }

    /// `PlanOutcome`'s manual `PartialEq` excludes the lattice; remote
    /// byte-identity must include it.
    fn assert_byte_identical(served: &PlannedOutcome, direct: &PlannedOutcome) {
        assert_eq!(served, direct);
        assert_eq!(
            served.estimated_step_time.to_bits(),
            direct.estimated_step_time.to_bits()
        );
        match (&served.malleus, &direct.malleus) {
            (Some(a), Some(b)) => {
                assert_eq!(a.as_ref(), b.as_ref());
                assert_eq!(
                    a.estimated_step_time.to_bits(),
                    b.estimated_step_time.to_bits()
                );
                match (&a.lattice, &b.lattice) {
                    (Some(x), Some(y)) => assert_eq!(x.as_ref(), y.as_ref()),
                    (None, None) => {}
                    _ => panic!("lattice presence diverged across the wire"),
                }
            }
            (None, None) => {}
            _ => panic!("malleus outcome presence diverged across the wire"),
        }
    }

    #[test]
    fn service_types_roundtrip_on_the_wire() {
        let request = small_request(2.57);
        let back: PlanRequest = from_bytes(&to_bytes(&request)).unwrap();
        assert_eq!(back, request);
        assert_eq!(back.key(), request.key());

        let keyed = KeyedRequest {
            backend: BackendId::Oobleck,
            backend_fingerprint: 0xfeed,
            request,
        };
        let back: KeyedRequest = from_bytes(&to_bytes(&keyed)).unwrap();
        assert_eq!(back, keyed);
        assert_eq!(back.key(), keyed.key());

        let errors = [
            ServiceError::Plan(PlanError::NoUsableGpus),
            ServiceError::Overloaded {
                queue_depth: 9,
                limit: 8,
            },
            ServiceError::Internal {
                reason: "boom".into(),
            },
            ServiceError::UnknownBackend {
                backend: BackendId::DeepSpeedRestart,
            },
            ServiceError::AdmissionTimeout {
                waited: Duration::from_millis(1501),
                timeout: Duration::from_millis(1500),
            },
            ServiceError::Transport {
                reason: "reset".into(),
            },
        ];
        for err in errors {
            let back: ServiceError = from_bytes(&to_bytes(&err)).unwrap();
            assert_eq!(back, err);
            let response = PlanResponse::Error(err);
            let back: PlanResponse = from_bytes(&to_bytes(&response)).unwrap();
            assert_eq!(back, response);
        }
        assert_eq!(
            from_bytes::<PlanResponse>(&[9]),
            Err(WireError::UnknownTag {
                what: "PlanResponse",
                tag: 9
            })
        );
    }

    #[test]
    fn socket_path_serves_byte_identical_plans_and_l1_hits() {
        let (service, _server, addr) = spawn_server();
        let client = PlanClient::connect_tcp(addr, ClientConfig::default()).expect("connect");
        let request = small_request(1.0);

        let served = client
            .plan_backend(BackendId::Malleus, &request)
            .expect("remote plan");
        let direct = service
            .plan_backend(BackendId::Malleus, &request)
            .expect("direct plan");
        assert_byte_identical(&served, &direct);

        // Second identical call: answered from L1, no extra server request.
        let requests_before = service.metrics().requests;
        let again = client
            .plan_backend(BackendId::Malleus, &request)
            .expect("l1 hit");
        assert!(
            Arc::ptr_eq(&served, &again),
            "L1 returns the same allocation"
        );
        assert_eq!(service.metrics().requests, requests_before);
        let stats = client.l1_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.resident, 1);
        assert!(stats.approx_bytes > 0);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn drift_past_the_threshold_invalidates_l1_entries() {
        let (_service, _server, addr) = spawn_server();
        let client = PlanClient::connect_tcp(addr, ClientConfig::default()).expect("connect");
        let request = small_request(1.0);
        client
            .plan_backend(BackendId::Malleus, &request)
            .expect("warm the L1");
        assert_eq!(client.l1_stats().resident, 1);

        // Sub-threshold drift (< 5%): the cached entry survives.
        let mild = PlanRequest::new(
            request.coeffs.clone(),
            request.snapshot.with_rate(GpuId(3), 1.02),
            request.config.clone(),
        );
        client
            .plan_backend(BackendId::Malleus, &mild)
            .expect("mild drift plan");
        let stats = client.l1_stats();
        assert_eq!(stats.drift_evicted, 0, "2% drift must not invalidate");
        assert_eq!(stats.resident, 2);

        // A 20% straggler on the live cluster: both older entries are stale.
        let heavy = PlanRequest::new(
            request.coeffs.clone(),
            request.snapshot.with_rate(GpuId(3), 1.2),
            request.config.clone(),
        );
        client
            .plan_backend(BackendId::Malleus, &heavy)
            .expect("heavy drift plan");
        let stats = client.l1_stats();
        assert!(
            stats.drift_evicted >= 2,
            "drifted entries must be evicted, got {stats:?}"
        );
        assert_eq!(stats.resident, 1, "only the live-snapshot plan remains");
    }

    #[test]
    fn malformed_payload_gets_a_typed_error_and_the_connection_survives() {
        let (_service, _server, addr) = spawn_server();
        let mut raw = TcpStream::connect(addr).expect("connect");

        // A well-framed payload that is not a KeyedRequest (bad backend tag).
        write_frame(&mut raw, &[0xFF, 0xFF, 0xFF], DEFAULT_MAX_FRAME_LEN).unwrap();
        raw.flush().unwrap();
        let payload = read_frame(&mut raw, DEFAULT_MAX_FRAME_LEN).expect("server responded");
        match from_bytes::<PlanResponse>(&payload).expect("typed response") {
            PlanResponse::Error(ServiceError::Transport { reason }) => {
                assert!(reason.contains("malformed"), "{reason}");
            }
            other => panic!("expected a Transport error, got {other:?}"),
        }

        // The same connection still serves a valid request afterwards.
        let keyed = KeyedRequest {
            backend: BackendId::Malleus,
            backend_fingerprint: 0,
            request: small_request(1.0),
        };
        write_frame(&mut raw, &to_bytes(&keyed), DEFAULT_MAX_FRAME_LEN).unwrap();
        raw.flush().unwrap();
        let payload = read_frame(&mut raw, DEFAULT_MAX_FRAME_LEN).expect("second response");
        match from_bytes::<PlanResponse>(&payload).expect("typed response") {
            PlanResponse::Outcome(outcome) => assert_eq!(outcome.backend, BackendId::Malleus),
            other => panic!("expected an outcome, got {other:?}"),
        }
    }

    #[test]
    fn framing_violations_close_the_connection() {
        let (_service, _server, addr) = spawn_server();
        let mut raw = TcpStream::connect(addr).expect("connect");
        // Garbage that is not a frame header.
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        raw.flush().unwrap();
        // The server must hang up without answering: either a clean FIN or a
        // reset (the kernel sends RST when unread bytes remain in the server's
        // receive buffer at close).
        let mut rest = Vec::new();
        match raw.read_to_end(&mut rest) {
            Ok(_) => assert!(rest.is_empty(), "no response bytes on a framing violation"),
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::ConnectionReset, "{err}"),
        }
    }

    #[test]
    fn remote_planner_errors_stay_typed() {
        let (_service, _server, addr) = spawn_server();
        let client = PlanClient::connect_tcp(addr, ClientConfig::default()).expect("connect");
        // Unregistered backend → UnknownBackend over the wire.
        let err = client
            .plan_backend(BackendId::Oobleck, &small_request(1.0))
            .expect_err("not registered");
        assert_eq!(
            err,
            ServiceError::UnknownBackend {
                backend: BackendId::Oobleck
            }
        );
        // Infeasible request → Plan error over the wire, and not cached.
        let mut infeasible = small_request(1.0);
        infeasible.config.candidate_micro_batch_sizes = vec![3];
        let err = client
            .plan_backend(BackendId::Malleus, &infeasible)
            .expect_err("infeasible");
        assert!(matches!(err, ServiceError::Plan(_)), "{err:?}");
        assert_eq!(client.l1_stats().resident, 0);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_smoke() {
        let service = Arc::new(PlanService::new(ServiceConfig::default()));
        let path = std::env::temp_dir().join(format!(
            "malleus-plan-server-test-{}.sock",
            std::process::id()
        ));
        let mut server =
            PlanServer::bind_unix(Arc::clone(&service), &path, ServerConfig::default())
                .expect("bind unix");
        let client = PlanClient::connect_unix(&path, ClientConfig::default()).expect("connect");
        let request = small_request(1.0);
        let served = client.plan(&request).expect("remote plan over unix socket");
        let direct = service.plan(&request).expect("direct plan");
        assert_eq!(served.as_ref(), direct.as_ref());
        assert_eq!(
            served.estimated_step_time.to_bits(),
            direct.estimated_step_time.to_bits()
        );
        server.shutdown();
        assert!(!path.exists(), "socket file removed on shutdown");
    }
}
