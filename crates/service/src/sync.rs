//! Poison-recovering lock helpers — the single named escape hatch the ML002
//! panic-path lint accepts for mutex acquisition in request-serving code.
//!
//! Recovery semantics: every mutex-protected structure in this crate (cache
//! shards, the L1 map, metric rings, the backend registry, connection-slot
//! counters) is valid at each intermediate point of its critical sections —
//! state is mutated with plain assignments and collection ops that cannot be
//! observed half-applied once the lock is released.  A panic while holding
//! one of these locks therefore leaves consistent state behind, and the
//! right response is to keep serving, not to cascade the poison panic into
//! every subsequent request.  Locks whose critical sections ever gain
//! multi-step invariants must migrate to explicit `LockResult` handling (or
//! a `RankedMutex`, which bakes in the same recovery) instead of using these
//! helpers.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Acquire `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_or_poisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Park on `condvar`, recovering the re-acquired guard if a holder panicked
/// while this thread was waiting.
pub(crate) fn wait_or_poisoned<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}
