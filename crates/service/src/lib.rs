//! `malleus-service` — a concurrent, multi-tenant planning service.
//!
//! The paper invokes the planner once per straggler/failure event of a single
//! training job.  At production scale many elastic training sessions ask for
//! plans against *overlapping* cluster snapshots at once — N tenants replanning
//! after the same cluster event should pay for one planner invocation, not N.
//! [`PlanService`] is an in-process, thread-based front end over
//! `malleus_core::Planner` that amortizes identical work across tenants:
//!
//! * **Backend registry**: the service serves any registered
//!   [`malleus_core::PlanBackend`] — the Malleus planner is registered at
//!   construction, and baseline backends (Megatron-LM, DeepSpeed, Oobleck,
//!   restart) can be added with [`PlanService::register_backend`] so one
//!   deployment caches and coalesces plans for all five systems
//!   ([`PlanService::plan_backend`]).  Metrics are broken out per backend.
//! * **Sharded LRU plan cache** ([`cache`]) keyed by
//!   ([`ClusterSnapshot::fingerprint`], coefficients fingerprint, config
//!   fingerprint, [`malleus_core::BackendId`], backend config fingerprint)
//!   with full-equality confirmation on every hit — the same collision
//!   discipline as `malleus_core::GroupingCache`.
//! * **Request coalescing** ([`coalesce`]): concurrent identical requests
//!   block on one in-flight computation (singleflight) instead of re-planning.
//! * **Bounded admission** ([`admission`]): at most `max_concurrent_plans`
//!   planner invocations run at once, each fanning its candidate lattice over
//!   `worker_budget / max_concurrent_plans` threads via
//!   `malleus_core::parallel` — total planner threads stay capped however many
//!   tenants call in, and a bounded wait queue sheds load
//!   ([`ServiceError::Overloaded`]) past the backpressure knob.
//! * **[`ServiceMetrics`]**: hit/coalesce/eviction counters, queue depth, and
//!   p50/p99 service times.
//!
//! Because the planner's candidate-lattice reduction is deterministic in the
//! worker count (see `malleus_core::parallel`), the service's parallelism
//! override changes only wall-clock, never the plan: cached, coalesced and
//! freshly computed results are all byte-identical to a direct
//! `Planner::plan` call — `tests/parallel_equivalence.rs` in the facade crate
//! proves it against the serial oracle.

mod admission;
mod cache;
mod coalesce;
mod metrics;
pub mod server;
mod sync;

pub use metrics::{BackendMetrics, ServiceMetrics};
pub use server::{ClientConfig, Endpoint, L1Stats, PlanClient, PlanServer, ServerConfig};

use admission::AdmissionGate;
use cache::ShardedPlanCache;
use coalesce::{InFlightTable, Publication, Role};
use malleus_cluster::ClusterSnapshot;
use malleus_core::{
    BackendConstructor, BackendId, GroupingCache, Parallelism, PlanBackend, PlanError, PlanOutcome,
    PlannedOutcome, Planner, PlannerConfig,
};
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One tenant's planning request: the profiled coefficients (model spec +
/// hardware), the observed cluster snapshot, and the planner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Profiled coefficients (identify the model spec and hardware platform).
    pub coeffs: ProfiledCoefficients,
    /// The cluster snapshot to plan against.
    pub snapshot: ClusterSnapshot,
    /// Planner configuration.  The `parallelism` knob is *execution policy*,
    /// not plan identity — the planner's output is bit-identical across worker
    /// counts — so it is excluded from both the cache key and request
    /// equality, and the service substitutes its own per-plan thread budget.
    pub config: PlannerConfig,
}

impl PlanRequest {
    /// Build a request.
    pub fn new(
        coeffs: ProfiledCoefficients,
        snapshot: ClusterSnapshot,
        config: PlannerConfig,
    ) -> Self {
        Self {
            coeffs,
            snapshot,
            config,
        }
    }

    /// The 64-bit cache/coalescing key: FNV-1a over the snapshot fingerprint,
    /// the coefficients fingerprint and the (parallelism-less) config
    /// fingerprint.  Collisions are possible; every consumer confirms with
    /// [`PlanRequest::matches`].
    pub fn key(&self) -> u64 {
        let mut f = Fnv::new();
        f.u64(self.snapshot.fingerprint());
        f.u64(coeffs_fingerprint(&self.coeffs));
        f.u64(config_fingerprint(&self.config));
        f.finish()
    }

    /// Full-equality confirmation for fingerprint hits: same coefficients,
    /// same snapshot, same configuration modulo the parallelism knob.
    pub fn matches(&self, other: &PlanRequest) -> bool {
        self.coeffs == other.coeffs
            && self.snapshot == other.snapshot
            && config_equivalent(&self.config, &other.config)
    }
}

/// A [`PlanRequest`] routed to a specific backend: what the cache and the
/// singleflight table actually key on.  The backend's own config fingerprint
/// is included so two instances of the same backend with different knobs
/// (e.g. Oobleck overhead factors) never share a cache line.
///
/// This is also the on-wire request shape of the standalone plan server (see
/// [`server`]): a remote client sends a `KeyedRequest` with
/// `backend_fingerprint = 0` — the fingerprint is advisory there, since the
/// daemon recomputes it from its own registered constructor before touching
/// the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedRequest {
    /// The backend the request is routed to.
    pub backend: BackendId,
    /// The backend instance's config fingerprint (0 = let the server derive
    /// it).
    pub backend_fingerprint: u64,
    /// The tenant's planning request.
    pub request: PlanRequest,
}

impl KeyedRequest {
    /// The 64-bit cache/coalescing key: the request key mixed with the
    /// backend identity.  Collisions are possible; every consumer confirms
    /// with [`KeyedRequest::matches`].
    pub fn key(&self) -> u64 {
        let mut f = Fnv::new();
        f.u64(self.request.key());
        f.u64(self.backend.code());
        f.u64(self.backend_fingerprint);
        f.finish()
    }

    /// Full-equality confirmation for fingerprint hits.
    pub fn matches(&self, other: &KeyedRequest) -> bool {
        self.backend == other.backend
            && self.backend_fingerprint == other.backend_fingerprint
            && self.request.matches(&other.request)
    }
}

/// Configuration equality ignoring execution-policy knobs that cannot change
/// the produced plan: the worker count and the incremental-replanning flag
/// (delta replans are byte-identical to full enumeration by construction).
fn config_equivalent(a: &PlannerConfig, b: &PlannerConfig) -> bool {
    let mut a = a.clone();
    let mut b = b.clone();
    a.parallelism = Parallelism::Fixed(1);
    b.parallelism = Parallelism::Fixed(1);
    a.incremental = true;
    b.incremental = true;
    a == b
}

/// Incremental FNV-1a hasher (same construction as
/// `ClusterSnapshot::fingerprint`, kept dependency-free).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ byte as u64).wrapping_mul(PRIME);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        for &b in bytes {
            self.u64(b as u64);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Structural fingerprint of a coefficient bundle (spec + hardware; the
/// memory model is derived from the spec, and equality confirmation covers
/// hand-constructed bundles anyway).
fn coeffs_fingerprint(c: &ProfiledCoefficients) -> u64 {
    let mut f = Fnv::new();
    f.bytes(c.spec.name.as_bytes());
    f.u64(c.spec.num_layers as u64);
    f.u64(c.spec.hidden_size);
    f.u64(c.spec.ffn_hidden_size);
    f.u64(c.spec.num_heads);
    f.u64(c.spec.num_kv_heads);
    f.u64(c.spec.vocab_size);
    f.u64(c.spec.seq_len);
    f.f64(c.hardware.gpu_peak_flops);
    f.f64(c.hardware.achievable_flops_fraction);
    f.f64(c.hardware.gpu_memory_bytes);
    f.f64(c.hardware.memory_reserve_bytes);
    f.f64(c.hardware.intra_node_bandwidth);
    f.f64(c.hardware.inter_node_bandwidth);
    f.f64(c.hardware.collective_latency);
    f.f64(c.hardware.checkpoint_bandwidth);
    f.f64(c.hardware.restart_init_seconds);
    f.finish()
}

/// Structural fingerprint of a planner configuration, excluding the
/// parallelism knob (see [`PlanRequest::config`]).
fn config_fingerprint(c: &PlannerConfig) -> u64 {
    let mut f = Fnv::new();
    f.u64(c.global_batch_size);
    f.u64(c.candidate_tp_degrees.len() as u64);
    for &tp in &c.candidate_tp_degrees {
        f.u64(tp as u64);
    }
    f.u64(c.candidate_micro_batch_sizes.len() as u64);
    for &b in &c.candidate_micro_batch_sizes {
        f.u64(b);
    }
    match &c.candidate_dp {
        None => f.u64(0),
        Some(dps) => {
            f.u64(1 + dps.len() as u64);
            for &dp in dps {
                f.u64(dp as u64);
            }
        }
    }
    match c.fixed_dp {
        None => f.u64(0),
        Some(dp) => {
            f.u64(1);
            f.u64(dp as u64);
        }
    }
    f.f64(c.straggler_threshold);
    f.u64(
        (c.enable_group_splitting as u64)
            | (c.nonuniform_layers as u64) << 1
            | (c.nonuniform_data as u64) << 2
            | (c.nonuniform_stages as u64) << 3,
    );
    f.finish()
}

/// Sizing and backpressure knobs of a [`PlanService`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Number of independent cache shards (lock granularity).
    pub shards: usize,
    /// LRU capacity of each shard; total cached plans ≤ `shards × capacity`.
    pub capacity_per_shard: usize,
    /// Maximum planner invocations executing at once.
    pub max_concurrent_plans: usize,
    /// Admission/backpressure knob: requests allowed to *wait* for an
    /// execution slot before the service sheds load with
    /// [`ServiceError::Overloaded`].
    pub max_queue_depth: usize,
    /// Total planner-thread budget, split evenly across concurrent
    /// invocations (each runs its candidate fan-out on
    /// `worker_budget / max_concurrent_plans` workers, minimum 1).
    pub worker_budget: usize,
    /// How long a queued request may wait for an execution slot before
    /// failing with [`ServiceError::AdmissionTimeout`].  `None` (the
    /// default) waits indefinitely, preserving the pre-timeout behavior.
    pub queue_wait_timeout: Option<Duration>,
    /// Time-to-live of cached plans; entries older than this are purged
    /// lazily on the next touch of their cache bucket.  `None` disables TTL
    /// expiry.
    pub cache_ttl: Option<Duration>,
    /// Approximate byte budget per cache shard (see the size model in
    /// [`cache`]); LRU entries are evicted until a new insertion fits.
    /// `None` disables size-aware eviction.
    pub cache_max_bytes_per_shard: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            shards: 8,
            capacity_per_shard: 32,
            max_concurrent_plans: cores.clamp(1, 4),
            max_queue_depth: 1024,
            worker_budget: cores,
            queue_wait_timeout: None,
            cache_ttl: Some(Duration::from_secs(600)),
            cache_max_bytes_per_shard: Some(8 << 20),
        }
    }
}

impl ServiceConfig {
    /// The worker count each admitted planner invocation runs with.
    pub fn per_plan_parallelism(&self) -> Parallelism {
        Parallelism::Fixed((self.worker_budget / self.max_concurrent_plans.max(1)).max(1))
    }
}

/// Errors returned by [`PlanService::plan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The planner itself failed (no feasible plan, no usable GPUs, ...).
    Plan(PlanError),
    /// The admission wait queue is full; the caller should back off and retry.
    Overloaded {
        /// Requests already queued when this one was rejected.
        queue_depth: usize,
        /// The configured `max_queue_depth`.
        limit: usize,
    },
    /// The service itself failed (a planning thread panicked before
    /// publishing).  Deliberately distinct from [`ServiceError::Plan`]:
    /// infeasibility is a normal, recoverable planner answer (e.g. the
    /// replanner's pinned-DP probe), while this is a bug surfacing — callers
    /// must not mask it behind infeasibility fallbacks.
    Internal {
        /// What went wrong.
        reason: String,
    },
    /// No constructor is registered for the requested backend; register one
    /// with `PlanService::register_backend`.
    UnknownBackend {
        /// The backend the request named.
        backend: BackendId,
    },
    /// The request waited in the admission queue past the configured
    /// `queue_wait_timeout` without being granted an execution slot.
    /// Distinct from [`ServiceError::Overloaded`] (the queue was *full* on
    /// arrival): this request was accepted but the planner never freed a
    /// slot in time.
    AdmissionTimeout {
        /// How long the request actually waited.
        waited: Duration,
        /// The configured bound it exceeded.
        timeout: Duration,
    },
    /// The transport between a remote client and the plan server failed
    /// (connection refused/reset, malformed or oversized frame, protocol
    /// version mismatch).  Only produced by the socket path in [`server`].
    Transport {
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Plan(e) => write!(f, "planning failed: {e}"),
            ServiceError::Overloaded { queue_depth, limit } => write!(
                f,
                "planning service overloaded: {queue_depth} requests queued (limit {limit})"
            ),
            ServiceError::Internal { reason } => {
                write!(f, "planning service internal failure: {reason}")
            }
            ServiceError::UnknownBackend { backend } => {
                write!(f, "no planning backend registered for {backend}")
            }
            ServiceError::AdmissionTimeout { waited, timeout } => write!(
                f,
                "request timed out in the admission queue after {waited:?} (limit {timeout:?})"
            ),
            ServiceError::Transport { reason } => {
                write!(f, "plan-server transport failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<PlanError> for ServiceError {
    fn from(e: PlanError) -> Self {
        ServiceError::Plan(e)
    }
}

/// Leader-side unwind guard: if the leader panics before publishing, the
/// drop handler publishes [`coalesce::Publication::Aborted`] and retires the
/// slot, so followers wake and *recompute independently* instead of blocking
/// forever or inheriting a synthetic error for a plan that may be perfectly
/// computable (and the key is not wedged for future requests).
/// [`CompleteSlotOnDrop::disarm`] is the normal-path completion.
struct CompleteSlotOnDrop<'a> {
    inflight: &'a InFlightTable,
    key: u64,
    slot: &'a Arc<coalesce::InFlight>,
}

impl CompleteSlotOnDrop<'_> {
    fn disarm(self, result: Result<Arc<PlannedOutcome>, ServiceError>) {
        self.inflight.complete(self.key, self.slot, result);
        std::mem::forget(self);
    }
}

impl Drop for CompleteSlotOnDrop<'_> {
    fn drop(&mut self) {
        self.inflight.abort(self.key, self.slot);
    }
}

/// Constructors for every backend the service can serve, keyed by
/// [`BackendId`].  Constructors (not instances) are stored because a backend
/// instance is specific to one (coefficients, config) pair, while the service
/// is multi-tenant across both.
struct BackendRegistry {
    ctors: Mutex<BTreeMap<BackendId, Arc<BackendConstructor>>>,
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ids: Vec<BackendId> = sync::lock_or_poisoned(&self.ctors)
            .keys()
            .copied()
            .collect();
        f.debug_struct("BackendRegistry")
            .field("ids", &ids)
            .finish()
    }
}

/// The multi-tenant planning service.  Cheap to share: callers typically hold
/// it in an `Arc` and call [`PlanService::plan`] from many threads.
#[derive(Debug)]
pub struct PlanService {
    config: ServiceConfig,
    cache: ShardedPlanCache,
    inflight: InFlightTable,
    admission: AdmissionGate,
    registry: BackendRegistry,
    metrics: metrics::MetricsRecorder,
}

impl PlanService {
    /// Create a service.  The Malleus planner is pre-registered; baseline
    /// backends are opt-in via [`PlanService::register_backend`].
    pub fn new(config: ServiceConfig) -> Self {
        let service = Self {
            cache: ShardedPlanCache::new(
                config.shards,
                config.capacity_per_shard,
                config.cache_ttl,
                config.cache_max_bytes_per_shard,
            ),
            inflight: InFlightTable::default(),
            admission: AdmissionGate::new(
                config.max_concurrent_plans,
                config.max_queue_depth,
                config.queue_wait_timeout,
            ),
            registry: BackendRegistry {
                ctors: Mutex::new(BTreeMap::new()),
            },
            metrics: metrics::MetricsRecorder::default(),
            config,
        };
        // Grouping memo shared across every tenant's planner instance
        // (confirmed per-hit against snapshot and coefficients, so
        // cross-model sharing is safe).
        let grouping = GroupingCache::default();
        service.register_backend(
            BackendId::Malleus,
            Arc::new(move |coeffs, config| {
                Box::new(
                    Planner::new(coeffs.clone(), config.clone())
                        .with_grouping_cache(grouping.clone()),
                )
            }),
        );
        service
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Register (or replace) the constructor serving `id`.  Plans cached under
    /// a previous constructor keep being served as long as the backend config
    /// fingerprint still matches — constructors with different knobs must
    /// fingerprint differently (see
    /// [`malleus_core::PlanBackend::fingerprint_config`]).
    pub fn register_backend(&self, id: BackendId, ctor: Arc<BackendConstructor>) {
        sync::lock_or_poisoned(&self.registry.ctors).insert(id, ctor);
    }

    /// The backends currently registered, in [`BackendId`] order.
    pub fn registered_backends(&self) -> Vec<BackendId> {
        sync::lock_or_poisoned(&self.registry.ctors)
            .keys()
            .copied()
            .collect()
    }

    /// Serve one planning request.
    ///
    /// Fast path: a confirmed cache hit returns the shared [`PlanOutcome`]
    /// without touching the planner.  Otherwise the request either coalesces
    /// onto an identical in-flight computation or becomes the leader: it
    /// acquires an admission permit (blocking in the bounded queue, shedding
    /// load past it), invokes the planner with the service's per-plan thread
    /// budget, stores the result in the cache and wakes every follower.
    ///
    /// The returned plan is byte-identical to what a direct
    /// `Planner::plan(&request.snapshot)` call with `request.config` would
    /// produce — caching and coalescing change who pays for the work, never
    /// the answer.  Planner *errors* are shared with coalesced followers but
    /// never cached, so a transient infeasibility is retried on the next
    /// request.
    pub fn plan(&self, request: &PlanRequest) -> Result<Arc<PlanOutcome>, ServiceError> {
        let planned = self.plan_backend(BackendId::Malleus, request)?;
        planned
            .malleus
            .clone()
            .ok_or_else(|| ServiceError::Internal {
                reason: "Malleus backend produced an outcome without a PlanOutcome".into(),
            })
    }

    /// Serve one planning request through an arbitrary registered backend.
    ///
    /// Same caching/coalescing/admission discipline as [`PlanService::plan`]
    /// (which is this method specialized to [`BackendId::Malleus`]), but the
    /// result is the backend-neutral [`PlannedOutcome`], and the cache key
    /// includes the backend id and its config fingerprint so backends never
    /// share cache lines.  Per-backend counters land in
    /// [`ServiceMetrics::per_backend`].
    pub fn plan_backend(
        &self,
        backend: BackendId,
        request: &PlanRequest,
    ) -> Result<Arc<PlannedOutcome>, ServiceError> {
        let start = Instant::now();
        metrics::MetricsRecorder::bump(&self.metrics.requests);
        metrics::MetricsRecorder::bump(&self.metrics.backend(backend).requests);

        let ctor = sync::lock_or_poisoned(&self.registry.ctors)
            .get(&backend)
            .cloned()
            .ok_or(ServiceError::UnknownBackend { backend })?;
        let mut exec_config = request.config.clone();
        exec_config.parallelism = self.config.per_plan_parallelism();
        let instance = ctor(&request.coeffs, &exec_config);
        debug_assert_eq!(instance.id(), backend);
        let keyed = KeyedRequest {
            backend,
            backend_fingerprint: instance.fingerprint_config(),
            request: request.clone(),
        };
        let key = keyed.key();

        let (hit, expired) = self.cache.get(key, &keyed);
        for _ in 0..expired {
            metrics::MetricsRecorder::bump(&self.metrics.evictions);
        }
        if let Some(outcome) = hit {
            metrics::MetricsRecorder::bump(&self.metrics.hits);
            metrics::MetricsRecorder::bump(&self.metrics.backend(backend).hits);
            self.metrics
                .record_service_time(start.elapsed().as_secs_f64());
            return Ok(outcome);
        }

        let result = match self.inflight.join(key, &keyed) {
            Role::Follower(slot) => {
                metrics::MetricsRecorder::bump(&self.metrics.coalesced);
                metrics::MetricsRecorder::bump(&self.metrics.backend(backend).coalesced);
                match slot.wait() {
                    Publication::Done(result) => result,
                    Publication::Aborted => {
                        // The leader unwound without completing; fall back to
                        // an independent computation rather than surfacing a
                        // synthetic error for a computable plan.
                        metrics::MetricsRecorder::bump(&self.metrics.misses);
                        self.compute_and_store(key, &keyed, instance.as_ref(), &exec_config)
                    }
                }
            }
            Role::Collision => {
                // A different request is in flight under our fingerprint;
                // compute independently (and let our result take the cache
                // slot) rather than waiting on — or corrupting — its slot.
                metrics::MetricsRecorder::bump(&self.metrics.misses);
                self.compute_and_store(key, &keyed, instance.as_ref(), &exec_config)
            }
            Role::Leader(slot) => {
                // Whatever happens below — including a panic unwinding out of
                // the planner — the slot must be published and retired, or
                // followers would block forever and the key would be wedged
                // for every future request.
                let guard = CompleteSlotOnDrop {
                    inflight: &self.inflight,
                    key,
                    slot: &slot,
                };
                // Between our unlocked cache miss and becoming leader, a
                // previous leader for this key may have completed (cache
                // insert happens before its slot is retired, and both sides
                // synchronize on the slot-table lock): re-check so the
                // singleflight invariant — one planner invocation per
                // distinct key — holds even across that race.
                let (hit, expired) = self.cache.get(key, &keyed);
                for _ in 0..expired {
                    metrics::MetricsRecorder::bump(&self.metrics.evictions);
                }
                let result = match hit {
                    Some(outcome) => {
                        metrics::MetricsRecorder::bump(&self.metrics.hits);
                        metrics::MetricsRecorder::bump(&self.metrics.backend(backend).hits);
                        Ok(outcome)
                    }
                    None => {
                        metrics::MetricsRecorder::bump(&self.metrics.misses);
                        self.compute_and_store(key, &keyed, instance.as_ref(), &exec_config)
                    }
                };
                guard.disarm(result.clone());
                result
            }
        };
        self.metrics
            .record_service_time(start.elapsed().as_secs_f64());
        result
    }

    fn compute_and_store(
        &self,
        key: u64,
        keyed: &KeyedRequest,
        instance: &dyn PlanBackend,
        exec_config: &PlannerConfig,
    ) -> Result<Arc<PlannedOutcome>, ServiceError> {
        let permit = self.admission.admit();
        let _permit = match permit {
            Ok(p) => p,
            Err(e) => {
                match &e {
                    ServiceError::AdmissionTimeout { .. } => {
                        metrics::MetricsRecorder::bump(&self.metrics.timed_out)
                    }
                    _ => metrics::MetricsRecorder::bump(&self.metrics.rejected),
                }
                return Err(e);
            }
        };
        metrics::MetricsRecorder::bump(&self.metrics.planner_invocations);
        metrics::MetricsRecorder::bump(&self.metrics.backend(keyed.backend).planner_invocations);
        match instance.plan(&keyed.request.snapshot, exec_config) {
            Ok(outcome) => {
                let outcome = Arc::new(outcome);
                let evicted = self.cache.insert(key, keyed.clone(), Arc::clone(&outcome));
                for _ in 0..evicted {
                    metrics::MetricsRecorder::bump(&self.metrics.evictions);
                }
                Ok(outcome)
            }
            Err(e) => Err(ServiceError::Plan(e)),
        }
    }

    /// Snapshot of the service counters and latency percentiles.
    pub fn metrics(&self) -> ServiceMetrics {
        let (active, waiting) = self.admission.depths();
        self.metrics.snapshot(waiting, active)
    }

    /// Number of plans currently cached (diagnostics / tests).
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Approximate bytes held by the L2 plan cache (diagnostics / reports).
    pub fn cached_bytes(&self) -> usize {
        self.cache.approx_bytes()
    }

    /// Number of computations currently in flight (diagnostics / tests).
    pub fn inflight_plans(&self) -> usize {
        self.inflight.len()
    }
}

/// Transport-agnostic planning surface: the runtime's `TrainingSession`
/// plans through a `&dyn PlanTransport` and does not care whether the
/// implementation is the in-process [`PlanService`] or a socket-backed
/// [`PlanClient`] talking to a standalone daemon — both return byte-identical
/// plans by the service's determinism contract.
pub trait PlanTransport: Send + Sync + std::fmt::Debug {
    /// Serve one planning request through the named backend.
    fn plan_routed(
        &self,
        backend: BackendId,
        request: &PlanRequest,
    ) -> Result<Arc<PlannedOutcome>, ServiceError>;
}

impl PlanTransport for PlanService {
    fn plan_routed(
        &self,
        backend: BackendId,
        request: &PlanRequest,
    ) -> Result<Arc<PlannedOutcome>, ServiceError> {
        self.plan_backend(backend, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_model::{HardwareParams, ModelSpec};

    fn small_request(rate_on_gpu3: f64) -> PlanRequest {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_7b(), HardwareParams::a800_cluster());
        let mut cluster = Cluster::homogeneous(1, 8);
        if rate_on_gpu3 > 1.0 {
            cluster.set_rate(GpuId(3), rate_on_gpu3);
        }
        PlanRequest::new(
            coeffs,
            cluster.snapshot(),
            PlannerConfig {
                global_batch_size: 8,
                ..PlannerConfig::default()
            },
        )
    }

    #[test]
    fn request_key_is_stable_and_parallelism_free() {
        let a = small_request(1.0);
        let mut b = a.clone();
        assert_eq!(a.key(), b.key());
        assert!(a.matches(&b));
        // The worker knob is execution policy, not identity.
        b.config.parallelism = Parallelism::Fixed(7);
        assert_eq!(a.key(), b.key());
        assert!(a.matches(&b));
        // So is the incremental-replanning flag: delta replans are
        // byte-identical to full enumeration.
        b.config.incremental = !a.config.incremental;
        assert_eq!(a.key(), b.key());
        assert!(a.matches(&b));
        b.config.incremental = a.config.incremental;
        // Any plan-relevant field changes the key.
        b.config.global_batch_size = 16;
        assert_ne!(a.key(), b.key());
        assert!(!a.matches(&b));
        let c = small_request(2.57);
        assert_ne!(a.key(), c.key());
        assert!(!a.matches(&c));
    }

    #[test]
    fn distinct_coefficients_change_the_key() {
        let a = small_request(1.0);
        let mut b = a.clone();
        b.coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_13b(), HardwareParams::a800_cluster());
        assert_ne!(a.key(), b.key());
        assert!(!a.matches(&b));
    }

    #[test]
    fn cache_hit_returns_the_same_arc() {
        let service = PlanService::new(ServiceConfig::default());
        let request = small_request(1.0);
        let first = service.plan(&request).expect("miss");
        let second = service.plan(&request).expect("hit");
        assert!(Arc::ptr_eq(&first, &second));
        let m = service.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.hits, 1);
        assert_eq!(m.misses, 1);
        assert_eq!(m.planner_invocations, 1);
        assert!(m.hit_rate() > 0.0);
        assert_eq!(service.cached_plans(), 1);
        assert_eq!(service.inflight_plans(), 0);
    }

    #[test]
    fn planner_errors_are_returned_and_not_cached() {
        let service = PlanService::new(ServiceConfig::default());
        let mut request = small_request(1.0);
        // No candidate micro-batch divides the global batch: planning fails.
        request.config.candidate_micro_batch_sizes = vec![3];
        let err = service.plan(&request).expect_err("infeasible");
        assert!(matches!(err, ServiceError::Plan(_)));
        assert_eq!(service.cached_plans(), 0);
        // The error is recomputed (not served from a poisoned cache entry).
        let err2 = service.plan(&request).expect_err("still infeasible");
        assert_eq!(err, err2);
        assert_eq!(service.metrics().planner_invocations, 2);
    }

    #[test]
    fn malleus_is_preregistered_and_unknown_backends_are_typed_errors() {
        let service = PlanService::new(ServiceConfig::default());
        assert_eq!(service.registered_backends(), vec![BackendId::Malleus]);
        let request = small_request(1.0);
        let err = service
            .plan_backend(BackendId::Oobleck, &request)
            .expect_err("not registered");
        assert_eq!(
            err,
            ServiceError::UnknownBackend {
                backend: BackendId::Oobleck
            }
        );
        // The rejected request still counts; nothing was planned or cached.
        let m = service.metrics();
        assert_eq!(m.requests, 1);
        assert_eq!(m.planner_invocations, 0);
        assert_eq!(service.cached_plans(), 0);
    }

    #[test]
    fn backend_route_shares_the_cache_line_with_plan() {
        let service = PlanService::new(ServiceConfig::default());
        let request = small_request(1.0);
        let direct = service.plan(&request).expect("plan");
        let routed = service
            .plan_backend(BackendId::Malleus, &request)
            .expect("backend route");
        // Same cache entry: the inner Malleus outcome is the same allocation.
        let inner = routed.malleus.as_ref().expect("malleus outcome");
        assert!(Arc::ptr_eq(&direct, inner));
        let m = service.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.hits, 1);
        assert_eq!(m.planner_invocations, 1);
        let per = &m.per_backend;
        assert_eq!(per.len(), 1);
        assert_eq!(per[0].backend, BackendId::Malleus);
        assert_eq!(per[0].requests, 2);
        assert_eq!(per[0].hits, 1);
        assert_eq!(per[0].planner_invocations, 1);
    }

    /// A mock backend whose *first* `plan` call blocks until released and
    /// then panics; every later call returns a small valid outcome.  Used to
    /// inject a leader panic while a follower is coalesced onto its slot.
    #[derive(Debug)]
    struct PanicOnFirstPlan {
        release: Arc<(Mutex<bool>, std::sync::Condvar)>,
        calls: Arc<std::sync::atomic::AtomicUsize>,
    }

    impl PlanBackend for PanicOnFirstPlan {
        fn id(&self) -> BackendId {
            BackendId::Megatron
        }

        fn fingerprint_config(&self) -> u64 {
            0xfeed
        }

        fn plan(
            &self,
            _snapshot: &ClusterSnapshot,
            _config: &PlannerConfig,
        ) -> Result<PlannedOutcome, PlanError> {
            use std::sync::atomic::Ordering;
            if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                let (flag, released) = &*self.release;
                let mut go = flag.lock().unwrap();
                while !*go {
                    go = released.wait(go).unwrap();
                }
                panic!("injected leader panic mid-plan");
            }
            Ok(PlannedOutcome {
                backend: BackendId::Megatron,
                plan: None,
                active_gpus: Vec::new(),
                estimated_step_time: 1.0,
                transition_cost: 0.0,
                description: "mock".to_string(),
                malleus: None,
            })
        }

        fn replan(
            &self,
            snapshot: &ClusterSnapshot,
            _previous: &PlannedOutcome,
            _event: malleus_core::ClusterEvent,
        ) -> Result<PlannedOutcome, PlanError> {
            self.plan(snapshot, &PlannerConfig::default())
        }

        fn estimate_step_time(
            &self,
            _plan: &malleus_core::ParallelizationPlan,
            _snapshot: &ClusterSnapshot,
        ) -> Option<f64> {
            None
        }
    }

    /// Regression (leader-failure hardening): a leader panicking mid-plan
    /// used to publish a synthetic `Internal` error to every coalesced
    /// follower.  Followers must instead observe the abort and fall back to
    /// an independent computation that succeeds.
    #[test]
    fn followers_survive_a_leader_panic_by_recomputing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let service = Arc::new(PlanService::new(ServiceConfig::default()));
        let release = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let calls = Arc::new(AtomicUsize::new(0));
        {
            let (release, calls) = (Arc::clone(&release), Arc::clone(&calls));
            service.register_backend(
                BackendId::Megatron,
                Arc::new(move |_, _| {
                    Box::new(PanicOnFirstPlan {
                        release: Arc::clone(&release),
                        calls: Arc::clone(&calls),
                    })
                }),
            );
        }
        let request = small_request(1.0);

        let leader = {
            let (service, request) = (Arc::clone(&service), request.clone());
            std::thread::spawn(move || service.plan_backend(BackendId::Megatron, &request))
        };
        // Wait until the leader is inside the mock planner (its slot is in
        // flight), then attach the follower.
        while calls.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let follower = {
            let (service, request) = (Arc::clone(&service), request.clone());
            std::thread::spawn(move || service.plan_backend(BackendId::Megatron, &request))
        };
        // Wait until the follower has coalesced onto the leader's slot, then
        // release the leader into its panic.
        while service.metrics().coalesced == 0 {
            std::thread::yield_now();
        }
        {
            let (flag, released) = &*release;
            *flag.lock().unwrap() = true;
            released.notify_all();
        }

        assert!(leader.join().is_err(), "leader must have panicked");
        let outcome = follower
            .join()
            .unwrap()
            .expect("follower must recompute after the leader aborts, not inherit an error");
        assert_eq!(outcome.description, "mock");
        assert_eq!(
            calls.load(Ordering::SeqCst),
            2,
            "leader + follower fallback"
        );
        // The slot is retired and the follower's recomputation is cached.
        assert_eq!(service.inflight_plans(), 0);
        let served = service
            .plan_backend(BackendId::Megatron, &request)
            .expect("cached");
        assert!(Arc::ptr_eq(&served, &outcome));
    }

    #[test]
    fn per_plan_parallelism_splits_the_worker_budget() {
        let config = ServiceConfig {
            worker_budget: 8,
            max_concurrent_plans: 4,
            ..ServiceConfig::default()
        };
        assert_eq!(config.per_plan_parallelism(), Parallelism::Fixed(2));
        let starved = ServiceConfig {
            worker_budget: 1,
            max_concurrent_plans: 16,
            ..ServiceConfig::default()
        };
        assert_eq!(starved.per_plan_parallelism(), Parallelism::Fixed(1));
    }
}
