//! Lower-level work assignment (§4.2): layer assignment within each pipeline
//! (Eq. (2)) and training-data assignment across pipelines (Eq. (3)).
//!
//! Both problems are integer min-max allocations solved exactly by
//! `malleus-solver`.  Layer assignment additionally honours the Appendix B.4
//! memory constraints, and stages that receive zero layers are dropped from the
//! pipeline — this is the mechanism by which heavy stragglers are removed from
//! training and parked as standby devices.

use crate::cost::CostModel;
use crate::plan::{StagePlan, TpGroup};
use malleus_cluster::ClusterSnapshot;
use malleus_solver::solve_minmax_allocation;
use serde::{Deserialize, Serialize};

/// Result of assigning layers to the stages of one pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerAssignment {
    /// The surviving stages (zero-layer stages removed), in pipeline order.
    pub stages: Vec<StagePlan>,
    /// TP groups whose stage received zero layers (their GPUs go to standby).
    pub dropped_groups: Vec<TpGroup>,
    /// The per-micro-batch bottleneck `o_i = max_j y_{i,j} · l_{i,j}`.
    pub objective: f64,
}

/// Assign `num_layers` layers to the ordered `groups` of one pipeline.
///
/// When `uniform` is set, layers are split evenly (the Megatron-style baseline
/// and the Figure 9 ablation); otherwise the Eq. (2) ILP is solved.  Returns
/// `None` when no feasible assignment exists under the memory model.
pub fn assign_layers(
    cost: &CostModel,
    groups: &[TpGroup],
    snapshot: &ClusterSnapshot,
    num_layers: u64,
    micro_batch_size: u64,
    zero_dp: u32,
    uniform: bool,
) -> Option<LayerAssignment> {
    let mut active: Vec<TpGroup> = groups.to_vec();
    let mut dropped: Vec<TpGroup> = Vec::new();
    loop {
        if active.is_empty() {
            return None;
        }
        let pp = active.len();
        let weights: Vec<f64> = active
            .iter()
            .map(|g| {
                cost.coeffs
                    .group_rate(g.tp_degree(), g.max_rate(snapshot), micro_batch_size)
            })
            .collect();
        let caps: Vec<Option<u64>> = active
            .iter()
            .enumerate()
            .map(|(j, g)| cost.max_layers(g.tp_degree(), j, pp, micro_batch_size, zero_dp))
            .collect();
        // A stage whose ν alone exceeds the budget is unusable in this position.
        if caps.iter().any(|c| c.is_none()) {
            return None;
        }
        let layers: Vec<u64> = if uniform {
            let base = num_layers / pp as u64;
            let extra = num_layers % pp as u64;
            let layers: Vec<u64> = (0..pp)
                .map(|j| base + if (j as u64) < extra { 1 } else { 0 })
                .collect();
            for (j, &l) in layers.iter().enumerate() {
                if let Some(cap) = caps[j] {
                    if l > cap {
                        return None;
                    }
                }
            }
            layers
        } else {
            match solve_minmax_allocation(&weights, num_layers, &caps) {
                Ok(result) => result.amounts,
                Err(_) => return None,
            }
        };

        if !uniform && layers.contains(&0) {
            // Drop zero-layer stages (their straggling rate is too high to be
            // worth any work) and re-solve with the shorter pipeline, whose
            // memory coefficients are more favourable.
            let mut next_active = Vec::new();
            for (g, &l) in active.iter().zip(layers.iter()) {
                if l == 0 {
                    dropped.push(g.clone());
                } else {
                    next_active.push(g.clone());
                }
            }
            active = next_active;
            continue;
        }

        let objective = layers
            .iter()
            .zip(weights.iter())
            .map(|(&l, &w)| l as f64 * w)
            .fold(0.0, f64::max);
        let stages = active
            .iter()
            .zip(layers.iter())
            .map(|(g, &l)| StagePlan {
                group: g.clone(),
                layers: l as u32,
            })
            .collect();
        return Some(LayerAssignment {
            stages,
            dropped_groups: dropped,
            objective,
        });
    }
}

/// Assign `total_micro_batches` micro-batches across pipelines whose
/// per-micro-batch bottlenecks are `objectives` (Eq. (3)).
///
/// With `uniform` set, micro-batches are split evenly (remainder round-robin),
/// which is what the uniform-data baselines and the Figure 9 ablation do.
pub fn assign_data(
    objectives: &[f64],
    total_micro_batches: u64,
    uniform: bool,
) -> Option<Vec<u64>> {
    if objectives.is_empty() {
        return None;
    }
    if uniform {
        let dp = objectives.len() as u64;
        let base = total_micro_batches / dp;
        let extra = total_micro_batches % dp;
        return Some(
            (0..dp)
                .map(|i| base + if i < extra { 1 } else { 0 })
                .collect(),
        );
    }
    solve_minmax_allocation(objectives, total_micro_batches, &[])
        .ok()
        .map(|r| r.amounts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};

    fn cost_model(spec: ModelSpec) -> CostModel {
        CostModel::new(ProfiledCoefficients::derive(
            spec,
            HardwareParams::a800_cluster(),
        ))
    }

    fn groups_of(sizes: &[u32]) -> Vec<TpGroup> {
        let mut next = 0u32;
        sizes
            .iter()
            .map(|&s| {
                let gpus = (next..next + s).map(GpuId).collect();
                next += s;
                TpGroup::new(gpus)
            })
            .collect()
    }

    #[test]
    fn healthy_equal_groups_get_equal_layers() {
        let cost = cost_model(ModelSpec::llama2_32b());
        let cluster = Cluster::homogeneous(4, 8);
        let groups = groups_of(&[8, 8, 8, 8]);
        let a = assign_layers(&cost, &groups, &cluster.snapshot(), 60, 1, 1, false).unwrap();
        let layers: Vec<u32> = a.stages.iter().map(|s| s.layers).collect();
        assert_eq!(layers.iter().sum::<u32>(), 60);
        assert_eq!(layers, vec![15, 15, 15, 15]);
        assert!(a.dropped_groups.is_empty());
    }

    #[test]
    fn straggling_stage_receives_fewer_layers() {
        let cost = cost_model(ModelSpec::llama2_32b());
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(0), 2.57);
        let groups = groups_of(&[8, 8, 8, 8]);
        let a = assign_layers(&cost, &groups, &cluster.snapshot(), 60, 1, 1, false).unwrap();
        let layers: Vec<u32> = a.stages.iter().map(|s| s.layers).collect();
        assert_eq!(layers.iter().sum::<u32>(), 60);
        assert!(layers[0] < layers[1], "straggling stage got {layers:?}");
    }

    #[test]
    fn heavy_straggler_stage_is_dropped() {
        // A TP-1 group with a very heavy straggler should end up with zero
        // layers and be removed from the pipeline.
        let cost = cost_model(ModelSpec::llama2_7b());
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(0), 100.0);
        let mut groups = groups_of(&[1]);
        groups.extend(groups_of(&[8, 8, 8]).into_iter().map(|g| {
            // shift ids to avoid overlap with the straggler group
            TpGroup::new(g.gpus.iter().map(|id| GpuId(id.0 + 8)).collect())
        }));
        let a = assign_layers(&cost, &groups, &cluster.snapshot(), 32, 1, 1, false).unwrap();
        assert_eq!(a.dropped_groups.len(), 1);
        assert_eq!(a.dropped_groups[0].gpus, vec![GpuId(0)]);
        assert_eq!(a.stages.len(), 3);
        assert_eq!(a.stages.iter().map(|s| s.layers).sum::<u32>(), 32);
    }

    #[test]
    fn uniform_assignment_ignores_rates() {
        let cost = cost_model(ModelSpec::llama2_32b());
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(0), 5.42);
        let groups = groups_of(&[8, 8, 8, 8]);
        let a = assign_layers(&cost, &groups, &cluster.snapshot(), 60, 1, 1, true).unwrap();
        let layers: Vec<u32> = a.stages.iter().map(|s| s.layers).collect();
        assert_eq!(layers, vec![15, 15, 15, 15]);
    }

    #[test]
    fn infeasible_when_memory_cannot_hold_model() {
        // 110B on a single 8-GPU group with micro-batch 1: one stage cannot
        // hold 80 layers of optimizer state.
        let cost = cost_model(ModelSpec::llama2_110b());
        let cluster = Cluster::homogeneous(1, 8);
        let groups = groups_of(&[8]);
        let a = assign_layers(&cost, &groups, &cluster.snapshot(), 80, 1, 1, false);
        assert!(a.is_none());
    }

    #[test]
    fn data_assignment_balances_by_objective() {
        let m = assign_data(&[2.0, 1.0, 1.0], 64, false).unwrap();
        assert_eq!(m.iter().sum::<u64>(), 64);
        assert!(m[0] < m[1]);
        let uniform = assign_data(&[2.0, 1.0, 1.0], 64, true).unwrap();
        assert_eq!(uniform, vec![22, 21, 21]);
    }

    #[test]
    fn data_assignment_rejects_empty_input() {
        assert!(assign_data(&[], 64, false).is_none());
    }
}
