//! `malleus-core` — the Malleus parallelization-planning algorithm.
//!
//! This crate implements the paper's primary contribution: given per-GPU
//! straggling rates, deduce a *parallelization plan* — a joint, non-uniform
//! partitioning of GPU devices into tensor-parallel groups, groups into
//! pipeline stages, model layers across stages and training data across
//! pipelines — that minimizes the training-step time (§4 of the paper).
//!
//! The planning routine is a bi-level optimization:
//!
//! * **Upper level** (`grouping` + `orchestration`): partition GPUs into TP
//!   groups (Theorem 1 even partitioning, heavy-straggler splitting guided by
//!   the Theorem 2 harmonic-capacity estimate), then orchestrate pipelines
//!   (pipeline division via the Eq. (4) MINLP, group ordering via Theorem 3).
//! * **Lower level** (`assignment`): assign model layers within each pipeline
//!   (Eq. (2) ILP) and micro-batches across pipelines (Eq. (3) ILP) under the
//!   memory model of Appendix B.4.
//!
//! The [`planner::Planner`] ties the two levels together, enumerating candidate
//! maximum TP degrees {1, 2, 4, 8} and micro-batch sizes exactly as §4.3.3
//! describes, and reports a per-phase timing breakdown (Appendix A.2).  The
//! candidate lattice is evaluated across worker threads ([`parallel`]) with a
//! deterministic lattice-index reduction, so planning scales with cores while
//! staying bit-identical to the serial reference path.
//! [`migration`] computes the slice-level model-state movements needed to adopt
//! a new plan on the fly (§5.1).  [`delta`] adds warm-start (incremental)
//! replanning: the scored candidate lattice is persisted alongside each
//! outcome, and drift-only cluster events reuse memoized candidate
//! evaluations — confirmed bitwise, so delta replans stay byte-identical to
//! full enumeration.

pub mod assignment;
pub mod backend;
pub mod cost;
pub mod delta;
pub mod error;
pub mod grouping;
pub mod migration;
pub mod orchestration;
pub mod parallel;
pub mod plan;
pub mod planner;

pub use backend::{
    malleus_constructor, BackendConstructor, BackendId, ClusterEvent, ConfigFingerprint,
    PlanBackend, PlannedOutcome, DEFAULT_STRAGGLER_THRESHOLD,
};
pub use cost::CostModel;
pub use delta::{
    incremental_from_env_or, CandidateMemo, LatticeEntry, ScoredLattice, INCREMENTAL_ENV,
};
pub use error::PlanError;
pub use grouping::{group_cluster, GroupingResult};
pub use migration::{plan_migration, MigrationPlan, SliceMove};
pub use parallel::{GroupingCache, Parallelism, ParseParallelismError, RankedGuard, RankedMutex};
pub use plan::{ParallelizationPlan, PipelinePlan, StagePlan, TpGroup};
pub use planner::{PlanOutcome, PlanTiming, Planner, PlannerConfig};
