//! Error type shared by the planning modules.

use serde::{Deserialize, Serialize};

/// Errors produced while deducing or validating a parallelization plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanError {
    /// The cluster has no usable (non-failed) GPUs.
    NoUsableGpus,
    /// No feasible plan exists under the memory constraints for any candidate
    /// configuration.
    NoFeasiblePlan { reason: String },
    /// A plan failed validation.
    InvalidPlan { reason: String },
    /// The requested data-parallel degree cannot be realized.
    InfeasibleDataParallel { dp: usize, groups: usize },
    /// Every node hosts a straggler or failure, so a node-granularity backend
    /// (Oobleck, restart-on-failure) has nothing left to run on.
    NoHealthyNodes,
    /// A baseline backend exhausted its configuration grid without finding a
    /// runnable setting.
    InfeasibleConfiguration { backend: String, reason: String },
    /// A static backend cannot adapt to the observed cluster event (e.g.
    /// Megatron-LM after a participating GPU fails).
    CannotAdapt { backend: String, reason: String },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoUsableGpus => write!(f, "no usable GPUs available for planning"),
            PlanError::NoFeasiblePlan { reason } => {
                write!(f, "no feasible parallelization plan: {reason}")
            }
            PlanError::InvalidPlan { reason } => {
                write!(f, "invalid parallelization plan: {reason}")
            }
            PlanError::InfeasibleDataParallel { dp, groups } => write!(
                f,
                "cannot build {dp} pipelines from {groups} tensor-parallel groups"
            ),
            PlanError::NoHealthyNodes => {
                write!(
                    f,
                    "no straggler-free nodes left for a node-granularity backend"
                )
            }
            PlanError::InfeasibleConfiguration { backend, reason } => {
                write!(f, "{backend}: no feasible configuration: {reason}")
            }
            PlanError::CannotAdapt { backend, reason } => {
                write!(f, "{backend}: cannot adapt to the cluster event: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(PlanError::NoUsableGpus.to_string().contains("no usable"));
        assert!(PlanError::NoFeasiblePlan {
            reason: "memory".into()
        }
        .to_string()
        .contains("memory"));
        assert!(PlanError::InfeasibleDataParallel { dp: 4, groups: 2 }
            .to_string()
            .contains("4"));
        assert!(PlanError::NoHealthyNodes
            .to_string()
            .contains("straggler-free"));
        assert!(PlanError::InfeasibleConfiguration {
            backend: "megatron".into(),
            reason: "grid exhausted".into()
        }
        .to_string()
        .contains("megatron"));
        assert!(PlanError::CannotAdapt {
            backend: "deepspeed".into(),
            reason: "participant failed".into()
        }
        .to_string()
        .contains("participant failed"));
    }
}
