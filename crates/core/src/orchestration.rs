//! Pipeline orchestration (§4.3.2): divide the TP groups into `DP` pipelines
//! and order the groups within each pipeline.
//!
//! * **Pipeline division** treats the majority-rate groups as interchangeable
//!   "fast" groups and solves the Eq. (4) MINLP (via `malleus-solver`) to place
//!   the slow groups and balance the relaxed per-pipeline capacities.
//! * **Group ordering** applies Theorem 3 (equal-size groups are ordered by
//!   descending straggling rate — faster groups serve the later stages because
//!   later stages retain fewer in-flight activations and can therefore hold
//!   more layers) and enumerates the ≤ 4! orderings of the size *bundles* when
//!   groups of different TP degrees share a pipeline.

use crate::assignment::{assign_layers, LayerAssignment};
use crate::cost::CostModel;
use crate::error::PlanError;
use crate::grouping::GroupingResult;
use crate::plan::TpGroup;
use malleus_cluster::ClusterSnapshot;
use malleus_solver::{divide_pipelines_parallel, DivisionProblem};
use serde::{Deserialize, Serialize};

/// The groups of each pipeline after division (not yet ordered).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineDivision {
    /// For each pipeline, the TP groups assigned to it.
    pub pipelines: Vec<Vec<TpGroup>>,
}

/// Relative tolerance used to decide whether two group rates are "the same"
/// (the majority-rate detection of §4.3.2).
const RATE_TOLERANCE: f64 = 1e-6;

/// Split the grouping result into `dp` pipelines.
///
/// When `nonuniform_stages` is false (Figure 9 ablation and the uniform
/// baselines) every pipeline receives the same number of groups, assigned
/// round-robin by descending rate so slow groups still spread out.
///
/// `division_workers` bounds the threads the Eq. (4) search may use *within*
/// this one division (the result is byte-identical at any value; pass 1 for
/// strictly sequential solving, e.g. when the caller already saturates the
/// cores with candidate-level fan-out).
#[allow(clippy::too_many_arguments)]
pub fn divide_groups(
    cost: &CostModel,
    grouping: &GroupingResult,
    snapshot: &ClusterSnapshot,
    dp: usize,
    total_micro_batches: u64,
    micro_batch_size: u64,
    nonuniform_stages: bool,
    division_workers: usize,
) -> Result<PipelineDivision, PlanError> {
    let groups = &grouping.groups;
    if dp == 0 || groups.len() < dp {
        return Err(PlanError::InfeasibleDataParallel {
            dp,
            groups: groups.len(),
        });
    }
    let rates = grouping.group_rates(snapshot, &cost.coeffs, micro_batch_size);

    if !nonuniform_stages {
        // Equal group counts per pipeline; distribute in descending-rate order
        // round-robin so each pipeline sees a similar mix.
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by(|&a, &b| rates[b].total_cmp(&rates[a]));
        let mut pipelines: Vec<Vec<TpGroup>> = vec![Vec::new(); dp];
        for (pos, gidx) in order.into_iter().enumerate() {
            pipelines[pos % dp].push(groups[gidx].clone());
        }
        return Ok(PipelineDivision { pipelines });
    }

    // Identify the majority ("fast") rate.
    let mut sorted_rates: Vec<f64> = rates.clone();
    sorted_rates.sort_by(|a, b| a.total_cmp(b));
    let mut best_value = sorted_rates[0];
    let mut best_count = 0usize;
    let mut i = 0usize;
    while i < sorted_rates.len() {
        let v = sorted_rates[i];
        let mut j = i;
        while j < sorted_rates.len() && (sorted_rates[j] - v).abs() <= RATE_TOLERANCE * v.max(1.0) {
            j += 1;
        }
        if j - i > best_count {
            best_count = j - i;
            best_value = v;
        }
        i = j;
    }
    let is_fast = |r: f64| (r - best_value).abs() <= RATE_TOLERANCE * best_value.max(1.0);

    let fast_indices: Vec<usize> = (0..groups.len()).filter(|&g| is_fast(rates[g])).collect();
    let slow_indices: Vec<usize> = (0..groups.len()).filter(|&g| !is_fast(rates[g])).collect();
    let slow_rates: Vec<f64> = slow_indices.iter().map(|&g| rates[g]).collect();

    let problem = DivisionProblem::new(
        dp,
        fast_indices.len(),
        best_value,
        slow_rates,
        total_micro_batches,
    );
    let division = divide_pipelines_parallel(&problem, division_workers.max(1)).map_err(|e| {
        PlanError::NoFeasiblePlan {
            reason: format!("pipeline division failed: {e}"),
        }
    })?;

    let mut pipelines: Vec<Vec<TpGroup>> = vec![Vec::new(); dp];
    let mut fast_iter = fast_indices.into_iter();
    for (i, &count) in division.fast_per_pipeline.iter().enumerate() {
        for _ in 0..count {
            let gidx = fast_iter.next().ok_or_else(|| PlanError::NoFeasiblePlan {
                reason: "division requested more fast groups than exist".into(),
            })?;
            pipelines[i].push(groups[gidx].clone());
        }
    }
    for (k, &p) in division.slow_assignment.iter().enumerate() {
        pipelines[p].push(groups[slow_indices[k]].clone());
    }
    if pipelines.iter().any(|p| p.is_empty()) {
        return Err(PlanError::InfeasibleDataParallel {
            dp,
            groups: groups.len(),
        });
    }
    Ok(PipelineDivision { pipelines })
}

/// Order the groups of one pipeline and assign layers to them.
///
/// Groups are bundled by TP degree; within a bundle Theorem 3 applies (sort by
/// descending rate).  All permutations of the bundles (≤ 4! since TP degrees
/// are in {1,2,4,8}) are evaluated through the layer-assignment ILP and the
/// best feasible ordering is returned.
pub fn order_and_assign_layers(
    cost: &CostModel,
    pipeline_groups: &[TpGroup],
    snapshot: &ClusterSnapshot,
    num_layers: u64,
    micro_batch_size: u64,
    zero_dp: u32,
    uniform_layers: bool,
) -> Option<LayerAssignment> {
    // Bundle by TP degree.
    let mut degrees: Vec<u32> = pipeline_groups.iter().map(|g| g.tp_degree()).collect();
    degrees.sort_unstable();
    degrees.dedup();

    let mut bundles: Vec<Vec<TpGroup>> = degrees
        .iter()
        .map(|&d| {
            let mut bundle: Vec<TpGroup> = pipeline_groups
                .iter()
                .filter(|g| g.tp_degree() == d)
                .cloned()
                .collect();
            // Theorem 3: descending group straggling rate within the bundle.
            bundle.sort_by(|a, b| {
                let ya =
                    cost.coeffs
                        .group_rate(a.tp_degree(), a.max_rate(snapshot), micro_batch_size);
                let yb =
                    cost.coeffs
                        .group_rate(b.tp_degree(), b.max_rate(snapshot), micro_batch_size);
                yb.total_cmp(&ya)
            });
            bundle
        })
        .collect();

    // Enumerate permutations of the bundles.
    let mut best: Option<LayerAssignment> = None;
    let mut indices: Vec<usize> = (0..bundles.len()).collect();
    permute(&mut indices, 0, &mut |perm| {
        let ordered: Vec<TpGroup> = perm
            .iter()
            .flat_map(|&bi| bundles[bi].iter().cloned())
            .collect();
        if let Some(assignment) = assign_layers(
            cost,
            &ordered,
            snapshot,
            num_layers,
            micro_batch_size,
            zero_dp,
            uniform_layers,
        ) {
            if best
                .as_ref()
                .map(|b| assignment.objective < b.objective - 1e-15)
                .unwrap_or(true)
            {
                best = Some(assignment);
            }
        }
    });
    // `bundles` is only mutated through sorting above; silence the unused-mut
    // lint on older compilers by touching it here.
    let _ = &mut bundles;
    best
}

/// In-place permutation enumeration (Heap's algorithm would also do; the bundle
/// count is at most 4 so simplicity wins).
fn permute<F: FnMut(&[usize])>(items: &mut Vec<usize>, start: usize, visit: &mut F) {
    if start == items.len() {
        visit(items);
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, visit);
        items.swap(start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_cluster;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};

    fn cost_model(spec: ModelSpec) -> CostModel {
        CostModel::new(ProfiledCoefficients::derive(
            spec,
            HardwareParams::a800_cluster(),
        ))
    }

    #[test]
    fn healthy_cluster_divides_evenly() {
        let cost = cost_model(ModelSpec::llama2_32b());
        let cluster = Cluster::homogeneous(4, 8);
        let snapshot = cluster.snapshot();
        let grouping = group_cluster(&snapshot, &cost.coeffs, 8, 1, 1.05, true);
        let division =
            divide_groups(&cost, &grouping, &snapshot, 2, 64, 1, true, 1).expect("division");
        assert_eq!(division.pipelines.len(), 2);
        assert_eq!(division.pipelines[0].len(), 2);
        assert_eq!(division.pipelines[1].len(), 2);
    }

    #[test]
    fn uniform_stage_division_gives_equal_counts() {
        let cost = cost_model(ModelSpec::llama2_32b());
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(0), 5.42);
        let snapshot = cluster.snapshot();
        let grouping = group_cluster(&snapshot, &cost.coeffs, 4, 1, 1.05, false);
        let division =
            divide_groups(&cost, &grouping, &snapshot, 4, 64, 1, false, 1).expect("division");
        assert!(division.pipelines.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn too_few_groups_for_dp_is_an_error() {
        let cost = cost_model(ModelSpec::llama2_32b());
        let cluster = Cluster::homogeneous(1, 8);
        let snapshot = cluster.snapshot();
        let grouping = group_cluster(&snapshot, &cost.coeffs, 8, 1, 1.05, true);
        assert!(matches!(
            divide_groups(&cost, &grouping, &snapshot, 4, 64, 1, true, 1),
            Err(PlanError::InfeasibleDataParallel { .. })
        ));
    }

    #[test]
    fn theorem3_orders_slower_groups_first() {
        // Two equal-size groups, one containing a straggler: the straggling
        // group must serve the earlier stage (descending rate order).
        let cost = cost_model(ModelSpec::llama2_32b());
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(0), 2.57);
        let snapshot = cluster.snapshot();
        let g_slow = TpGroup::new((0..8).map(GpuId).collect());
        let g_fast = TpGroup::new((8..16).map(GpuId).collect());
        let assignment = order_and_assign_layers(
            &cost,
            &[g_fast.clone(), g_slow.clone()],
            &snapshot,
            60,
            1,
            1,
            false,
        )
        .unwrap();
        assert_eq!(assignment.stages[0].group, g_slow);
        assert_eq!(assignment.stages[1].group, g_fast);
        // And the slower first stage holds fewer layers.
        assert!(assignment.stages[0].layers < assignment.stages[1].layers);
    }

    #[test]
    fn mixed_degree_bundles_are_all_tried() {
        // One TP-8 group, one TP-4 + TP-2 + TP-1 + TP-1 from a split node: the
        // ordering search must return a feasible assignment covering all
        // layers.
        let cost = cost_model(ModelSpec::llama2_7b());
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(0), 12.53);
        let snapshot = cluster.snapshot();
        let grouping = group_cluster(&snapshot, &cost.coeffs, 8, 1, 1.05, true);
        // Use all groups as a single pipeline.
        let assignment =
            order_and_assign_layers(&cost, &grouping.groups, &snapshot, 32, 1, 1, false).unwrap();
        let total: u32 = assignment.stages.iter().map(|s| s.layers).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn division_is_identical_at_any_worker_count() {
        let cost = cost_model(ModelSpec::llama2_32b());
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(3), 5.42);
        cluster.set_rate(GpuId(9), 2.57);
        let snapshot = cluster.snapshot();
        let grouping = group_cluster(&snapshot, &cost.coeffs, 8, 1, 1.05, true);
        let serial =
            divide_groups(&cost, &grouping, &snapshot, 2, 64, 1, true, 1).expect("division");
        for workers in [2usize, 4, 8] {
            let par = divide_groups(&cost, &grouping, &snapshot, 2, 64, 1, true, workers)
                .expect("division");
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn division_keeps_every_group_exactly_once() {
        let cost = cost_model(ModelSpec::llama2_32b());
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(3), 5.42);
        cluster.set_rate(GpuId(9), 2.57);
        let snapshot = cluster.snapshot();
        let grouping = group_cluster(&snapshot, &cost.coeffs, 8, 1, 1.05, true);
        let division =
            divide_groups(&cost, &grouping, &snapshot, 2, 64, 1, true, 1).expect("division");
        let mut seen: Vec<GpuId> = division
            .pipelines
            .iter()
            .flat_map(|p| p.iter().flat_map(|g| g.gpus.clone()))
            .collect();
        seen.sort();
        let mut expected: Vec<GpuId> = grouping
            .groups
            .iter()
            .flat_map(|g| g.gpus.clone())
            .collect();
        expected.sort();
        assert_eq!(seen, expected);
    }
}
