//! Warm-start delta replanning (ROADMAP: "Incremental (delta) replanning to
//! shrink the stall window").
//!
//! A full planning invocation enumerates the candidate lattice — every
//! (max-TP, DP, micro-batch, division-mode) tuple — and pays the Eq. (4)
//! division MINLP plus the ordering/layer ILPs for each point.  Most cluster
//! events do not invalidate most of that work: a straggler coefficient
//! drifting on one GPU leaves every candidate whose cost inputs are unchanged
//! bit-identical, and straggler levels in practice flap between a few
//! discrete interference states (§2 / Table 4), so previously evaluated
//! lattice points recur.
//!
//! Two pieces make the warm start sound:
//!
//! - [`ScoredLattice`]: the scored candidate lattice is persisted alongside
//!   the chosen plan (in [`crate::PlanOutcome::lattice`]) together with the
//!   snapshot it was planned against, so the replanner can classify the next
//!   event from the snapshot *diff* and fall back to full enumeration when
//!   the change is structural (node loss / node join / topology change).
//! - [`CandidateMemo`]: a bounded cross-invocation memo of candidate
//!   evaluations, keyed by a fingerprint of *exactly* the inputs that
//!   determine [`crate::Planner`]'s per-candidate evaluation (the grouping
//!   membership, every group's straggling-rate bits, the DP degree, the
//!   micro-batch size, the division mode, the global batch, the non-uniform
//!   knobs, the GPU count and the profiled coefficients) and confirmed by
//!   full equality on a hit — the same discipline as
//!   [`crate::GroupingCache`].  A confirmed hit returns the bitwise-identical
//!   evaluation a fresh computation would produce, so delta replans are
//!   byte-identical to from-scratch plans *by construction*; the
//!   `Parallelism::Fixed(1)` full-enumeration path remains the equivalence
//!   oracle.
//!
//! Colliding fingerprints coexist in a small per-key bucket (they never
//! replace each other), and the memo clears wholesale once a capacity bound
//! is hit, keeping memory bounded under snapshot churn.

use crate::grouping::GroupingResult;
use crate::planner::PlanOutcome;
use malleus_cluster::ClusterSnapshot;
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Environment override for the incremental-replanning knob (`0`/`false`/
/// `off` disable, `1`/`true`/`on` enable); used by the CI equivalence matrix
/// to drive the {full, delta} axis.
pub const INCREMENTAL_ENV: &str = "MALLEUS_PLANNER_INCREMENTAL";

/// Read [`INCREMENTAL_ENV`], falling back to `default` when unset or
/// unparseable.
pub fn incremental_from_env_or(default: bool) -> bool {
    match std::env::var(INCREMENTAL_ENV) {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "0" | "false" | "off" | "no" => false,
            "1" | "true" | "on" | "yes" => true,
            _ => default,
        },
        Err(_) => default,
    }
}

/// Upper bound on memoized candidate evaluations; the memo is cleared
/// wholesale when exceeded (bounded memory, same policy as the grouping
/// cache).
const MEMO_CAPACITY: usize = 8192;

/// Colliding evaluations tolerated under one fingerprint before the oldest is
/// dropped.
const MEMO_BUCKET: usize = 4;

/// One scored point of the candidate lattice (feasible or not).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeEntry {
    /// Maximum TP degree of the candidate's grouping.
    pub max_tp: u32,
    /// Data-parallel degree.
    pub dp: usize,
    /// Micro-batch size.
    pub micro_batch: u64,
    /// Whether the Eq. (4) MINLP division was used.
    pub nonuniform_division: bool,
    /// Estimated step time under the exact cost model; `None` when the
    /// candidate was infeasible.
    pub estimated_step_time: Option<f64>,
    /// Whether this evaluation was served from the candidate memo.
    pub reused: bool,
}

/// The scored candidate lattice of one planning invocation, persisted
/// alongside the chosen plan so the next replan can warm-start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredLattice {
    /// The snapshot this lattice was scored against: the basis for
    /// classifying the next event from the snapshot diff.
    pub snapshot: ClusterSnapshot,
    /// The DP pin in effect (replans keep the previous DP degree).
    pub forced_dp: Option<usize>,
    /// Every enumerated candidate, in lattice order.
    pub entries: Vec<LatticeEntry>,
    /// How many candidate evaluations were served from the memo.
    pub reused: usize,
    /// How many candidates were evaluated from scratch.
    pub evaluated: usize,
    /// Whether the memo was consulted at all (`false` on full-enumeration
    /// invocations, which only *populate* the memo).
    pub delta: bool,
}

impl ScoredLattice {
    /// Whether `snapshot` differs structurally from the lattice's planning
    /// basis: a topology change or any availability flip
    /// (finite ↔ infinite rate).  Structural diffs route to full
    /// enumeration; drift-only diffs may warm-start.
    pub fn structural_change(&self, snapshot: &ClusterSnapshot) -> bool {
        !self.snapshot.same_structure(snapshot)
    }
}

/// Borrowed view of every input that determines one candidate evaluation.
///
/// The snapshot enters candidate evaluation only through each group's
/// straggling rate (`TpGroup::max_rate`) and the total GPU count (which fixes
/// the removed-GPU complement), so those are captured instead of the full
/// snapshot: a drifted GPU that is not the maximum of any group it belongs to
/// leaves its candidates' inputs — and therefore their evaluations —
/// bitwise unchanged.
pub(crate) struct CandidateInputs<'a> {
    pub coeffs: &'a ProfiledCoefficients,
    pub global_batch_size: u64,
    pub nonuniform_layers: bool,
    pub nonuniform_data: bool,
    pub num_gpus: usize,
    pub grouping: &'a GroupingResult,
    pub group_rate_bits: &'a [u64],
    pub dp: usize,
    pub micro_batch: u64,
    pub nonuniform_division: bool,
}

impl CandidateInputs<'_> {
    /// FNV-1a fingerprint of the inputs (collisions are resolved by the
    /// per-key bucket plus full-equality confirmation).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.global_batch_size);
        h.u64(self.num_gpus as u64);
        h.u64(self.dp as u64);
        h.u64(self.micro_batch);
        h.u64(
            (self.nonuniform_division as u64)
                | (self.nonuniform_layers as u64) << 1
                | (self.nonuniform_data as u64) << 2,
        );
        h.u64(self.grouping.max_tp as u64);
        h.u64(self.grouping.groups.len() as u64);
        for group in &self.grouping.groups {
            h.u64(group.gpus.len() as u64);
            for gpu in &group.gpus {
                h.u64(gpu.0 as u64);
            }
        }
        for &bits in self.group_rate_bits {
            h.u64(bits);
        }
        h.finish()
    }
}

/// One memoized candidate evaluation: the owned copy of its inputs (for
/// full-equality confirmation) plus the evaluation result.
#[derive(Debug)]
pub(crate) struct MemoizedEval {
    coeffs: ProfiledCoefficients,
    global_batch_size: u64,
    nonuniform_layers: bool,
    nonuniform_data: bool,
    num_gpus: usize,
    grouping: Arc<GroupingResult>,
    group_rate_bits: Vec<u64>,
    dp: usize,
    micro_batch: u64,
    nonuniform_division: bool,
    /// The feasible outcome (timing zeroed, no lattice), if any.
    pub outcome: Option<PlanOutcome>,
    /// The failure reason, if the candidate was infeasible.
    pub failure: Option<String>,
}

impl MemoizedEval {
    fn matches(&self, inputs: &CandidateInputs<'_>) -> bool {
        self.global_batch_size == inputs.global_batch_size
            && self.nonuniform_layers == inputs.nonuniform_layers
            && self.nonuniform_data == inputs.nonuniform_data
            && self.num_gpus == inputs.num_gpus
            && self.dp == inputs.dp
            && self.micro_batch == inputs.micro_batch
            && self.nonuniform_division == inputs.nonuniform_division
            && self.group_rate_bits == inputs.group_rate_bits
            && *self.grouping == *inputs.grouping
            && self.coeffs == *inputs.coeffs
    }
}

/// Bounded cross-invocation memo of candidate evaluations.  Cloning shares
/// the storage (the same sharing idiom as [`crate::GroupingCache`]), so
/// planners built for successive replanning rounds — or for different
/// tenants by the planning service — pool their candidate work.
#[derive(Debug, Clone, Default)]
pub struct CandidateMemo {
    entries: Arc<Mutex<HashMap<u64, Vec<Arc<MemoizedEval>>>>>,
}

impl CandidateMemo {
    /// Confirmed lookup: a fingerprint hit whose stored inputs differ is a
    /// miss (colliding entries coexist in the bucket, so a collision never
    /// evicts the survivor).
    pub(crate) fn lookup(
        &self,
        key: u64,
        inputs: &CandidateInputs<'_>,
    ) -> Option<Arc<MemoizedEval>> {
        let entries = self.entries.lock().unwrap();
        entries
            .get(&key)?
            .iter()
            .find(|e| e.matches(inputs))
            .map(Arc::clone)
    }

    /// Memoize one evaluation (idempotent for racing inserts of the same
    /// inputs: the bucket keeps the first copy).
    pub(crate) fn insert(
        &self,
        key: u64,
        inputs: &CandidateInputs<'_>,
        grouping: Arc<GroupingResult>,
        outcome: Option<PlanOutcome>,
        failure: Option<String>,
    ) {
        let eval = MemoizedEval {
            coeffs: inputs.coeffs.clone(),
            global_batch_size: inputs.global_batch_size,
            nonuniform_layers: inputs.nonuniform_layers,
            nonuniform_data: inputs.nonuniform_data,
            num_gpus: inputs.num_gpus,
            grouping,
            group_rate_bits: inputs.group_rate_bits.to_vec(),
            dp: inputs.dp,
            micro_batch: inputs.micro_batch,
            nonuniform_division: inputs.nonuniform_division,
            outcome,
            failure,
        };
        let mut entries = self.entries.lock().unwrap();
        if entries.values().map(Vec::len).sum::<usize>() >= MEMO_CAPACITY {
            entries.clear();
        }
        let bucket = entries.entry(key).or_default();
        if bucket.iter().any(|e| e.matches(inputs)) {
            return;
        }
        if bucket.len() >= MEMO_BUCKET {
            bucket.remove(0);
        }
        bucket.push(Arc::new(eval));
    }

    /// Number of memoized evaluations (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Incremental FNV-1a hasher (same construction as
/// `ClusterSnapshot::fingerprint`, kept dependency-free).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ byte as u64).wrapping_mul(PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
