//! The planner's analytic cost model (§4.2 + Appendix B.4).
//!
//! Time: the running time of stage `j` in pipeline `i` for one micro-batch is
//! `t_{i,j} = y_{i,j} · l_{i,j} · τ(b)` where `y` is the group straggling rate.
//! The pipeline time is `(m_i − 1)·max_j t_{i,j} + Σ_j t_{i,j}` (1F1B warm-up +
//! steady state + cool-down), which the planner approximates by
//! `m_i · max_j t_{i,j}` when deriving assignments.  The step time is the
//! maximum over pipelines.
//!
//! Memory: stage `j` of a `PP`-stage pipeline with `l` layers must satisfy
//! `l·μ_j(b) + ν_j(b) ≤ C` per GPU (Appendix B.4).

use crate::plan::{ParallelizationPlan, PipelinePlan, StagePlan};
use malleus_cluster::ClusterSnapshot;
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};

/// Summary of a plan's estimated cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Step time with the exact 1F1B formula (seconds).
    pub step_time_exact: f64,
    /// Step time with the simplified `m·max_j t` formula used by the ILPs.
    pub step_time_simplified: f64,
    /// Per-pipeline exact times.
    pub pipeline_times: Vec<f64>,
    /// Whether every stage satisfies its memory constraint.
    pub memory_feasible: bool,
}

/// The analytic cost model: profiled coefficients + evaluation helpers.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Profiled model/hardware coefficients.
    pub coeffs: ProfiledCoefficients,
}

impl CostModel {
    /// Create a cost model from profiled coefficients.
    pub fn new(coeffs: ProfiledCoefficients) -> Self {
        Self { coeffs }
    }

    /// Group straggling rate `y = ρ_n · max{x}` of a stage's TP group.
    pub fn group_rate(
        &self,
        stage: &StagePlan,
        snapshot: &ClusterSnapshot,
        micro_batch_size: u64,
    ) -> f64 {
        self.coeffs.group_rate(
            stage.group.tp_degree(),
            stage.group.max_rate(snapshot),
            micro_batch_size,
        )
    }

    /// Per-micro-batch running time of a stage: `t = y · l · τ(b)`.
    pub fn stage_time(
        &self,
        stage: &StagePlan,
        snapshot: &ClusterSnapshot,
        micro_batch_size: u64,
    ) -> f64 {
        self.group_rate(stage, snapshot, micro_batch_size)
            * stage.layers as f64
            * self.coeffs.tau(micro_batch_size)
    }

    /// Simplified pipeline time `m_i · max_j t_{i,j}`.
    pub fn pipeline_time_simplified(
        &self,
        pipeline: &PipelinePlan,
        snapshot: &ClusterSnapshot,
        micro_batch_size: u64,
    ) -> f64 {
        let max_t = pipeline
            .stages
            .iter()
            .map(|s| self.stage_time(s, snapshot, micro_batch_size))
            .fold(0.0, f64::max);
        pipeline.num_micro_batches as f64 * max_t
    }

    /// Exact 1F1B pipeline time `(m_i − 1)·max_j t + Σ_j t`.
    pub fn pipeline_time_exact(
        &self,
        pipeline: &PipelinePlan,
        snapshot: &ClusterSnapshot,
        micro_batch_size: u64,
    ) -> f64 {
        // Single pass, no intermediate Vec: both folds visit the stages in the
        // same order as the two-pass formulation, so the bits are unchanged.
        let mut max_t = 0.0_f64;
        let mut sum_t = 0.0_f64;
        for s in &pipeline.stages {
            let t = self.stage_time(s, snapshot, micro_batch_size);
            max_t = f64::max(max_t, t);
            sum_t += t;
        }
        (pipeline.num_micro_batches.saturating_sub(1)) as f64 * max_t + sum_t
    }

    /// Analytic estimate of the ZeRO-1 gradient-synchronization time of a plan:
    /// the busiest GPU's gradients are reduce-scattered and the updated
    /// parameters all-gathered across the `DP` replicas over the inter-node
    /// fabric (≈ one all-reduce of the fp16 gradients).
    pub fn gradient_sync_time(&self, plan: &ParallelizationPlan) -> f64 {
        let dp = plan.dp();
        if dp <= 1 {
            return 0.0;
        }
        let hw = &self.coeffs.hardware;
        plan.pipelines
            .iter()
            .flat_map(|p| p.stages.iter())
            .map(|stage| {
                let bytes = stage.layers as f64
                    * self
                        .coeffs
                        .gradient_bytes_per_layer_slice(stage.group.tp_degree());
                2.0 * (dp as f64 - 1.0) / dp as f64 * bytes / hw.inter_node_bandwidth
            })
            .fold(0.0, f64::max)
    }

    /// Estimated step time of a plan (exact formula), `max_i T_i` plus the
    /// gradient-synchronization estimate.
    pub fn step_time(&self, plan: &ParallelizationPlan, snapshot: &ClusterSnapshot) -> f64 {
        plan.pipelines
            .iter()
            .map(|p| self.pipeline_time_exact(p, snapshot, plan.micro_batch_size))
            .fold(0.0, f64::max)
            + self.gradient_sync_time(plan)
    }

    /// Estimated step time with the simplified formula (what the ILPs optimize,
    /// reported as `R_est` in Table 3).
    pub fn step_time_simplified(
        &self,
        plan: &ParallelizationPlan,
        snapshot: &ClusterSnapshot,
    ) -> f64 {
        plan.pipelines
            .iter()
            .map(|p| self.pipeline_time_simplified(p, snapshot, plan.micro_batch_size))
            .fold(0.0, f64::max)
    }

    /// Peak per-GPU memory of a stage in bytes (`l·μ + ν`).
    pub fn stage_memory_bytes(
        &self,
        stage: &StagePlan,
        stage_index: usize,
        pp: usize,
        micro_batch_size: u64,
        zero_dp: u32,
    ) -> f64 {
        let tp = stage.group.tp_degree();
        stage.layers as f64
            * self
                .coeffs
                .mu(micro_batch_size, tp, stage_index, pp, zero_dp)
            + self
                .coeffs
                .nu(micro_batch_size, tp, stage_index, pp, zero_dp)
    }

    /// Whether every stage of the plan satisfies the per-GPU memory budget.
    pub fn memory_feasible(&self, plan: &ParallelizationPlan) -> bool {
        let cap = self.coeffs.per_gpu_capacity();
        let zero_dp = plan.dp() as u32;
        plan.pipelines.iter().all(|p| {
            let pp = p.pp();
            p.stages.iter().enumerate().all(|(j, s)| {
                self.stage_memory_bytes(s, j, pp, plan.micro_batch_size, zero_dp) <= cap
            })
        })
    }

    /// Full cost estimate of a plan.
    pub fn estimate(&self, plan: &ParallelizationPlan, snapshot: &ClusterSnapshot) -> CostEstimate {
        let pipeline_times: Vec<f64> = plan
            .pipelines
            .iter()
            .map(|p| self.pipeline_time_exact(p, snapshot, plan.micro_batch_size))
            .collect();
        CostEstimate {
            step_time_exact: pipeline_times.iter().copied().fold(0.0, f64::max),
            step_time_simplified: self.step_time_simplified(plan, snapshot),
            pipeline_times,
            memory_feasible: self.memory_feasible(plan),
        }
    }

    /// Maximum layers a stage of the given shape can hold (Appendix B.4), or
    /// `None` if even an empty stage exceeds the budget.
    pub fn max_layers(
        &self,
        tp_degree: u32,
        stage_index: usize,
        pp: usize,
        micro_batch_size: u64,
        zero_dp: u32,
    ) -> Option<u64> {
        self.coeffs
            .max_layers_for_stage(micro_batch_size, tp_degree, stage_index, pp, zero_dp)
    }

    /// Theoretic-optimum slowdown ratio of a straggler situation (Table 2/3):
    /// `N / ((N − n) + Σ 1/x_i)` over the straggling GPUs.
    pub fn theoretic_optimal_ratio(snapshot: &ClusterSnapshot) -> f64 {
        let n_total = snapshot.num_gpus() as f64;
        let mut healthy = 0.0;
        let mut straggler_capacity = 0.0;
        for &x in &snapshot.rates {
            if x <= 1.0 {
                healthy += 1.0;
            } else if x.is_finite() {
                straggler_capacity += 1.0 / x;
            }
        }
        n_total / (healthy + straggler_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ParallelizationPlan;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_model::{HardwareParams, ModelSpec};

    fn cost_model() -> CostModel {
        CostModel::new(ProfiledCoefficients::derive(
            ModelSpec::llama2_7b(),
            HardwareParams::a800_cluster(),
        ))
    }

    fn uniform_plan() -> ParallelizationPlan {
        let gpus: Vec<GpuId> = (0..16).map(GpuId).collect();
        ParallelizationPlan::uniform(&gpus, 2, 2, 4, 32, 64, 1).unwrap()
    }

    #[test]
    fn step_time_increases_with_a_straggler() {
        let cm = cost_model();
        let plan = uniform_plan();
        let mut cluster = Cluster::homogeneous(2, 8);
        let healthy = cm.step_time(&plan, &cluster.snapshot());
        cluster.set_rate(GpuId(0), 5.42);
        let straggled = cm.step_time(&plan, &cluster.snapshot());
        assert!(straggled > healthy * 2.0, "{straggled} vs {healthy}");
    }

    #[test]
    fn exact_time_exceeds_simplified_time() {
        let cm = cost_model();
        let plan = uniform_plan();
        let snapshot = Cluster::homogeneous(2, 8).snapshot();
        let exact = cm.step_time(&plan, &snapshot);
        let simplified = cm.step_time_simplified(&plan, &snapshot);
        // Exact adds the warm-up/cool-down bubble, so it is strictly larger
        // whenever the pipeline has more than one stage.
        assert!(exact > simplified);
        // ... but with m >> PP they are close (within ~10%).
        assert!(exact < simplified * 1.15);
    }

    #[test]
    fn memory_feasibility_for_small_model_on_many_gpus() {
        let cm = cost_model();
        let plan = uniform_plan();
        assert!(cm.memory_feasible(&plan));
    }

    #[test]
    fn memory_infeasible_for_huge_model_on_one_gpu() {
        let cm = CostModel::new(ProfiledCoefficients::derive(
            ModelSpec::llama2_70b(),
            HardwareParams::a800_cluster(),
        ));
        let gpus: Vec<GpuId> = (0..1).map(GpuId).collect();
        let plan = ParallelizationPlan::uniform(&gpus, 1, 1, 1, 80, 8, 1).unwrap();
        assert!(!cm.memory_feasible(&plan));
    }

    #[test]
    fn theoretic_optimal_ratio_matches_formula() {
        let mut cluster = Cluster::homogeneous(8, 8);
        cluster.set_rate(GpuId(0), 2.0);
        let ratio = CostModel::theoretic_optimal_ratio(&cluster.snapshot());
        let expected = 64.0 / (63.0 + 0.5);
        assert!((ratio - expected).abs() < 1e-12);
    }

    #[test]
    fn theoretic_optimal_ratio_is_one_without_stragglers() {
        let cluster = Cluster::homogeneous(4, 8);
        assert!((CostModel::theoretic_optimal_ratio(&cluster.snapshot()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stage_time_scales_with_layers_and_rate() {
        let cm = cost_model();
        let mut cluster = Cluster::homogeneous(1, 8);
        cluster.set_rate(GpuId(0), 2.0);
        let snapshot = cluster.snapshot();
        let group = crate::plan::TpGroup::new(vec![GpuId(0), GpuId(1)]);
        let s1 = StagePlan {
            group: group.clone(),
            layers: 4,
        };
        let s2 = StagePlan { group, layers: 8 };
        let t1 = cm.stage_time(&s1, &snapshot, 1);
        let t2 = cm.stage_time(&s2, &snapshot, 1);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_reports_per_pipeline_times() {
        let cm = cost_model();
        let plan = uniform_plan();
        let snapshot = Cluster::homogeneous(2, 8).snapshot();
        let est = cm.estimate(&plan, &snapshot);
        assert_eq!(est.pipeline_times.len(), 2);
        assert!(est.memory_feasible);
        assert!(est.step_time_exact >= est.pipeline_times[0]);
    }
}
