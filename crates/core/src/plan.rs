//! Parallelization-plan data structures.
//!
//! A plan describes, for every training pipeline, which tensor-parallel group
//! serves each pipeline stage, how many model layers each stage holds, and how
//! many micro-batches the pipeline processes per step.  GPUs not referenced by
//! any stage are *standby* devices: they were strategically removed (assigned
//! zero layers) because their straggling rates were too high, and they may be
//! re-admitted by a later re-planning round (§5.2, elastic scaling).

use crate::error::PlanError;
use malleus_cluster::{ClusterSnapshot, GpuId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A tensor-parallel group: the set of GPUs that jointly execute one pipeline
/// stage.  All GPUs of a group reside on the same node (TP is intra-node).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpGroup {
    /// Member GPUs, sorted by descending straggling rate at construction time.
    pub gpus: Vec<GpuId>,
}

impl TpGroup {
    /// Create a group from member GPUs.
    pub fn new(gpus: Vec<GpuId>) -> Self {
        assert!(!gpus.is_empty(), "a TP group must contain at least one GPU");
        Self { gpus }
    }

    /// The tensor-parallel degree (number of member GPUs).
    pub fn tp_degree(&self) -> u32 {
        self.gpus.len() as u32
    }

    /// The maximum straggling rate among members (the group is gated by its
    /// slowest GPU due to the synchronous nature of TP).
    pub fn max_rate(&self, snapshot: &ClusterSnapshot) -> f64 {
        self.gpus
            .iter()
            .map(|g| snapshot.rate(*g))
            .fold(1.0_f64, f64::max)
    }
}

/// One pipeline stage: a TP group plus the number of contiguous model layers it
/// executes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePlan {
    /// The TP group serving this stage.
    pub group: TpGroup,
    /// Number of model layers assigned to the stage (`l_{i,j}`).
    pub layers: u32,
}

/// One training pipeline (one model replica).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// Ordered stages (stage 0 holds the embedding, the last stage the LM head).
    pub stages: Vec<StagePlan>,
    /// Number of micro-batches this pipeline processes per step (`m_i`).
    pub num_micro_batches: u64,
}

impl PipelinePlan {
    /// The pipeline-parallel degree (`PP_i`).
    pub fn pp(&self) -> usize {
        self.stages.len()
    }

    /// Total layers across the pipeline's stages.
    pub fn total_layers(&self) -> u32 {
        self.stages.iter().map(|s| s.layers).sum()
    }

    /// `[start, end)` layer ranges of each stage.
    pub fn layer_ranges(&self) -> Vec<(u32, u32)> {
        let mut ranges = Vec::with_capacity(self.stages.len());
        let mut start = 0;
        for s in &self.stages {
            ranges.push((start, start + s.layers));
            start += s.layers;
        }
        ranges
    }

    /// GPUs participating in this pipeline.
    pub fn gpus(&self) -> Vec<GpuId> {
        self.stages
            .iter()
            .flat_map(|s| s.group.gpus.iter().copied())
            .collect()
    }

    /// The maximum TP degree among the pipeline's stages.
    pub fn max_tp_degree(&self) -> u32 {
        self.stages
            .iter()
            .map(|s| s.group.tp_degree())
            .max()
            .unwrap_or(0)
    }
}

/// A complete parallelization plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelizationPlan {
    /// The training pipelines (the data-parallel degree is `pipelines.len()`).
    pub pipelines: Vec<PipelinePlan>,
    /// Micro-batch size `b` shared by every pipeline.
    pub micro_batch_size: u64,
    /// GPUs removed from training (standby devices).
    pub removed_gpus: Vec<GpuId>,
}

impl ParallelizationPlan {
    /// The data-parallel degree (`DP`).
    pub fn dp(&self) -> usize {
        self.pipelines.len()
    }

    /// GPUs actively used by the plan.
    pub fn active_gpus(&self) -> Vec<GpuId> {
        let mut gpus: Vec<GpuId> = self.pipelines.iter().flat_map(|p| p.gpus()).collect();
        gpus.sort();
        gpus
    }

    /// The global batch size implied by the plan (`Σ m_i · b`).
    pub fn global_batch_size(&self) -> u64 {
        self.pipelines
            .iter()
            .map(|p| p.num_micro_batches * self.micro_batch_size)
            .sum()
    }

    /// Validate structural invariants: every pipeline covers all `num_layers`
    /// layers, the data assignment reproduces the global batch, no GPU is used
    /// twice, and no active GPU is also marked removed.
    pub fn validate(&self, num_layers: u32, global_batch_size: u64) -> Result<(), PlanError> {
        if self.pipelines.is_empty() {
            return Err(PlanError::InvalidPlan {
                reason: "plan has no pipelines".into(),
            });
        }
        for (i, p) in self.pipelines.iter().enumerate() {
            if p.stages.is_empty() {
                return Err(PlanError::InvalidPlan {
                    reason: format!("pipeline {i} has no stages"),
                });
            }
            if p.total_layers() != num_layers {
                return Err(PlanError::InvalidPlan {
                    reason: format!(
                        "pipeline {i} covers {} layers, expected {num_layers}",
                        p.total_layers()
                    ),
                });
            }
            if p.stages.iter().any(|s| s.layers == 0) {
                return Err(PlanError::InvalidPlan {
                    reason: format!("pipeline {i} contains a zero-layer stage"),
                });
            }
            if p.num_micro_batches == 0 {
                return Err(PlanError::InvalidPlan {
                    reason: format!("pipeline {i} was assigned zero micro-batches"),
                });
            }
        }
        if self.global_batch_size() != global_batch_size {
            return Err(PlanError::InvalidPlan {
                reason: format!(
                    "plan trains {} sequences per step, expected {global_batch_size}",
                    self.global_batch_size()
                ),
            });
        }
        let mut seen: BTreeSet<GpuId> = BTreeSet::new();
        for p in &self.pipelines {
            for g in p.gpus() {
                if !seen.insert(g) {
                    return Err(PlanError::InvalidPlan {
                        reason: format!("{g} is assigned to more than one stage"),
                    });
                }
            }
        }
        for g in &self.removed_gpus {
            if seen.contains(g) {
                return Err(PlanError::InvalidPlan {
                    reason: format!("{g} is both active and removed"),
                });
            }
        }
        Ok(())
    }

    /// Human-readable description in the style of the paper's Table 4 case
    /// studies.
    pub fn describe(&self, snapshot: &ClusterSnapshot) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan: DP={} b={} removed={}\n",
            self.dp(),
            self.micro_batch_size,
            self.removed_gpus.len()
        ));
        for (i, p) in self.pipelines.iter().enumerate() {
            out.push_str(&format!(
                "  pipeline {i}: m={} ({} stages)\n",
                p.num_micro_batches,
                p.pp()
            ));
            for (j, s) in p.stages.iter().enumerate() {
                let gpus: Vec<String> = s
                    .group
                    .gpus
                    .iter()
                    .map(|g| {
                        let r = snapshot.rate(*g);
                        if r > 1.0 {
                            format!("x{}={:.2}", g.0, r)
                        } else {
                            format!("x{}", g.0)
                        }
                    })
                    .collect();
                out.push_str(&format!(
                    "    stage {j}: tp={} layers={} [{}]\n",
                    s.group.tp_degree(),
                    s.layers,
                    gpus.join(", ")
                ));
            }
        }
        if !self.removed_gpus.is_empty() {
            let removed: Vec<String> = self.removed_gpus.iter().map(|g| g.to_string()).collect();
            out.push_str(&format!("  standby: [{}]\n", removed.join(", ")));
        }
        out
    }

    /// Build the uniform (Megatron-style) plan: `dp` pipelines × `pp` stages ×
    /// `tp` GPUs per stage, layers and data split evenly.  GPUs are taken in id
    /// order; the caller is responsible for ensuring `dp·pp·tp` GPUs exist.
    pub fn uniform(
        gpus: &[GpuId],
        dp: usize,
        pp: usize,
        tp: u32,
        num_layers: u32,
        global_batch_size: u64,
        micro_batch_size: u64,
    ) -> Result<Self, PlanError> {
        let needed = dp * pp * tp as usize;
        if gpus.len() < needed {
            return Err(PlanError::NoFeasiblePlan {
                reason: format!(
                    "uniform plan needs {needed} GPUs, only {} given",
                    gpus.len()
                ),
            });
        }
        let total_micro_batches = global_batch_size / micro_batch_size;
        if !total_micro_batches.is_multiple_of(dp as u64)
            || !global_batch_size.is_multiple_of(micro_batch_size)
        {
            return Err(PlanError::NoFeasiblePlan {
                reason: format!(
                    "global batch {global_batch_size} not divisible by dp {dp} × micro-batch {micro_batch_size}"
                ),
            });
        }
        let mut iter = gpus.iter().copied();
        let mut pipelines = Vec::with_capacity(dp);
        // Distribute layers as evenly as possible: earlier stages take the
        // remainder (Megatron assigns extra layers to the first stages).
        let base = num_layers / pp as u32;
        let extra = num_layers % pp as u32;
        for _ in 0..dp {
            let mut stages = Vec::with_capacity(pp);
            for j in 0..pp {
                let members: Vec<GpuId> = (0..tp).map(|_| iter.next().unwrap()).collect();
                let layers = base + if (j as u32) < extra { 1 } else { 0 };
                stages.push(StagePlan {
                    group: TpGroup::new(members),
                    layers,
                });
            }
            pipelines.push(PipelinePlan {
                stages,
                num_micro_batches: total_micro_batches / dp as u64,
            });
        }
        let used: BTreeSet<GpuId> = pipelines.iter().flat_map(|p| p.gpus()).collect();
        let removed = gpus.iter().copied().filter(|g| !used.contains(g)).collect();
        Ok(Self {
            pipelines,
            micro_batch_size,
            removed_gpus: removed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::Cluster;

    fn snapshot() -> ClusterSnapshot {
        Cluster::homogeneous(4, 8).snapshot()
    }

    fn gpu_ids(n: u32) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn uniform_plan_is_valid() {
        let plan =
            ParallelizationPlan::uniform(&gpu_ids(32), 2, 4, 4, 32, 64, 1).expect("uniform plan");
        plan.validate(32, 64).expect("valid");
        assert_eq!(plan.dp(), 2);
        assert_eq!(plan.pipelines[0].pp(), 4);
        assert_eq!(plan.pipelines[0].num_micro_batches, 32);
        assert_eq!(plan.active_gpus().len(), 32);
        assert!(plan.removed_gpus.is_empty());
    }

    #[test]
    fn uniform_plan_distributes_layer_remainder_to_early_stages() {
        let plan = ParallelizationPlan::uniform(&gpu_ids(8), 1, 3, 2, 32, 16, 1).unwrap();
        let layers: Vec<u32> = plan.pipelines[0].stages.iter().map(|s| s.layers).collect();
        assert_eq!(layers.iter().sum::<u32>(), 32);
        assert_eq!(layers, vec![11, 11, 10]);
        assert_eq!(plan.removed_gpus.len(), 2);
    }

    #[test]
    fn validation_catches_layer_mismatch() {
        let mut plan = ParallelizationPlan::uniform(&gpu_ids(8), 2, 2, 2, 32, 64, 1).unwrap();
        plan.pipelines[0].stages[0].layers = 10;
        assert!(matches!(
            plan.validate(32, 64),
            Err(PlanError::InvalidPlan { .. })
        ));
    }

    #[test]
    fn validation_catches_duplicate_gpus() {
        let mut plan = ParallelizationPlan::uniform(&gpu_ids(8), 2, 2, 2, 32, 64, 1).unwrap();
        plan.pipelines[1].stages[0].group = plan.pipelines[0].stages[0].group.clone();
        assert!(plan.validate(32, 64).is_err());
    }

    #[test]
    fn validation_catches_batch_mismatch() {
        let plan = ParallelizationPlan::uniform(&gpu_ids(8), 2, 2, 2, 32, 64, 1).unwrap();
        assert!(plan.validate(32, 128).is_err());
    }

    #[test]
    fn layer_ranges_are_contiguous() {
        let plan = ParallelizationPlan::uniform(&gpu_ids(8), 1, 4, 2, 30, 8, 1).unwrap();
        let ranges = plan.pipelines[0].layer_ranges();
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 30);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn describe_mentions_stragglers() {
        let mut cluster = Cluster::homogeneous(1, 8);
        cluster.set_rate(GpuId(0), 5.42);
        let plan = ParallelizationPlan::uniform(&gpu_ids(8), 1, 2, 4, 32, 8, 1).unwrap();
        let text = plan.describe(&cluster.snapshot());
        assert!(text.contains("x0=5.42"));
        assert!(text.contains("pipeline 0"));
    }

    #[test]
    fn group_max_rate_uses_slowest_member() {
        let mut cluster = Cluster::homogeneous(1, 8);
        cluster.set_rate(GpuId(2), 3.75);
        let group = TpGroup::new(vec![GpuId(0), GpuId(1), GpuId(2), GpuId(3)]);
        assert_eq!(group.max_rate(&cluster.snapshot()), 3.75);
        assert_eq!(group.tp_degree(), 4);
    }

    #[test]
    fn snapshot_smoke() {
        // keep the helper used (snapshot construction is exercised above too)
        assert_eq!(snapshot().num_gpus(), 32);
    }
}
