//! Model-state migration planning (§5.1).
//!
//! Model states are sharded following the paper's adjusted ZeRO-1 scheme: for a
//! given layer, let `TP_i` be the TP degree of the stage holding it in pipeline
//! `i` and `TP_max = max_i TP_i`.  The layer's states are cut into
//! `DP × TP_max` slices; each GPU of pipeline `i`'s owning group is responsible
//! for `TP_max / TP_i` slices.  When the plan changes, every slice whose owner
//! changed must be transferred — this module computes that (many-to-many) move
//! list; `malleus-sim` turns it into a migration time using the batched
//! send-recv model with 4-layer packing.

use crate::plan::ParallelizationPlan;
use malleus_cluster::GpuId;
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One model-state slice transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceMove {
    /// Model layer the slice belongs to.
    pub layer: u32,
    /// Data-parallel rank (pipeline index) of the replica.
    pub dp_rank: usize,
    /// Slice index within the layer's `TP_max` slices.
    pub slice: u32,
    /// Slice size in bytes.
    pub bytes: f64,
    /// Current owner.
    pub src: GpuId,
    /// New owner.
    pub dst: GpuId,
}

/// The full migration plan between two parallelization plans.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// All slice moves (src ≠ dst only).
    pub moves: Vec<SliceMove>,
}

impl MigrationPlan {
    /// Whether nothing needs to move.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> f64 {
        self.moves.iter().map(|m| m.bytes).sum()
    }

    /// Per-GPU (received, sent) byte totals.
    pub fn per_gpu_traffic(&self) -> BTreeMap<GpuId, (f64, f64)> {
        let mut traffic: BTreeMap<GpuId, (f64, f64)> = BTreeMap::new();
        for m in &self.moves {
            traffic.entry(m.dst).or_insert((0.0, 0.0)).0 += m.bytes;
            traffic.entry(m.src).or_insert((0.0, 0.0)).1 += m.bytes;
        }
        traffic
    }

    /// Number of distinct layers touched by the migration.
    pub fn layers_touched(&self) -> usize {
        let mut layers: Vec<u32> = self.moves.iter().map(|m| m.layer).collect();
        layers.sort_unstable();
        layers.dedup();
        layers.len()
    }
}

/// Owner GPU of slice `slice` (out of `tp_max`) of `layer` in pipeline
/// `dp_rank` of `plan`, or `None` when the plan does not cover the layer (e.g.
/// a failed replica).
fn slice_owner(
    plan: &ParallelizationPlan,
    dp_rank: usize,
    layer: u32,
    slice: u32,
    tp_max: u32,
) -> Option<GpuId> {
    let pipeline = plan.pipelines.get(dp_rank)?;
    let ranges = pipeline.layer_ranges();
    for (stage, (start, end)) in pipeline.stages.iter().zip(ranges) {
        if layer >= start && layer < end {
            let tp = stage.group.tp_degree();
            let member = (slice as u64 * tp as u64 / tp_max as u64) as usize;
            return stage.group.gpus.get(member).copied();
        }
    }
    None
}

/// TP degree of the stage owning `layer` in pipeline `dp_rank`, or 0.
fn layer_tp(plan: &ParallelizationPlan, dp_rank: usize, layer: u32) -> u32 {
    let Some(pipeline) = plan.pipelines.get(dp_rank) else {
        return 0;
    };
    for (stage, (start, end)) in pipeline.stages.iter().zip(pipeline.layer_ranges()) {
        if layer >= start && layer < end {
            return stage.group.tp_degree();
        }
    }
    0
}

/// Compute the slice moves required to transform `old` into `new`.
///
/// When the DP degree changed, replicas beyond the old DP degree are sourced
/// from replica 0 (a broadcast-style re-instantiation).
pub fn plan_migration(
    old: &ParallelizationPlan,
    new: &ParallelizationPlan,
    coeffs: &ProfiledCoefficients,
) -> MigrationPlan {
    let num_layers = coeffs.spec.num_layers;
    let layer_bytes = coeffs.state_bytes_per_layer();
    let mut moves = Vec::new();
    for dp_rank in 0..new.dp() {
        let src_rank = dp_rank.min(old.dp().saturating_sub(1));
        for layer in 0..num_layers {
            let old_tp = layer_tp(old, src_rank, layer);
            let new_tp = layer_tp(new, dp_rank, layer);
            if new_tp == 0 {
                continue; // new plan does not place this layer here (invalid plans only)
            }
            let tp_max = old_tp.max(new_tp).max(1);
            let slice_bytes = layer_bytes / tp_max as f64;
            for slice in 0..tp_max {
                let src = slice_owner(old, src_rank, layer, slice, tp_max);
                let dst = slice_owner(new, dp_rank, layer, slice, tp_max);
                match (src, dst) {
                    (Some(s), Some(d)) if s != d => moves.push(SliceMove {
                        layer,
                        dp_rank,
                        slice,
                        bytes: slice_bytes,
                        src: s,
                        dst: d,
                    }),
                    _ => {}
                }
            }
        }
    }
    MigrationPlan { moves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_model::{HardwareParams, ModelSpec};

    fn coeffs() -> ProfiledCoefficients {
        ProfiledCoefficients::derive(ModelSpec::llama2_7b(), HardwareParams::a800_cluster())
    }

    fn gpu_ids(range: std::ops::Range<u32>) -> Vec<GpuId> {
        range.map(GpuId).collect()
    }

    #[test]
    fn identical_plans_need_no_migration() {
        let plan = ParallelizationPlan::uniform(&gpu_ids(0..16), 2, 2, 4, 32, 64, 1).unwrap();
        let m = plan_migration(&plan, &plan, &coeffs());
        assert!(m.is_empty());
        assert_eq!(m.total_bytes(), 0.0);
    }

    #[test]
    fn moving_a_stage_to_new_gpus_moves_its_layers() {
        let old = ParallelizationPlan::uniform(&gpu_ids(0..16), 2, 2, 4, 32, 64, 1).unwrap();
        // New plan uses a different set of GPUs for the second pipeline.
        let mut gpus = gpu_ids(0..8);
        gpus.extend(gpu_ids(16..24));
        let new = ParallelizationPlan::uniform(&gpus, 2, 2, 4, 32, 64, 1).unwrap();
        let m = plan_migration(&old, &new, &coeffs());
        assert!(!m.is_empty());
        // Exactly the 32 layers of the relocated replica are touched.
        assert_eq!(m.layers_touched(), 32);
        // Everything flows into the new GPUs 16..24.
        for mv in &m.moves {
            assert!(mv.dst.0 >= 16 && mv.dst.0 < 24);
        }
    }

    #[test]
    fn tp_degree_change_reshards_layers() {
        let old = ParallelizationPlan::uniform(&gpu_ids(0..8), 1, 1, 8, 32, 8, 1).unwrap();
        let new = ParallelizationPlan::uniform(&gpu_ids(0..8), 1, 2, 4, 32, 8, 1).unwrap();
        let m = plan_migration(&old, &new, &coeffs());
        // The first 16 layers stay on GPUs 0..4 (subset of their old owners),
        // but layers 16..32 move from GPUs 4..8's slices to GPUs 4..8 as a
        // narrower group — some slices must move.
        assert!(!m.is_empty());
        let c = coeffs();
        assert!(m.total_bytes() < c.spec.num_layers as f64 * c.state_bytes_per_layer());
    }

    #[test]
    fn total_bytes_conserved_per_move_granularity() {
        let old = ParallelizationPlan::uniform(&gpu_ids(0..16), 2, 2, 4, 32, 64, 1).unwrap();
        let mut gpus = gpu_ids(8..16);
        gpus.extend(gpu_ids(0..8));
        let new = ParallelizationPlan::uniform(&gpus, 2, 2, 4, 32, 64, 1).unwrap();
        let m = plan_migration(&old, &new, &coeffs());
        let traffic = m.per_gpu_traffic();
        let received: f64 = traffic.values().map(|(r, _)| r).sum();
        let sent: f64 = traffic.values().map(|(_, s)| s).sum();
        assert!((received - sent).abs() < 1e-6);
        assert!((received - m.total_bytes()).abs() < 1e-6);
    }

    #[test]
    fn dp_growth_sources_from_replica_zero() {
        let old = ParallelizationPlan::uniform(&gpu_ids(0..8), 1, 2, 4, 32, 8, 1).unwrap();
        let new = ParallelizationPlan::uniform(&gpu_ids(0..16), 2, 2, 4, 32, 8, 1).unwrap();
        let m = plan_migration(&old, &new, &coeffs());
        // The new second replica (GPUs 8..16) must receive data from replica 0.
        assert!(m.moves.iter().any(|mv| mv.dst.0 >= 8 && mv.src.0 < 8));
    }
}
