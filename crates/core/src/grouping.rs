//! GPU grouping (§4.3.1): Theorem 1 even partitioning and heavy-straggler
//! splitting guided by the Theorem 2 harmonic-capacity estimate.
//!
//! Grouping is performed per node (tensor parallelism stays intra-node).  For a
//! candidate maximum TP degree `k ∈ {1, 2, 4, 8}`:
//!
//! 1. GPUs of each node are sorted by descending straggling rate and chunked
//!    into groups of `k` (Theorem 1: similar GPUs belong together).
//! 2. Straggling GPUs are visited in descending rate order; for each, the
//!    planner evaluates isolating it into its own TP-1 group and re-grouping
//!    the remaining members of its group into power-of-two-sized consecutive
//!    runs (Appendix B.7 enumerates these candidates).  A candidate is accepted
//!    if it increases the node's harmonic capacity `Σ_g 1/y_g` (Theorem 2).

use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};

use crate::plan::TpGroup;

/// TP groups under construction: each inner vec is one group's (gpu, rate) members.
type RatedGroups = Vec<Vec<(GpuId, f64)>>;

/// A grouping result: the TP groups formed over the whole cluster for one
/// candidate maximum TP degree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupingResult {
    /// The maximum TP degree this result was produced for.
    pub max_tp: u32,
    /// All TP groups across all nodes.
    pub groups: Vec<TpGroup>,
}

impl GroupingResult {
    /// Group straggling rates `y_g = ρ_{|g|} · max{x}` for every group.
    pub fn group_rates(
        &self,
        snapshot: &ClusterSnapshot,
        coeffs: &ProfiledCoefficients,
        micro_batch_size: u64,
    ) -> Vec<f64> {
        self.groups
            .iter()
            .map(|g| coeffs.group_rate(g.tp_degree(), g.max_rate(snapshot), micro_batch_size))
            .collect()
    }
}

/// Theorem 1: partition the (rate, gpu) pairs of one node — already sorted by
/// descending rate — into consecutive groups of exactly `k` GPUs.
pub fn even_partition(sorted_gpus: &[(GpuId, f64)], k: u32) -> Vec<TpGroup> {
    assert!(k >= 1);
    sorted_gpus
        .chunks(k as usize)
        .filter(|chunk| chunk.len() == k as usize)
        .map(|chunk| TpGroup::new(chunk.iter().map(|(g, _)| *g).collect()))
        .collect()
}

/// Enumerate the multisets of power-of-two group sizes (each `≤ max_tp`) that
/// sum to `remaining`, in every order (compositions).  Each composition maps to
/// one consecutive partition of the sorted remaining GPUs (Proposition 4 of
/// Appendix B.7 shows only consecutive partitions can be optimal).
pub fn power_of_two_compositions(remaining: usize, max_tp: u32) -> Vec<Vec<usize>> {
    let sizes: Vec<usize> = [1usize, 2, 4, 8]
        .iter()
        .copied()
        .filter(|&s| s <= max_tp as usize && s <= remaining.max(1))
        .collect();
    let mut results = Vec::new();
    let mut current = Vec::new();
    fn recurse(
        remaining: usize,
        sizes: &[usize],
        current: &mut Vec<usize>,
        results: &mut Vec<Vec<usize>>,
    ) {
        if remaining == 0 {
            results.push(current.clone());
            return;
        }
        for &s in sizes {
            if s <= remaining {
                current.push(s);
                recurse(remaining - s, sizes, current, results);
                current.pop();
            }
        }
    }
    if remaining == 0 {
        return vec![vec![]];
    }
    recurse(remaining, &sizes, &mut current, &mut results);
    results
}

/// Harmonic capacity `Σ 1/y` of a set of groups on one node.
fn node_capacity(
    groups: &[Vec<(GpuId, f64)>],
    coeffs: &ProfiledCoefficients,
    micro_batch_size: u64,
) -> f64 {
    groups
        .iter()
        .map(|g| {
            let max_rate = g.iter().map(|(_, r)| *r).fold(1.0_f64, f64::max);
            let y = coeffs.group_rate(g.len() as u32, max_rate, micro_batch_size);
            if y.is_finite() && y > 0.0 {
                1.0 / y
            } else {
                0.0
            }
        })
        .sum()
}

/// Group one node's GPUs for a maximum TP degree `max_tp`, optionally applying
/// heavy-straggler splitting.
fn group_node(
    gpus: &[(GpuId, f64)],
    max_tp: u32,
    coeffs: &ProfiledCoefficients,
    micro_batch_size: u64,
    straggler_threshold: f64,
    enable_splitting: bool,
) -> Vec<TpGroup> {
    let mut sorted: Vec<(GpuId, f64)> = gpus.to_vec();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    // Theorem 1: even partition into groups of size max_tp (node sizes are
    // powers of two in practice; trailing GPUs that do not fill a group become
    // singleton groups so no device is silently dropped).
    let k = max_tp.min(sorted.len() as u32).max(1);
    let mut groups: Vec<Vec<(GpuId, f64)>> =
        sorted.chunks(k as usize).map(|c| c.to_vec()).collect();

    if enable_splitting && k > 1 {
        // Visit straggling GPUs in descending rate order.
        let mut stragglers: Vec<(GpuId, f64)> = sorted
            .iter()
            .copied()
            .filter(|(_, r)| *r > straggler_threshold)
            .collect();
        stragglers.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (gpu, _) in stragglers {
            // Locate the group currently holding this straggler.
            let Some(gidx) = groups
                .iter()
                .position(|g| g.iter().any(|(id, _)| *id == gpu))
            else {
                continue;
            };
            if groups[gidx].len() <= 1 {
                continue; // already isolated
            }
            let current_capacity = node_capacity(&groups, coeffs, micro_batch_size);
            // Candidate: isolate the straggler, re-partition the rest of its
            // group into consecutive power-of-two runs.
            let mut rest: Vec<(GpuId, f64)> = groups[gidx]
                .iter()
                .copied()
                .filter(|(id, _)| *id != gpu)
                .collect();
            rest.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut best: Option<(f64, RatedGroups)> = None;
            for composition in power_of_two_compositions(rest.len(), max_tp) {
                let mut candidate_groups: Vec<Vec<(GpuId, f64)>> = Vec::new();
                let mut offset = 0usize;
                for size in composition {
                    candidate_groups.push(rest[offset..offset + size].to_vec());
                    offset += size;
                }
                candidate_groups.push(vec![(gpu, f64::NAN)]); // rate re-read below
                                                              // Rebuild the straggler entry with its true rate.
                let rate = gpus
                    .iter()
                    .find(|(id, _)| *id == gpu)
                    .map(|(_, r)| *r)
                    .unwrap_or(1.0);
                *candidate_groups.last_mut().unwrap() = vec![(gpu, rate)];
                // Assemble the full node grouping with this candidate replacing
                // the original group.
                let mut full: Vec<Vec<(GpuId, f64)>> = groups
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != gidx)
                    .map(|(_, g)| g.clone())
                    .collect();
                full.extend(candidate_groups);
                let cap = node_capacity(&full, coeffs, micro_batch_size);
                if best.as_ref().map(|(c, _)| cap > *c + 1e-15).unwrap_or(true) {
                    best = Some((cap, full));
                }
            }
            if let Some((cap, full)) = best {
                if cap > current_capacity + 1e-15 {
                    groups = full;
                }
            }
        }
    }

    groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| TpGroup::new(g.into_iter().map(|(id, _)| id).collect()))
        .collect()
}

/// Group the whole cluster for one candidate maximum TP degree.
///
/// GPUs with infinite rates (failures) are excluded entirely.
pub fn group_cluster(
    snapshot: &ClusterSnapshot,
    coeffs: &ProfiledCoefficients,
    max_tp: u32,
    micro_batch_size: u64,
    straggler_threshold: f64,
    enable_splitting: bool,
) -> GroupingResult {
    let mut groups = Vec::new();
    for node in 0..snapshot.num_nodes as u32 {
        let gpus: Vec<(GpuId, f64)> = snapshot
            .gpus_on_node(node)
            .into_iter()
            .map(|g| (g, snapshot.rate(g)))
            .filter(|(_, r)| r.is_finite())
            .collect();
        if gpus.is_empty() {
            continue;
        }
        groups.extend(group_node(
            &gpus,
            max_tp,
            coeffs,
            micro_batch_size,
            straggler_threshold,
            enable_splitting,
        ));
    }
    GroupingResult { max_tp, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::Cluster;
    use malleus_model::{HardwareParams, ModelSpec};

    fn coeffs() -> ProfiledCoefficients {
        ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster())
    }

    #[test]
    fn even_partition_groups_similar_gpus_together() {
        // Theorem 1: sort desc and chunk.
        let gpus: Vec<(GpuId, f64)> = vec![
            (GpuId(0), 1.0),
            (GpuId(1), 5.42),
            (GpuId(2), 1.0),
            (GpuId(3), 2.57),
        ];
        let mut sorted = gpus.clone();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
        let groups = even_partition(&sorted, 2);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].gpus, vec![GpuId(1), GpuId(3)]);
        assert_eq!(groups[1].gpus, vec![GpuId(0), GpuId(2)]);
    }

    #[test]
    fn compositions_of_seven_into_1_2_4_contains_six_orderings() {
        // Appendix B.7: splitting one straggler out of an 8-GPU group leaves 7
        // GPUs; the size multiset {4,2,1} alone yields 6 orderings.
        let comps = power_of_two_compositions(7, 8);
        let with_multiset_421 = comps
            .iter()
            .filter(|c| {
                let mut s = (*c).clone();
                s.sort_unstable();
                s == vec![1, 2, 4]
            })
            .count();
        assert_eq!(with_multiset_421, 6);
        // All compositions sum to 7.
        assert!(comps.iter().all(|c| c.iter().sum::<usize>() == 7));
    }

    #[test]
    fn healthy_node_stays_evenly_grouped() {
        let cluster = Cluster::homogeneous(1, 8);
        let result = group_cluster(&cluster.snapshot(), &coeffs(), 8, 1, 1.05, true);
        assert_eq!(result.groups.len(), 1);
        assert_eq!(result.groups[0].tp_degree(), 8);
    }

    #[test]
    fn heavy_straggler_is_isolated() {
        let mut cluster = Cluster::homogeneous(1, 8);
        cluster.set_rate(GpuId(3), 12.53);
        let result = group_cluster(&cluster.snapshot(), &coeffs(), 8, 1, 1.05, true);
        // The straggler should sit alone in a TP-1 group.
        let iso = result
            .groups
            .iter()
            .find(|g| g.gpus.contains(&GpuId(3)))
            .unwrap();
        assert_eq!(iso.tp_degree(), 1, "groups: {:?}", result.groups);
        // The other 7 GPUs are re-grouped into power-of-two sizes.
        let sizes: Vec<u32> = result
            .groups
            .iter()
            .filter(|g| !g.gpus.contains(&GpuId(3)))
            .map(|g| g.tp_degree())
            .collect();
        assert_eq!(sizes.iter().sum::<u32>(), 7);
        assert!(sizes.iter().all(|s| [1, 2, 4, 8].contains(s)));
    }

    #[test]
    fn splitting_can_be_disabled() {
        let mut cluster = Cluster::homogeneous(1, 8);
        cluster.set_rate(GpuId(3), 12.53);
        let result = group_cluster(&cluster.snapshot(), &coeffs(), 8, 1, 1.05, false);
        assert_eq!(result.groups.len(), 1);
        assert_eq!(result.groups[0].tp_degree(), 8);
    }

    #[test]
    fn mild_stragglers_are_not_split_out_of_small_groups() {
        // With TP=2 and a mild straggler, isolating it cannot improve the
        // harmonic capacity enough to be worthwhile in every case; whatever the
        // decision, the total GPU count must be preserved.
        let mut cluster = Cluster::homogeneous(1, 8);
        cluster.set_rate(GpuId(0), 1.3);
        let result = group_cluster(&cluster.snapshot(), &coeffs(), 2, 1, 1.05, true);
        let total: u32 = result.groups.iter().map(|g| g.tp_degree()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn failed_gpus_are_excluded() {
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(0), f64::INFINITY);
        let result = group_cluster(&cluster.snapshot(), &coeffs(), 8, 1, 1.05, true);
        let all: Vec<GpuId> = result.groups.iter().flat_map(|g| g.gpus.clone()).collect();
        assert!(!all.contains(&GpuId(0)));
        assert_eq!(all.len(), 15);
    }

    #[test]
    fn group_rates_use_rho_and_max_rate() {
        let mut cluster = Cluster::homogeneous(1, 8);
        cluster.set_rate(GpuId(2), 3.75);
        let c = coeffs();
        let result = group_cluster(&cluster.snapshot(), &c, 8, 1, 1.05, false);
        let rates = result.group_rates(&cluster.snapshot(), &c, 1);
        assert_eq!(rates.len(), 1);
        assert!((rates[0] - c.rho(8, 1) * 3.75).abs() < 1e-12);
    }

    #[test]
    fn per_node_grouping_never_crosses_nodes() {
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(1), 5.42);
        cluster.set_rate(GpuId(9), 2.57);
        let snapshot = cluster.snapshot();
        let result = group_cluster(&snapshot, &coeffs(), 4, 1, 1.05, true);
        for g in &result.groups {
            let nodes: std::collections::HashSet<u32> =
                g.gpus.iter().map(|id| snapshot.node_of(*id)).collect();
            assert_eq!(nodes.len(), 1, "group spans nodes: {:?}", g.gpus);
        }
    }
}
