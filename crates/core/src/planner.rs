//! The end-to-end parallelization planner (§4.3.3).
//!
//! For every candidate maximum TP degree in {1, 2, 4, 8} the planner produces a
//! grouping result, orchestrates pipelines for each candidate DP degree, and
//! solves the lower-level work assignment for each candidate micro-batch size.
//! The best plan under the cost model wins.  A per-phase timing breakdown is
//! recorded so the planning-scalability experiment (Appendix A.2, Table 5) can
//! be reproduced.
//!
//! Candidate (max-TP, DP, micro-batch, division-mode) tuples are independent,
//! so the planner fans them across worker threads according to
//! [`PlannerConfig::parallelism`] (see [`crate::parallel`]).  The reduction is
//! performed in lattice-enumeration order with the serial comparison rule, so
//! the chosen plan is bit-identical to the `Parallelism::Fixed(1)` reference
//! path regardless of thread scheduling.

use crate::assignment::assign_data;
use crate::cost::CostModel;
use crate::delta::{CandidateInputs, CandidateMemo, LatticeEntry, ScoredLattice};
use crate::error::PlanError;
use crate::grouping::GroupingResult;
use crate::orchestration::{divide_groups, order_and_assign_layers};
use crate::parallel::{fan_out, GroupingCache, Parallelism};
use crate::plan::{ParallelizationPlan, PipelinePlan, TpGroup};
use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Planner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Global batch size `B` (sequences per step).
    pub global_batch_size: u64,
    /// Candidate maximum tensor-parallel degrees (the paper enumerates
    /// {1, 2, 4, 8}).
    pub candidate_tp_degrees: Vec<u32>,
    /// Candidate micro-batch sizes `b`; only divisors of `B` are used.
    pub candidate_micro_batch_sizes: Vec<u64>,
    /// Candidate data-parallel degrees.  `None` derives powers of two up to the
    /// number of groups.
    pub candidate_dp: Option<Vec<usize>>,
    /// Fix the DP degree (used during re-planning: the paper maintains the DP
    /// degree across plan adjustments, footnote 2).
    pub fixed_dp: Option<usize>,
    /// Rate above which a GPU counts as a straggler for group splitting.
    pub straggler_threshold: f64,
    /// Enable heavy-straggler group splitting (non-uniform device partitioning).
    pub enable_group_splitting: bool,
    /// Enable non-uniform layer partitioning (Eq. (2)); disabled = even split.
    pub nonuniform_layers: bool,
    /// Enable non-uniform data partitioning (Eq. (3)); disabled = even split.
    pub nonuniform_data: bool,
    /// Enable non-uniform stage partitioning (Eq. (4) pipeline division);
    /// disabled = equal group counts per pipeline.
    pub nonuniform_stages: bool,
    /// Worker count for the candidate-lattice fan-out (`Auto` = one worker per
    /// core, `Fixed(1)` = the serial reference path).  The chosen plan is
    /// independent of this knob — see [`crate::parallel`].
    pub parallelism: Parallelism,
    /// Enable warm-start delta replanning (see [`crate::delta`]): planning
    /// invocations persist their scored candidate lattice in
    /// [`PlanOutcome::lattice`] and memoize candidate evaluations, and
    /// [`Planner::replan_delta`] reuses memoized evaluations on drift-only
    /// events.  Like `parallelism` this is *execution policy*: memo hits are
    /// confirmed bitwise against the full candidate inputs, so the chosen
    /// plan is independent of this knob.  [`Planner::plan`] and
    /// [`Planner::replan`] never *read* the memo regardless — full
    /// enumeration stays the equivalence oracle.
    pub incremental: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            global_batch_size: 64,
            candidate_tp_degrees: vec![1, 2, 4, 8],
            candidate_micro_batch_sizes: vec![1, 2, 4],
            candidate_dp: None,
            fixed_dp: None,
            straggler_threshold: 1.05,
            enable_group_splitting: true,
            nonuniform_layers: true,
            nonuniform_data: true,
            nonuniform_stages: true,
            parallelism: Parallelism::Auto,
            incremental: true,
        }
    }
}

impl PlannerConfig {
    /// Configuration for the Figure 9 ablation: selectively disable the
    /// non-uniform partitioning dimensions.
    pub fn ablation(layers: bool, data: bool, device: bool, stages: bool) -> Self {
        Self {
            nonuniform_layers: layers,
            nonuniform_data: data,
            enable_group_splitting: device,
            nonuniform_stages: stages,
            ..Self::default()
        }
    }
}

/// Per-phase breakdown of one planning invocation (Appendix A.2, Table 5).
///
/// Durations are summed over every candidate evaluation, i.e. aggregate
/// compute time per phase.  With one worker this equals elapsed wall-clock;
/// with a parallel fan-out it exceeds it (measure elapsed time around
/// `Planner::plan` when wall-clock matters, as the overlapped replanner and
/// `exp_planning_scalability` do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlanTiming {
    /// GPU grouping (Theorem 1 + splitting enumeration).
    pub grouping: Duration,
    /// Pipeline division (the Eq. (4) MINLP).
    pub division: Duration,
    /// Group ordering (Theorem 3 + bundle permutations, each evaluated through
    /// the layer ILP).
    pub ordering: Duration,
    /// Final work assignment (layer + data ILPs for the winning candidate).
    pub assignment: Duration,
}

impl PlanTiming {
    /// Total planning time.
    pub fn total(&self) -> Duration {
        self.grouping + self.division + self.ordering + self.assignment
    }
}

/// The result of a planning invocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanOutcome {
    /// The selected parallelization plan.
    pub plan: ParallelizationPlan,
    /// Estimated step time under the exact 1F1B cost model (seconds).
    pub estimated_step_time: f64,
    /// Estimated step time under the simplified cost model used by the ILPs
    /// (this is what `R_est` in Table 3 reports).
    pub estimated_step_time_simplified: f64,
    /// The maximum TP degree of the winning grouping result.
    pub chosen_tp: u32,
    /// The data-parallel degree of the plan.
    pub dp: usize,
    /// Per-phase planning time.
    pub timing: PlanTiming,
    /// The scored candidate lattice this outcome was selected from, persisted
    /// for warm-start delta replanning (populated when
    /// [`PlannerConfig::incremental`] is on).
    pub lattice: Option<Arc<ScoredLattice>>,
}

impl PartialEq for PlanOutcome {
    /// Equality over the planning *result*; the attached lattice is advisory
    /// warm-start state (its reuse statistics depend on memo history, not on
    /// what was planned) and is excluded.
    fn eq(&self, other: &Self) -> bool {
        // Bitwise float comparison (ML003): outcome equality backs the
        // byte-identity oracle checks, where `==` would declare +0.0 == -0.0
        // equal and NaN unequal to itself — both wrong for "same bytes".
        self.plan == other.plan
            && self.estimated_step_time.to_bits() == other.estimated_step_time.to_bits()
            && self.estimated_step_time_simplified.to_bits()
                == other.estimated_step_time_simplified.to_bits()
            && self.chosen_tp == other.chosen_tp
            && self.dp == other.dp
            && self.timing == other.timing
    }
}

/// One point of the candidate lattice: a (grouping, DP, micro-batch,
/// division-mode) tuple evaluated independently of every other point.
#[derive(Debug, Clone)]
struct Candidate {
    /// Grouping result for this candidate's maximum TP degree (shared
    /// read-only across all candidates of the same degree).
    grouping: Arc<GroupingResult>,
    /// Index of `max_tp` in the configured TP-degree list (used to share the
    /// per-grouping rate-bit vectors across candidates of one degree).
    tp_idx: usize,
    /// The maximum TP degree the grouping was produced for.
    max_tp: u32,
    /// Data-parallel degree.
    dp: usize,
    /// Micro-batch size.
    micro_batch: u64,
    /// Whether the Eq. (4) MINLP division is used (vs equal group counts).
    nonuniform_division: bool,
}

/// Result of evaluating one candidate: a feasible outcome or a failure reason,
/// plus this candidate's share of the per-phase timing breakdown.
struct CandidateEval {
    outcome: Option<PlanOutcome>,
    failure: Option<String>,
    timing: PlanTiming,
}

/// The Malleus parallelization planner.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Cost model (profiled coefficients).
    pub cost: CostModel,
    /// Configuration.
    pub config: PlannerConfig,
    /// Memoized grouping results, shared read-only across candidate workers
    /// and across re-planning rounds on unchanged snapshots.
    grouping_memo: GroupingCache,
    /// Memoized candidate evaluations for warm-start delta replanning (see
    /// [`crate::delta`]); populated when [`PlannerConfig::incremental`] is
    /// on, consulted only by [`Planner::replan_delta`].
    candidate_memo: CandidateMemo,
}

impl Planner {
    /// Create a planner from profiled coefficients and a configuration.
    pub fn new(coeffs: ProfiledCoefficients, config: PlannerConfig) -> Self {
        Self {
            cost: CostModel::new(coeffs),
            config,
            grouping_memo: GroupingCache::default(),
            candidate_memo: CandidateMemo::default(),
        }
    }

    /// Builder-style override of the parallelism knob (used by benches and the
    /// equivalence test-suite to pin the worker count).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Builder-style injection of a shared grouping memo.  Cloning a
    /// [`GroupingCache`] shares its storage, so planners built for different
    /// tenants (e.g. by the planning service) can pool their grouping work;
    /// the memo confirms hits against the full snapshot *and* coefficients,
    /// so sharing across models degrades to recomputation, never wrong
    /// results.
    pub fn with_grouping_cache(mut self, cache: GroupingCache) -> Self {
        self.grouping_memo = cache;
        self
    }

    /// The shared grouping memo (diagnostics / tests).
    pub fn grouping_cache(&self) -> &GroupingCache {
        &self.grouping_memo
    }

    /// Builder-style injection of a shared candidate-evaluation memo (same
    /// sharing discipline as [`Planner::with_grouping_cache`]: cloning a
    /// [`CandidateMemo`] shares its storage, and hits are confirmed against
    /// the full candidate inputs, so sharing degrades to recomputation, never
    /// wrong results).
    pub fn with_candidate_memo(mut self, memo: CandidateMemo) -> Self {
        self.candidate_memo = memo;
        self
    }

    /// The shared candidate-evaluation memo (diagnostics / tests).
    pub fn candidate_memo(&self) -> &CandidateMemo {
        &self.candidate_memo
    }

    /// Deduce the best parallelization plan for the observed straggler
    /// situation.
    pub fn plan(&self, snapshot: &ClusterSnapshot) -> Result<PlanOutcome, PlanError> {
        self.plan_with_dp(snapshot, self.config.fixed_dp)
    }

    /// Re-planning entry point: keep the DP degree of the previous plan (the
    /// memory footprint of ZeRO-1 sharding depends on DP, so the paper keeps it
    /// fixed across adjustments).  If no feasible plan exists with that DP
    /// degree — e.g. a severe straggler situation shrinks the usable groups —
    /// fall back to an unconstrained search (footnote 2 of the paper notes that
    /// enumerating other DP degrees is equally possible).
    pub fn replan(
        &self,
        snapshot: &ClusterSnapshot,
        previous: &ParallelizationPlan,
    ) -> Result<PlanOutcome, PlanError> {
        match self.plan_with_dp(snapshot, Some(previous.dp())) {
            Ok(outcome) => Ok(outcome),
            Err(_) => self.plan_with_dp(snapshot, self.config.fixed_dp),
        }
    }

    /// Warm-start (delta) re-planning: when the diff between `snapshot` and
    /// the previous outcome's planning basis is drift-only — same topology,
    /// same availability pattern — candidate evaluations whose cost inputs
    /// are unchanged are served from the candidate memo instead of being
    /// recomputed, and only candidates whose cost terms touch the changed
    /// devices are re-evaluated.  Falls back to full enumeration when the
    /// diff is structural (node loss / node join), when the previous outcome
    /// carries no lattice, or when [`PlannerConfig::incremental`] is off.
    ///
    /// Memo hits are confirmed bitwise against the full candidate inputs, so
    /// the result is byte-identical to [`Planner::replan`] on the same
    /// snapshot regardless of which path is taken.
    pub fn replan_delta(
        &self,
        snapshot: &ClusterSnapshot,
        previous: &PlanOutcome,
    ) -> Result<PlanOutcome, PlanError> {
        let drift_only = self.config.incremental
            && previous
                .lattice
                .as_ref()
                .is_some_and(|lattice| !lattice.structural_change(snapshot));
        if !drift_only {
            return self.replan(snapshot, &previous.plan);
        }
        match self.plan_with_dp_memo(snapshot, Some(previous.plan.dp()), true) {
            Ok(outcome) => Ok(outcome),
            Err(_) => self.plan_with_dp_memo(snapshot, self.config.fixed_dp, true),
        }
    }

    fn dp_candidates(
        &self,
        forced_dp: Option<usize>,
        num_groups: usize,
        healthy_gpus: usize,
    ) -> Vec<usize> {
        if let Some(dp) = forced_dp {
            return vec![dp];
        }
        if let Some(c) = &self.config.candidate_dp {
            return c.clone();
        }
        self.derived_dp_candidates(num_groups, healthy_gpus)
    }

    /// Derive the default candidate DP degrees: powers of two bounded by the
    /// snapshot's *healthy* group count (and by the global batch), excluding
    /// degrees that are certainly memory-infeasible on the surviving GPUs.
    ///
    /// Every DP replica must hold the full model states — at least
    /// `total_params · (param_and_grad_bytes + optimizer_bytes / dp)` bytes
    /// under ZeRO-1 sharding — and the `dp` replicas together can use at most
    /// `healthy_gpus · per_gpu_capacity` bytes.  A degree violating that bound
    /// cannot produce any plan passing [`CostModel::memory_feasible`], so a
    /// degraded cluster (failed GPUs or nodes) no longer wastes planning time
    /// enumerating DP degrees its healthy remainder can never host.
    pub fn derived_dp_candidates(&self, num_groups: usize, healthy_gpus: usize) -> Vec<usize> {
        let memory = &self.cost.coeffs.memory;
        let total_params = self.cost.coeffs.spec.total_params() as f64;
        let available = healthy_gpus as f64 * self.cost.coeffs.per_gpu_capacity();
        let mut dps = Vec::new();
        let mut dp = 1usize;
        while dp <= num_groups && (dp as u64) <= self.config.global_batch_size {
            let needed = total_params
                * (memory.param_and_grad_bytes_per_param * dp as f64
                    + memory.optimizer_bytes_per_param);
            if needed > available {
                // The bound grows with dp, so every larger degree is also
                // infeasible.
                break;
            }
            dps.push(dp);
            dp *= 2;
        }
        dps
    }

    /// Enumerate the candidate lattice in the serial reference order: TP
    /// degrees in config order, then DP degrees, micro-batch sizes and
    /// division modes.  The position in the returned vector is the candidate's
    /// lattice index, which the reduction uses as the deterministic tie-break.
    fn enumerate_candidates(
        &self,
        groupings: &[Arc<GroupingResult>],
        forced_dp: Option<usize>,
        healthy_gpus: usize,
        b_candidates: &[u64],
    ) -> Vec<Candidate> {
        let mut candidates = Vec::new();
        for (tp_idx, &max_tp) in self.config.candidate_tp_degrees.iter().enumerate() {
            let grouping = &groupings[tp_idx];
            if grouping.groups.is_empty() {
                continue;
            }
            for dp in self.dp_candidates(forced_dp, grouping.groups.len(), healthy_gpus) {
                if dp == 0 || dp > grouping.groups.len() {
                    continue;
                }
                for &b in b_candidates {
                    let total_micro_batches = self.config.global_batch_size / b;
                    if total_micro_batches < dp as u64 {
                        continue;
                    }
                    // When non-uniform stages are enabled the MINLP division is
                    // tried *in addition to* the uniform equal-count division,
                    // so enabling the extra freedom can never hurt.
                    let division_modes: &[bool] = if self.config.nonuniform_stages {
                        &[true, false]
                    } else {
                        &[false]
                    };
                    for &nonuniform_division in division_modes {
                        candidates.push(Candidate {
                            grouping: Arc::clone(grouping),
                            tp_idx,
                            max_tp,
                            dp,
                            micro_batch: b,
                            nonuniform_division,
                        });
                    }
                }
            }
        }
        candidates
    }

    /// Evaluate one lattice point: pipeline division, group ordering / layer
    /// assignment, data assignment, validation, and cost estimation.  Entirely
    /// self-contained — no shared mutable state — so candidates can run on any
    /// worker thread.
    fn evaluate_candidate(
        &self,
        snapshot: &ClusterSnapshot,
        cand: &Candidate,
        division_workers: usize,
    ) -> CandidateEval {
        let num_layers = self.cost.coeffs.spec.num_layers as u64;
        let (max_tp, dp, b) = (cand.max_tp, cand.dp, cand.micro_batch);
        let total_micro_batches = self.config.global_batch_size / b;
        let mut timing = PlanTiming::default();
        let failed = |failure: Option<String>, timing: PlanTiming| CandidateEval {
            outcome: None,
            failure,
            timing,
        };

        // malleus-lint: allow(ML004, reason = "wall-clock timing is observability-only; it feeds PlanTiming, never plan selection")
        let t0 = Instant::now();
        let division = match divide_groups(
            &self.cost,
            &cand.grouping,
            snapshot,
            dp,
            total_micro_batches,
            b,
            cand.nonuniform_division,
            division_workers,
        ) {
            Ok(d) => d,
            Err(e) => {
                timing.division += t0.elapsed();
                return failed(Some(e.to_string()), timing);
            }
        };
        timing.division += t0.elapsed();

        // malleus-lint: allow(ML004, reason = "wall-clock timing is observability-only; it feeds PlanTiming, never plan selection")
        let t0 = Instant::now();
        let mut assignments = Vec::with_capacity(dp);
        let mut feasible = true;
        for pipeline_groups in &division.pipelines {
            match order_and_assign_layers(
                &self.cost,
                pipeline_groups,
                snapshot,
                num_layers,
                b,
                dp as u32,
                !self.config.nonuniform_layers,
            ) {
                Some(a) => assignments.push(a),
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        timing.ordering += t0.elapsed();
        if !feasible {
            return failed(
                Some(format!(
                    "layer assignment infeasible for tp={max_tp} dp={dp} b={b}"
                )),
                timing,
            );
        }

        // malleus-lint: allow(ML004, reason = "wall-clock timing is observability-only; it feeds PlanTiming, never plan selection")
        let t0 = Instant::now();
        let objectives: Vec<f64> = assignments.iter().map(|a| a.objective).collect();
        let Some(micro_batches) = assign_data(
            &objectives,
            total_micro_batches,
            !self.config.nonuniform_data,
        ) else {
            timing.assignment += t0.elapsed();
            return failed(None, timing);
        };
        // A pipeline with zero micro-batches would idle an entire replica;
        // reject such degenerate splits.
        if micro_batches.contains(&0) {
            timing.assignment += t0.elapsed();
            return failed(
                Some(format!(
                    "data assignment starved a pipeline for tp={max_tp} dp={dp} b={b}"
                )),
                timing,
            );
        }
        timing.assignment += t0.elapsed();

        let pipelines: Vec<PipelinePlan> = assignments
            .iter()
            .zip(micro_batches.iter())
            .map(|(a, &m)| PipelinePlan {
                stages: a.stages.clone(),
                num_micro_batches: m,
            })
            .collect();

        let active: BTreeSet<GpuId> = pipelines.iter().flat_map(|p| p.gpus()).collect();
        let removed: Vec<GpuId> = (0..snapshot.num_gpus() as u32)
            .map(GpuId)
            .filter(|g| !active.contains(g))
            .collect();
        let plan = ParallelizationPlan {
            pipelines,
            micro_batch_size: b,
            removed_gpus: removed,
        };
        if plan
            .validate(num_layers as u32, self.config.global_batch_size)
            .is_err()
            || !self.cost.memory_feasible(&plan)
        {
            return failed(
                Some(format!(
                    "candidate plan failed validation for tp={max_tp} dp={dp} b={b}"
                )),
                timing,
            );
        }

        let exact = self.cost.step_time(&plan, snapshot);
        let simplified = self.cost.step_time_simplified(&plan, snapshot);
        CandidateEval {
            outcome: Some(PlanOutcome {
                plan,
                estimated_step_time: exact,
                estimated_step_time_simplified: simplified,
                chosen_tp: max_tp,
                dp,
                timing: PlanTiming::default(),
                lattice: None,
            }),
            failure: None,
            timing,
        }
    }

    fn plan_with_dp(
        &self,
        snapshot: &ClusterSnapshot,
        forced_dp: Option<usize>,
    ) -> Result<PlanOutcome, PlanError> {
        self.plan_with_dp_memo(snapshot, forced_dp, false)
    }

    /// The candidate inputs of one lattice point (the exact value set that
    /// determines its evaluation — see [`crate::delta`]).
    fn candidate_inputs<'a>(
        &'a self,
        snapshot: &ClusterSnapshot,
        cand: &'a Candidate,
        rate_bits: &'a [Arc<Vec<u64>>],
    ) -> CandidateInputs<'a> {
        CandidateInputs {
            coeffs: &self.cost.coeffs,
            global_batch_size: self.config.global_batch_size,
            nonuniform_layers: self.config.nonuniform_layers,
            nonuniform_data: self.config.nonuniform_data,
            num_gpus: snapshot.num_gpus(),
            grouping: &cand.grouping,
            group_rate_bits: &rate_bits[cand.tp_idx],
            dp: cand.dp,
            micro_batch: cand.micro_batch,
            nonuniform_division: cand.nonuniform_division,
        }
    }

    fn plan_with_dp_memo(
        &self,
        snapshot: &ClusterSnapshot,
        forced_dp: Option<usize>,
        consult_memo: bool,
    ) -> Result<PlanOutcome, PlanError> {
        let usable = snapshot.rates.iter().filter(|r| r.is_finite()).count();
        if usable == 0 {
            return Err(PlanError::NoUsableGpus);
        }
        let b_candidates: Vec<u64> = self
            .config
            .candidate_micro_batch_sizes
            .iter()
            .copied()
            .filter(|&b| b > 0 && self.config.global_batch_size.is_multiple_of(b))
            .collect();
        if b_candidates.is_empty() {
            return Err(PlanError::NoFeasiblePlan {
                reason: "no candidate micro-batch size divides the global batch".into(),
            });
        }

        let workers = self.config.parallelism.workers();
        let mut timing = PlanTiming::default();

        // Phase 1 — grouping: memoized per (snapshot, TP degree) and fanned
        // across workers; each grouping is pure, so the fan-out is
        // order-independent.
        let tp_degrees = &self.config.candidate_tp_degrees;
        let grouped: Vec<(Arc<GroupingResult>, Duration)> =
            fan_out(tp_degrees.len(), workers.min(tp_degrees.len()), |i| {
                // malleus-lint: allow(ML004, reason = "wall-clock timing is observability-only; it feeds PlanTiming, never plan selection")
                let t0 = Instant::now();
                let grouping = self.grouping_memo.get_or_compute(
                    snapshot,
                    &self.cost.coeffs,
                    tp_degrees[i],
                    self.config.straggler_threshold,
                    self.config.enable_group_splitting,
                );
                (grouping, t0.elapsed())
            });
        let groupings: Vec<Arc<GroupingResult>> =
            grouped.iter().map(|(g, _)| Arc::clone(g)).collect();
        for (_, elapsed) in &grouped {
            timing.grouping += *elapsed;
        }

        // Phase 2 — enumerate the lattice in the serial reference order.
        let candidates = self.enumerate_candidates(&groupings, forced_dp, usable, &b_candidates);

        // Per-grouping straggling-rate bit patterns: together with the group
        // membership these are the only way the snapshot enters a candidate
        // evaluation, so they anchor the memo's input fingerprints.  Shared
        // across all candidates of one TP degree.
        let memoize = self.config.incremental;
        let consult = consult_memo && memoize;
        let rate_bits: Vec<Arc<Vec<u64>>> = if memoize {
            groupings
                .iter()
                .map(|g| {
                    Arc::new(
                        g.groups
                            .iter()
                            .map(|group| group.max_rate(snapshot).to_bits())
                            .collect::<Vec<u64>>(),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };

        // Phase 3 — evaluate candidates across workers; `fan_out` returns the
        // results indexed by lattice position, never by completion order.
        // With the memo consulted, a candidate whose confirmed inputs are
        // unchanged since a previous invocation is served from the memo —
        // bitwise what a fresh evaluation would produce — and every fresh
        // evaluation is memoized for the next event.
        //
        // When the lattice is narrower than the worker budget, the leftover
        // threads go *inside* each candidate's division search (the dominant
        // cost).  Division results are worker-count-invariant, so this is
        // invisible to the memo and to the serial oracle.
        let division_workers = if candidates.is_empty() || candidates.len() >= workers {
            1
        } else {
            workers / candidates.len()
        };
        let evals: Vec<(CandidateEval, bool)> = fan_out(candidates.len(), workers, |i| {
            let cand = &candidates[i];
            if !memoize {
                return (
                    self.evaluate_candidate(snapshot, cand, division_workers),
                    false,
                );
            }
            let inputs = self.candidate_inputs(snapshot, cand, &rate_bits);
            let key = inputs.fingerprint();
            if consult {
                if let Some(hit) = self.candidate_memo.lookup(key, &inputs) {
                    return (
                        CandidateEval {
                            outcome: hit.outcome.clone(),
                            failure: hit.failure.clone(),
                            timing: PlanTiming::default(),
                        },
                        true,
                    );
                }
            }
            let eval = self.evaluate_candidate(snapshot, cand, division_workers);
            self.candidate_memo.insert(
                key,
                &inputs,
                Arc::clone(&cand.grouping),
                eval.outcome.clone(),
                eval.failure.clone(),
            );
            (eval, false)
        });

        // Phase 4 — deterministic reduction: fold in lattice order with the
        // serial comparison (strictly better by > 1e-12 s replaces the
        // incumbent), so ties resolve to the smallest lattice index and the
        // winner is independent of thread scheduling.
        let mut best: Option<PlanOutcome> = None;
        let mut last_failure = String::from("no candidate configuration was feasible");
        let mut entries = Vec::with_capacity(candidates.len());
        let mut reused_count = 0usize;
        for (cand, (eval, reused)) in candidates.iter().zip(evals) {
            timing.division += eval.timing.division;
            timing.ordering += eval.timing.ordering;
            timing.assignment += eval.timing.assignment;
            reused_count += reused as usize;
            if memoize {
                entries.push(LatticeEntry {
                    max_tp: cand.max_tp,
                    dp: cand.dp,
                    micro_batch: cand.micro_batch,
                    nonuniform_division: cand.nonuniform_division,
                    estimated_step_time: eval.outcome.as_ref().map(|o| o.estimated_step_time),
                    reused,
                });
            }
            if let Some(reason) = eval.failure {
                last_failure = reason;
            }
            if let Some(outcome) = eval.outcome {
                if best
                    .as_ref()
                    .map(|o| outcome.estimated_step_time < o.estimated_step_time - 1e-12)
                    .unwrap_or(true)
                {
                    best = Some(outcome);
                }
            }
        }

        match best {
            Some(mut outcome) => {
                outcome.timing = timing;
                if memoize {
                    let evaluated = entries.len() - reused_count;
                    outcome.lattice = Some(Arc::new(ScoredLattice {
                        snapshot: snapshot.clone(),
                        forced_dp,
                        entries,
                        reused: reused_count,
                        evaluated,
                        delta: consult,
                    }));
                }
                Ok(outcome)
            }
            None => Err(PlanError::NoFeasiblePlan {
                reason: last_failure,
            }),
        }
    }
}

/// Convenience: collect the GPUs of a list of groups (used by callers that
/// track standby devices explicitly).
pub fn gpus_of_groups(groups: &[TpGroup]) -> Vec<GpuId> {
    groups.iter().flat_map(|g| g.gpus.iter().copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, PaperSituation};
    use malleus_model::{HardwareParams, ModelSpec};

    fn planner(spec: ModelSpec, batch: u64) -> Planner {
        let coeffs = ProfiledCoefficients::derive(spec, HardwareParams::a800_cluster());
        Planner::new(
            coeffs,
            PlannerConfig {
                global_batch_size: batch,
                ..PlannerConfig::default()
            },
        )
    }

    /// Regression for an ML003 finding: `PlanOutcome::eq` compared its step
    /// times with float `==`, which is the wrong relation for byte-identity
    /// oracles — `+0.0 == -0.0` holds despite different bytes, and
    /// `NaN != NaN` despite identical bytes.  Equality must be bitwise.
    #[test]
    fn outcome_equality_is_bitwise_over_step_times() {
        let cluster = Cluster::homogeneous(2, 8);
        let p = planner(ModelSpec::llama2_32b(), 64);
        let outcome = p.plan(&cluster.snapshot()).expect("plan");

        let mut nan_a = outcome.clone();
        nan_a.estimated_step_time = f64::NAN;
        let nan_b = nan_a.clone();
        assert_eq!(nan_a, nan_b, "bit-identical NaN outcomes must be equal");

        let mut pos_zero = outcome.clone();
        pos_zero.estimated_step_time = 0.0;
        let mut neg_zero = pos_zero.clone();
        neg_zero.estimated_step_time = -0.0;
        assert_ne!(
            pos_zero, neg_zero,
            "+0.0 and -0.0 encode differently and must not compare equal"
        );
    }

    #[test]
    fn healthy_cluster_produces_megatron_like_plan() {
        // 32 GPUs, 32B model: the planner should find a uniform 3D-parallel plan
        // (equal stages, equal layers, equal data) because no stragglers exist.
        let cluster = Cluster::homogeneous(4, 8);
        let p = planner(ModelSpec::llama2_32b(), 64);
        let outcome = p.plan(&cluster.snapshot()).expect("plan");
        let plan = &outcome.plan;
        plan.validate(60, 64).unwrap();
        // Uniform data split.
        let m: Vec<u64> = plan.pipelines.iter().map(|p| p.num_micro_batches).collect();
        assert!(
            m.iter().all(|&x| x == m[0]),
            "data should be uniform: {m:?}"
        );
        // Uniform stage shape.
        let pps: Vec<usize> = plan.pipelines.iter().map(|p| p.pp()).collect();
        assert!(pps.iter().all(|&x| x == pps[0]));
        assert!(plan.removed_gpus.is_empty());
    }

    #[test]
    fn straggler_receives_less_work() {
        let mut cluster = Cluster::homogeneous(4, 8);
        let sit = PaperSituation::S2.situation(&cluster);
        cluster.apply_situation(&sit.rates);
        let p = planner(ModelSpec::llama2_32b(), 64);
        let outcome = p.plan(&cluster.snapshot()).expect("plan");
        let plan = &outcome.plan;
        plan.validate(60, 64).unwrap();
        // The straggling GPU (gpu 0, x=5.42) either sits in a stage with fewer
        // layers than its peers, or was removed entirely.
        let straggler = GpuId(0);
        let holds = plan.pipelines.iter().find_map(|pl| {
            pl.stages
                .iter()
                .find(|s| s.group.gpus.contains(&straggler))
                .map(|s| (s.layers, pl))
        });
        match holds {
            None => assert!(plan.removed_gpus.contains(&straggler)),
            Some((layers, pipeline)) => {
                let max_layers = pipeline.stages.iter().map(|s| s.layers).max().unwrap();
                assert!(
                    layers < max_layers
                        || pipeline.num_micro_batches
                            < plan
                                .pipelines
                                .iter()
                                .map(|p| p.num_micro_batches)
                                .max()
                                .unwrap(),
                    "straggler must get fewer layers or its pipeline fewer micro-batches"
                );
            }
        }
    }

    #[test]
    fn straggled_plan_is_faster_than_uniform_plan() {
        let mut cluster = Cluster::homogeneous(4, 8);
        let sit = PaperSituation::S4.situation(&cluster);
        cluster.apply_situation(&sit.rates);
        let snapshot = cluster.snapshot();
        let p = planner(ModelSpec::llama2_32b(), 64);
        let outcome = p.plan(&snapshot).expect("plan");
        // Compare against the uniform Megatron-style plan evaluated under the
        // same cost model.
        let gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
        let uniform = ParallelizationPlan::uniform(&gpus, 2, 4, 4, 60, 64, 1).unwrap();
        let uniform_time = p.cost.step_time(&uniform, &snapshot);
        assert!(
            outcome.estimated_step_time < uniform_time * 0.75,
            "malleus {} vs uniform {}",
            outcome.estimated_step_time,
            uniform_time
        );
    }

    #[test]
    fn replan_keeps_dp_degree() {
        let mut cluster = Cluster::homogeneous(4, 8);
        let p = planner(ModelSpec::llama2_32b(), 64);
        let initial = p.plan(&cluster.snapshot()).expect("initial plan");
        let sit = PaperSituation::S1.situation(&cluster);
        cluster.apply_situation(&sit.rates);
        let replanned = p
            .replan(&cluster.snapshot(), &initial.plan)
            .expect("replan");
        assert_eq!(replanned.dp, initial.plan.dp());
    }

    #[test]
    fn failed_gpu_is_excluded_from_plan() {
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(5), f64::INFINITY);
        let p = planner(ModelSpec::llama2_32b(), 64);
        let outcome = p.plan(&cluster.snapshot()).expect("plan");
        assert!(!outcome.plan.active_gpus().contains(&GpuId(5)));
        assert!(outcome.plan.removed_gpus.contains(&GpuId(5)));
    }

    #[test]
    fn timing_breakdown_is_populated() {
        let cluster = Cluster::homogeneous(2, 8);
        let p = planner(ModelSpec::llama2_13b(), 64);
        let outcome = p.plan(&cluster.snapshot()).expect("plan");
        assert!(outcome.timing.total() > Duration::ZERO);
    }

    #[test]
    fn no_usable_gpus_is_an_error() {
        let mut cluster = Cluster::homogeneous(1, 2);
        cluster.set_rate(GpuId(0), f64::INFINITY);
        cluster.set_rate(GpuId(1), f64::INFINITY);
        let p = planner(ModelSpec::llama2_7b(), 8);
        assert!(matches!(
            p.plan(&cluster.snapshot()),
            Err(PlanError::NoUsableGpus)
        ));
    }

    #[test]
    fn parallel_plan_is_bit_identical_to_serial_oracle() {
        let mut cluster = Cluster::homogeneous(4, 8);
        let sit = PaperSituation::S3.situation(&cluster);
        cluster.apply_situation(&sit.rates);
        let snapshot = cluster.snapshot();
        let serial = planner(ModelSpec::llama2_32b(), 64).with_parallelism(Parallelism::Fixed(1));
        let parallel = planner(ModelSpec::llama2_32b(), 64).with_parallelism(Parallelism::Fixed(4));
        let a = serial.plan(&snapshot).expect("serial plan");
        let b = parallel.plan(&snapshot).expect("parallel plan");
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.chosen_tp, b.chosen_tp);
        assert_eq!(a.dp, b.dp);
        assert_eq!(
            a.estimated_step_time.to_bits(),
            b.estimated_step_time.to_bits()
        );
        assert_eq!(
            a.estimated_step_time_simplified.to_bits(),
            b.estimated_step_time_simplified.to_bits()
        );
    }

    #[test]
    fn more_workers_than_candidates_is_harmless() {
        let cluster = Cluster::homogeneous(1, 8);
        let p = planner(ModelSpec::llama2_7b(), 8).with_parallelism(Parallelism::Fixed(64));
        let outcome = p.plan(&cluster.snapshot()).expect("plan");
        outcome.plan.validate(32, 8).unwrap();
    }

    #[test]
    fn grouping_memo_is_reused_across_plan_calls() {
        let cluster = Cluster::homogeneous(2, 8);
        let p = planner(ModelSpec::llama2_13b(), 64);
        let first = p.plan(&cluster.snapshot()).expect("plan");
        let entries = p.grouping_cache().len();
        assert!(entries > 0);
        let second = p.plan(&cluster.snapshot()).expect("plan");
        // Same snapshot: no new entries, identical plan.
        assert_eq!(p.grouping_cache().len(), entries);
        assert_eq!(first.plan, second.plan);
    }

    #[test]
    fn degraded_cluster_prunes_infeasible_dp_degrees() {
        // Regression test for the default DP derivation: with one of four
        // nodes failed, 24 healthy GPUs cannot hold 16 replicas of the 32B
        // model states (ZeRO-1 needs ~(4·16+12)·P bytes in total), so dp=16
        // must not be enumerated even though the TP-1 grouping offers 24
        // groups.  On the healthy cluster the same degree stays available.
        let p = planner(ModelSpec::llama2_32b(), 64);
        let healthy = p.derived_dp_candidates(32, 32);
        assert!(healthy.contains(&16), "healthy candidates: {healthy:?}");
        let degraded = p.derived_dp_candidates(24, 24);
        assert!(!degraded.contains(&16), "degraded candidates: {degraded:?}");
        assert!(degraded.contains(&8));
        // End-to-end: the degraded cluster still plans fine.
        let mut cluster = Cluster::homogeneous(4, 8);
        for g in 24..32 {
            cluster.set_rate(GpuId(g), f64::INFINITY);
        }
        let outcome = p.plan(&cluster.snapshot()).expect("plan");
        assert!(outcome.dp <= 8);
        assert_eq!(
            outcome.plan.active_gpus().len() + outcome.plan.removed_gpus.len(),
            32
        );
    }

    fn assert_bitwise_equal(a: &PlanOutcome, b: &PlanOutcome) {
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.chosen_tp, b.chosen_tp);
        assert_eq!(a.dp, b.dp);
        assert_eq!(
            a.estimated_step_time.to_bits(),
            b.estimated_step_time.to_bits()
        );
        assert_eq!(
            a.estimated_step_time_simplified.to_bits(),
            b.estimated_step_time_simplified.to_bits()
        );
    }

    #[test]
    fn delta_replan_is_byte_identical_to_full_enumeration() {
        let cluster = Cluster::homogeneous(4, 8);
        let delta = planner(ModelSpec::llama2_32b(), 64);
        let initial = delta.plan(&cluster.snapshot()).expect("initial plan");
        let lattice = initial.lattice.as_ref().expect("lattice persisted");
        assert!(!lattice.delta, "initial plan is full enumeration");
        assert!(!delta.candidate_memo().is_empty(), "memo populated");

        // Novel drift: byte-identical to a fresh full-enumeration replan.
        let drifted = cluster.snapshot().with_rate(GpuId(3), 2.57);
        let warm = delta
            .replan_delta(&drifted, &initial)
            .expect("delta replan");
        let oracle = planner(ModelSpec::llama2_32b(), 64)
            .with_parallelism(Parallelism::Fixed(1))
            .replan(&drifted, &initial.plan)
            .expect("oracle replan");
        assert_bitwise_equal(&warm, &oracle);
        assert!(warm.lattice.as_ref().unwrap().delta, "memo was consulted");

        // Recurrent state: the straggler recovers to the exact rates the
        // memo has already seen — every candidate is served from the memo.
        let recurred = delta
            .replan_delta(&cluster.snapshot(), &warm)
            .expect("recurrent replan");
        let recurred_lattice = recurred.lattice.as_ref().unwrap();
        assert_eq!(recurred_lattice.evaluated, 0, "full candidate reuse");
        assert_eq!(recurred_lattice.reused, recurred_lattice.entries.len());
        let oracle2 = planner(ModelSpec::llama2_32b(), 64)
            .with_parallelism(Parallelism::Fixed(1))
            .replan(&cluster.snapshot(), &warm.plan)
            .expect("oracle replan");
        assert_bitwise_equal(&recurred, &oracle2);
    }

    #[test]
    fn structural_events_fall_back_to_full_enumeration() {
        let cluster = Cluster::homogeneous(4, 8);
        let p = planner(ModelSpec::llama2_32b(), 64);
        let initial = p.plan(&cluster.snapshot()).expect("initial plan");
        // Node loss: finite → infinite is a structural diff.
        let failed = cluster.snapshot().with_rate(GpuId(5), f64::INFINITY);
        let after_loss = p.replan_delta(&failed, &initial).expect("replan");
        assert!(
            !after_loss.lattice.as_ref().unwrap().delta,
            "node loss must not consult the memo"
        );
        let oracle = planner(ModelSpec::llama2_32b(), 64)
            .with_parallelism(Parallelism::Fixed(1))
            .replan(&failed, &initial.plan)
            .expect("oracle replan");
        assert_bitwise_equal(&after_loss, &oracle);
        // Node join (the GPU comes back, still straggling): structural again.
        let rejoined = failed.with_rate(GpuId(5), 3.75);
        let after_join = p.replan_delta(&rejoined, &after_loss).expect("replan");
        assert!(!after_join.lattice.as_ref().unwrap().delta);
    }

    #[test]
    fn incremental_off_disables_lattice_and_memo() {
        let cluster = Cluster::homogeneous(2, 8);
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_13b(), HardwareParams::a800_cluster());
        let p = Planner::new(
            coeffs,
            PlannerConfig {
                global_batch_size: 64,
                incremental: false,
                ..PlannerConfig::default()
            },
        );
        let outcome = p.plan(&cluster.snapshot()).expect("plan");
        assert!(outcome.lattice.is_none());
        assert!(p.candidate_memo().is_empty());
        // replan_delta degrades to plain (full) replanning.
        let drifted = cluster.snapshot().with_rate(GpuId(1), 2.57);
        let a = p.replan_delta(&drifted, &outcome).expect("delta");
        let b = p.replan(&drifted, &outcome.plan).expect("full");
        assert_bitwise_equal(&a, &b);
    }

    #[test]
    fn candidate_memo_is_shared_across_planner_clones() {
        let cluster = Cluster::homogeneous(2, 8);
        let p = planner(ModelSpec::llama2_13b(), 64);
        p.plan(&cluster.snapshot()).expect("plan");
        let populated = p.candidate_memo().len();
        assert!(populated > 0);
        // A planner built with the shared memo sees the same entries.
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_13b(), HardwareParams::a800_cluster());
        let sharer = Planner::new(
            coeffs,
            PlannerConfig {
                global_batch_size: 64,
                ..PlannerConfig::default()
            },
        )
        .with_candidate_memo(p.candidate_memo().clone());
        assert_eq!(sharer.candidate_memo().len(), populated);
    }

    #[test]
    fn estimate_simplified_close_to_exact() {
        let cluster = Cluster::homogeneous(4, 8);
        let p = planner(ModelSpec::llama2_32b(), 64);
        let outcome = p.plan(&cluster.snapshot()).expect("plan");
        let ratio = outcome.estimated_step_time / outcome.estimated_step_time_simplified;
        assert!((1.0..1.3).contains(&ratio), "ratio {ratio}");
    }
}
