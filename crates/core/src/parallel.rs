//! Parallel evaluation of the planner's candidate lattice.
//!
//! The Malleus planner (§4.3.3) enumerates a lattice of candidate
//! configurations — every (maximum TP degree, DP degree, micro-batch size,
//! division mode) tuple — and evaluates each candidate independently through
//! grouping, pipeline division, group ordering and work assignment.  The
//! evaluations share no mutable state, so the lattice is embarrassingly
//! parallel.  This module provides the pieces the planner uses to fan the
//! lattice across threads without changing its output:
//!
//! * [`Parallelism`] — the `PlannerConfig` knob selecting the worker count
//!   (`Auto` uses [`std::thread::available_parallelism`], `Fixed(1)` keeps the
//!   serial reference path that the equivalence test-suite treats as the
//!   oracle).
//! * [`GroupingCache`] — a memo cache for [`group_cluster`] results keyed by
//!   ([`ClusterSnapshot::fingerprint`], max TP degree), with hits confirmed
//!   against the full snapshot and coefficients.  Grouping is independent of
//!   the rest of the lattice, so the cache is filled once per plan invocation
//!   and then shared *read-only* by every worker (and by subsequent
//!   re-planning rounds on an unchanged snapshot).
//! * [`fan_out`] — a scoped-thread work queue (`std::thread::scope`, no
//!   external dependencies) that evaluates `num_items` closures on `workers`
//!   threads and returns the results **indexed by item**, not by completion
//!   order.
//!
//! # Deterministic tie-break
//!
//! Thread scheduling must never influence the chosen plan.  The planner
//! guarantees this by assigning every candidate a lattice index equal to its
//! position in the serial enumeration order and *reducing the results in index
//! order* with exactly the serial comparison: a candidate replaces the current
//! best only if its estimated step time is smaller by more than `1e-12`
//! seconds.  Ties (and near-ties within the epsilon) therefore always resolve
//! to the candidate with the smallest lattice index — i.e. the same winner the
//! serial oracle picks — no matter which worker finished first.  Because each
//! candidate's floating-point evaluation is self-contained (no cross-candidate
//! accumulation), the reduction is bit-identical to the serial fold.

use crate::grouping::{group_cluster, GroupingResult};
use malleus_cluster::ClusterSnapshot;
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable overriding [`Parallelism::Auto`] resolution
/// (`"auto"` or a worker count); used by CI to pin the planner's thread count.
pub const PARALLELISM_ENV: &str = "MALLEUS_PLANNER_PARALLELISM";

/// Worker-count knob for the candidate-lattice fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use every available core (`std::thread::available_parallelism`),
    /// honouring the `MALLEUS_PLANNER_PARALLELISM` environment override.
    Auto,
    /// Use exactly this many workers.  `Fixed(1)` is the serial reference
    /// path — the oracle the deterministic-equivalence harness compares
    /// against.
    Fixed(usize),
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::Auto
    }
}

impl Parallelism {
    /// Resolve the knob to a concrete worker count (≥ 1).
    pub fn workers(&self) -> usize {
        match self {
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => {
                if let Some(p) = Self::from_env() {
                    return p.workers_no_env();
                }
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }
        }
    }

    fn workers_no_env(&self) -> usize {
        match self {
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Parse a parallelism knob string: `"auto"` → [`Parallelism::Auto`], an
    /// unsigned integer → [`Parallelism::Fixed`].
    pub fn parse(raw: &str) -> Result<Self, ParseParallelismError> {
        let trimmed = raw.trim();
        if trimmed.eq_ignore_ascii_case("auto") {
            return Ok(Parallelism::Auto);
        }
        trimmed
            .parse::<usize>()
            .map(Parallelism::Fixed)
            .map_err(|_| ParseParallelismError {
                raw: raw.to_string(),
            })
    }

    /// Read the `MALLEUS_PLANNER_PARALLELISM` environment variable.  Unset
    /// yields `None`; an invalid value also yields `None` but emits a warning
    /// on stderr (once per process) — a typo like `PARALLELISM=fourm` used to
    /// silently fall back to the default worker count, which made CI pins and
    /// operator overrides unverifiable.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(PARALLELISM_ENV).ok()?;
        match Self::parse(&raw) {
            Ok(p) => Some(p),
            Err(e) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!("warning: {e}; falling back to the default worker count");
                });
                None
            }
        }
    }

    /// The environment override if present, otherwise `default` (used by the
    /// equivalence suite so CI can pin the candidate path to 1 or auto).
    pub fn from_env_or(default: Parallelism) -> Self {
        Self::from_env().unwrap_or(default)
    }
}

/// Error produced when a parallelism knob string (typically the
/// `MALLEUS_PLANNER_PARALLELISM` environment variable) is neither `"auto"`
/// nor an unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParallelismError {
    /// The offending raw value.
    pub raw: String,
}

impl std::fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {PARALLELISM_ENV} value {:?}: expected \"auto\" or a worker count",
            self.raw
        )
    }
}

impl std::error::Error for ParseParallelismError {}

/// A memoized grouping: the snapshot and coefficients it was computed for
/// (kept to confirm fingerprint hits) plus the result.
#[derive(Debug)]
struct CachedGrouping {
    snapshot: ClusterSnapshot,
    coeffs: ProfiledCoefficients,
    grouping: Arc<GroupingResult>,
}

impl CachedGrouping {
    fn matches(&self, snapshot: &ClusterSnapshot, coeffs: &ProfiledCoefficients) -> bool {
        self.snapshot == *snapshot && self.coeffs == *coeffs
    }
}

/// Shared read-only memo cache for [`group_cluster`] results, keyed by
/// (snapshot fingerprint, max TP degree, straggler threshold bits, splitting
/// flag).  Entries are immutable once inserted; cloning the cache shares the
/// underlying storage, so every clone of a `Planner` (and every worker thread)
/// sees the same memo.
#[derive(Debug, Clone, Default)]
pub struct GroupingCache {
    entries: Arc<Mutex<HashMap<(u64, u32, u64, bool), Arc<CachedGrouping>>>>,
}

/// Entries beyond this count flush the cache: re-planning traces revisit only
/// a handful of recent snapshots, so an unbounded memo would just leak.
const CACHE_CAPACITY: usize = 256;

impl GroupingCache {
    /// Fetch the grouping for (snapshot, `max_tp`), computing and memoizing it
    /// on a miss.  Hits are confirmed with a full equality check of the
    /// snapshot *and* the coefficients (grouping decisions depend on both), so
    /// fingerprint collisions and planners sharing one memo across different
    /// cost models degrade to recomputation, never wrong results.
    pub fn get_or_compute(
        &self,
        snapshot: &ClusterSnapshot,
        coeffs: &ProfiledCoefficients,
        max_tp: u32,
        straggler_threshold: f64,
        enable_splitting: bool,
    ) -> Arc<GroupingResult> {
        let key = (
            snapshot.fingerprint(),
            max_tp,
            straggler_threshold.to_bits(),
            enable_splitting,
        );
        if let Some(hit) = self.entries.lock().unwrap().get(&key) {
            if hit.matches(snapshot, coeffs) {
                return Arc::clone(&hit.grouping);
            }
        }
        // Compute outside the lock so concurrent misses on different TP
        // degrees proceed in parallel.
        let grouping = Arc::new(group_cluster(
            snapshot,
            coeffs,
            max_tp,
            1,
            straggler_threshold,
            enable_splitting,
        ));
        let mut entries = self.entries.lock().unwrap();
        if entries.len() >= CACHE_CAPACITY {
            entries.clear();
        }
        match entries.get(&key) {
            // A racing worker inserted the same key meanwhile; reuse its
            // result only if it was computed for the same inputs.
            Some(existing) if existing.matches(snapshot, coeffs) => Arc::clone(&existing.grouping),
            // Empty slot, a fingerprint collision, or a stale entry for other
            // coefficients: our freshly computed grouping takes the slot and
            // is returned, so the caller never sees another input's result.
            _ => {
                entries.insert(
                    key,
                    Arc::new(CachedGrouping {
                        snapshot: snapshot.clone(),
                        coeffs: coeffs.clone(),
                        grouping: Arc::clone(&grouping),
                    }),
                );
                grouping
            }
        }
    }

    /// Number of memoized groupings (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evaluate `num_items` independent tasks on `workers` scoped threads and
/// return the results in item order.
///
/// Work is distributed through a single atomic cursor, so threads self-balance
/// over items of uneven cost.  Results land in per-item slots; completion
/// order is irrelevant to the caller, which is what keeps the planner's
/// reduction deterministic.  With `workers <= 1` (or one item) the tasks run
/// inline on the calling thread — the serial reference path.
pub fn fan_out<T, F>(num_items: usize, workers: usize, eval: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || num_items <= 1 {
        return (0..num_items).map(eval).collect();
    }
    let slots: Vec<OnceLock<T>> = (0..num_items).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(num_items) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= num_items {
                    break;
                }
                // Each slot is set exactly once: indices are handed out
                // uniquely by the cursor.
                let _ = slots[i].set(eval(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_model::{HardwareParams, ModelSpec};

    #[test]
    fn fan_out_returns_results_in_item_order() {
        for workers in [1, 2, 4, 8] {
            let out = fan_out(37, workers, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fan_out_handles_empty_and_single_item() {
        assert_eq!(fan_out(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn fan_out_balances_uneven_work() {
        // Tasks of wildly different cost still come back correctly indexed.
        let out = fan_out(16, 4, |i| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn parallelism_resolves_to_at_least_one_worker() {
        assert_eq!(Parallelism::Fixed(0).workers(), 1);
        assert_eq!(Parallelism::Fixed(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn parallelism_parse_accepts_auto_and_counts() {
        assert_eq!(Parallelism::parse("auto"), Ok(Parallelism::Auto));
        assert_eq!(Parallelism::parse(" AUTO "), Ok(Parallelism::Auto));
        assert_eq!(Parallelism::parse("4"), Ok(Parallelism::Fixed(4)));
        assert_eq!(Parallelism::parse(" 16 "), Ok(Parallelism::Fixed(16)));
    }

    #[test]
    fn parallelism_parse_rejects_garbage_with_a_diagnostic() {
        for raw in ["fourm", "", "-2", "4.5", "auto4"] {
            let err = Parallelism::parse(raw).expect_err(raw);
            assert_eq!(err.raw, raw);
            assert!(err.to_string().contains(PARALLELISM_ENV), "{err}");
        }
    }

    #[test]
    fn invalid_env_override_is_surfaced_not_silently_defaulted() {
        // Mutating the environment from a multithreaded test binary is a data
        // race (concurrent setenv/getenv is UB on glibc), so the invalid
        // value is injected by re-executing this binary: the child runs only
        // the `#[ignore]`d helper below with the bogus override inherited
        // from its (single point of) process creation.  The child asserts
        // from_env degrades safely; the parent asserts the warning was
        // actually printed rather than the value being silently ignored.
        let exe = std::env::current_exe().expect("test binary path");
        let output = std::process::Command::new(exe)
            .args([
                "--exact",
                "parallel::tests::child_observes_invalid_parallelism_env",
                "--ignored",
                "--nocapture",
            ])
            .env(PARALLELISM_ENV, "not-a-number")
            .output()
            .expect("spawn child test process");
        let stderr = String::from_utf8_lossy(&output.stderr);
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "child failed\nstdout: {stdout}\nstderr: {stderr}"
        );
        assert!(
            stderr.contains(PARALLELISM_ENV) && stderr.contains("invalid"),
            "expected a warning naming {PARALLELISM_ENV} on stderr, got:\n{stderr}"
        );
    }

    /// Helper for the test above; only meaningful with the invalid override
    /// in the process environment, hence ignored in normal runs.
    #[test]
    #[ignore = "spawned by invalid_env_override_is_surfaced_not_silently_defaulted"]
    fn child_observes_invalid_parallelism_env() {
        assert_eq!(
            std::env::var(PARALLELISM_ENV).as_deref(),
            Ok("not-a-number")
        );
        // The bogus value is not treated as a valid override...
        assert_eq!(Parallelism::from_env(), None);
        assert_eq!(
            Parallelism::from_env_or(Parallelism::Fixed(3)),
            Parallelism::Fixed(3)
        );
        // ...and resolution still degrades safely to the Auto fallback.
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn grouping_cache_hits_return_equal_results() {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(3), 5.42);
        let snapshot = cluster.snapshot();
        let cache = GroupingCache::default();
        let a = cache.get_or_compute(&snapshot, &coeffs, 8, 1.05, true);
        assert_eq!(cache.len(), 1);
        let b = cache.get_or_compute(&snapshot, &coeffs, 8, 1.05, true);
        assert_eq!(*a, *b);
        let direct = group_cluster(&snapshot, &coeffs, 8, 1, 1.05, true);
        assert_eq!(*a, direct);
        // A different TP degree is a distinct entry.
        let c = cache.get_or_compute(&snapshot, &coeffs, 4, 1.05, true);
        assert_eq!(cache.len(), 2);
        assert_ne!(*a, *c);
    }

    #[test]
    fn grouping_cache_never_serves_another_models_grouping() {
        // One memo queried under two coefficient sets: each answer must match
        // a direct computation with the coefficients actually passed, even
        // though the (fingerprint, tp, threshold, splitting) key is identical.
        let coeffs_32b =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let coeffs_70b =
            ProfiledCoefficients::derive(ModelSpec::llama2_70b(), HardwareParams::a800_cluster());
        let mut cluster = Cluster::homogeneous(1, 8);
        cluster.set_rate(GpuId(1), 2.57);
        cluster.set_rate(GpuId(2), 1.3);
        let snapshot = cluster.snapshot();
        let cache = GroupingCache::default();
        let a = cache.get_or_compute(&snapshot, &coeffs_32b, 8, 1.05, true);
        let b = cache.get_or_compute(&snapshot, &coeffs_70b, 8, 1.05, true);
        assert_eq!(*a, group_cluster(&snapshot, &coeffs_32b, 8, 1, 1.05, true));
        assert_eq!(*b, group_cluster(&snapshot, &coeffs_70b, 8, 1, 1.05, true));
    }

    #[test]
    fn grouping_cache_distinguishes_snapshots() {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let cache = GroupingCache::default();
        let mut cluster = Cluster::homogeneous(2, 8);
        let a = cache.get_or_compute(&cluster.snapshot(), &coeffs, 8, 1.05, true);
        cluster.set_rate(GpuId(0), 12.53);
        let b = cache.get_or_compute(&cluster.snapshot(), &coeffs, 8, 1.05, true);
        assert_ne!(*a, *b);
        assert_eq!(cache.len(), 2);
    }
}
