//! Parallel evaluation of the planner's candidate lattice.
//!
//! The Malleus planner (§4.3.3) enumerates a lattice of candidate
//! configurations — every (maximum TP degree, DP degree, micro-batch size,
//! division mode) tuple — and evaluates each candidate independently through
//! grouping, pipeline division, group ordering and work assignment.  The
//! evaluations share no mutable state, so the lattice is embarrassingly
//! parallel.  This module provides the pieces the planner uses to fan the
//! lattice across threads without changing its output:
//!
//! * [`Parallelism`] — the `PlannerConfig` knob selecting the worker count
//!   (`Auto` uses [`std::thread::available_parallelism`], `Fixed(1)` keeps the
//!   serial reference path that the equivalence test-suite treats as the
//!   oracle).
//! * [`GroupingCache`] — a memo cache for [`group_cluster`] results keyed by
//!   ([`ClusterSnapshot::fingerprint`], max TP degree), with hits confirmed
//!   against the full snapshot and coefficients.  Grouping is independent of
//!   the rest of the lattice, so the cache is filled once per plan invocation
//!   and then shared *read-only* by every worker (and by subsequent
//!   re-planning rounds on an unchanged snapshot).
//! * [`fan_out`] — a scoped-thread work queue (`std::thread::scope`, no
//!   external dependencies) that evaluates `num_items` closures on `workers`
//!   threads and returns the results **indexed by item**, not by completion
//!   order.
//!
//! # Deterministic tie-break
//!
//! Thread scheduling must never influence the chosen plan.  The planner
//! guarantees this by assigning every candidate a lattice index equal to its
//! position in the serial enumeration order and *reducing the results in index
//! order* with exactly the serial comparison: a candidate replaces the current
//! best only if its estimated step time is smaller by more than `1e-12`
//! seconds.  Ties (and near-ties within the epsilon) therefore always resolve
//! to the candidate with the smallest lattice index — i.e. the same winner the
//! serial oracle picks — no matter which worker finished first.  Because each
//! candidate's floating-point evaluation is self-contained (no cross-candidate
//! accumulation), the reduction is bit-identical to the serial fold.

use crate::grouping::{group_cluster, GroupingResult};
use malleus_cluster::ClusterSnapshot;
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Environment variable overriding [`Parallelism::Auto`] resolution
/// (`"auto"` or a worker count); used by CI to pin the planner's thread count.
pub const PARALLELISM_ENV: &str = "MALLEUS_PLANNER_PARALLELISM";

/// Worker-count knob for the candidate-lattice fan-out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use every available core (`std::thread::available_parallelism`),
    /// honouring the `MALLEUS_PLANNER_PARALLELISM` environment override.
    #[default]
    Auto,
    /// Use exactly this many workers.  `Fixed(1)` is the serial reference
    /// path — the oracle the deterministic-equivalence harness compares
    /// against.
    Fixed(usize),
}

impl Parallelism {
    /// Resolve the knob to a concrete worker count (≥ 1).
    pub fn workers(&self) -> usize {
        match self {
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => {
                if let Some(p) = Self::from_env() {
                    return p.workers_no_env();
                }
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }
        }
    }

    fn workers_no_env(&self) -> usize {
        match self {
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Parse a parallelism knob string: `"auto"` → [`Parallelism::Auto`], an
    /// unsigned integer → [`Parallelism::Fixed`].
    pub fn parse(raw: &str) -> Result<Self, ParseParallelismError> {
        let trimmed = raw.trim();
        if trimmed.eq_ignore_ascii_case("auto") {
            return Ok(Parallelism::Auto);
        }
        trimmed
            .parse::<usize>()
            .map(Parallelism::Fixed)
            .map_err(|_| ParseParallelismError {
                raw: raw.to_string(),
            })
    }

    /// Read the `MALLEUS_PLANNER_PARALLELISM` environment variable.  Unset
    /// yields `None`; an invalid value also yields `None` but emits a warning
    /// on stderr (once per process) — a typo like `PARALLELISM=fourm` used to
    /// silently fall back to the default worker count, which made CI pins and
    /// operator overrides unverifiable.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(PARALLELISM_ENV).ok()?;
        match Self::parse(&raw) {
            Ok(p) => Some(p),
            Err(e) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!("warning: {e}; falling back to the default worker count");
                });
                None
            }
        }
    }

    /// The environment override if present, otherwise `default` (used by the
    /// equivalence suite so CI can pin the candidate path to 1 or auto).
    pub fn from_env_or(default: Parallelism) -> Self {
        Self::from_env().unwrap_or(default)
    }
}

/// Error produced when a parallelism knob string (typically the
/// `MALLEUS_PLANNER_PARALLELISM` environment variable) is neither `"auto"`
/// nor an unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParallelismError {
    /// The offending raw value.
    pub raw: String,
}

impl std::fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {PARALLELISM_ENV} value {:?}: expected \"auto\" or a worker count",
            self.raw
        )
    }
}

impl std::error::Error for ParseParallelismError {}

/// A memoized grouping: the snapshot and coefficients it was computed for
/// (kept to confirm fingerprint hits) plus the result.
#[derive(Debug)]
struct CachedGrouping {
    snapshot: ClusterSnapshot,
    coeffs: ProfiledCoefficients,
    grouping: Arc<GroupingResult>,
}

impl CachedGrouping {
    fn matches(&self, snapshot: &ClusterSnapshot, coeffs: &ProfiledCoefficients) -> bool {
        self.snapshot == *snapshot && self.coeffs == *coeffs
    }
}

/// Shared read-only memo cache for [`group_cluster`] results, keyed by
/// (snapshot fingerprint, max TP degree, straggler threshold bits, splitting
/// flag).  Entries are immutable once inserted; cloning the cache shares the
/// underlying storage, so every clone of a `Planner` (and every worker thread)
/// sees the same memo.
#[derive(Debug, Clone, Default)]
pub struct GroupingCache {
    entries: Arc<Mutex<GroupingMap>>,
}

/// Memo key: (snapshot fingerprint, max TP degree, straggler threshold bits,
/// splitting flag).
type GroupingKey = (u64, u32, u64, bool);
type GroupingMap = HashMap<GroupingKey, Arc<CachedGrouping>>;

/// Entries beyond this count flush the cache: re-planning traces revisit only
/// a handful of recent snapshots, so an unbounded memo would just leak.
const CACHE_CAPACITY: usize = 256;

impl GroupingCache {
    /// Fetch the grouping for (snapshot, `max_tp`), computing and memoizing it
    /// on a miss.  Hits are confirmed with a full equality check of the
    /// snapshot *and* the coefficients (grouping decisions depend on both), so
    /// fingerprint collisions and planners sharing one memo across different
    /// cost models degrade to recomputation, never wrong results.
    pub fn get_or_compute(
        &self,
        snapshot: &ClusterSnapshot,
        coeffs: &ProfiledCoefficients,
        max_tp: u32,
        straggler_threshold: f64,
        enable_splitting: bool,
    ) -> Arc<GroupingResult> {
        let key = (
            snapshot.fingerprint(),
            max_tp,
            straggler_threshold.to_bits(),
            enable_splitting,
        );
        if let Some(hit) = self.entries.lock().unwrap().get(&key) {
            if hit.matches(snapshot, coeffs) {
                return Arc::clone(&hit.grouping);
            }
        }
        // Compute outside the lock so concurrent misses on different TP
        // degrees proceed in parallel.
        let grouping = Arc::new(group_cluster(
            snapshot,
            coeffs,
            max_tp,
            1,
            straggler_threshold,
            enable_splitting,
        ));
        let mut entries = self.entries.lock().unwrap();
        if entries.len() >= CACHE_CAPACITY {
            entries.clear();
        }
        match entries.get(&key) {
            // A racing worker inserted the same key meanwhile; reuse its
            // result only if it was computed for the same inputs.
            Some(existing) if existing.matches(snapshot, coeffs) => Arc::clone(&existing.grouping),
            // Empty slot, a fingerprint collision, or a stale entry for other
            // coefficients: our freshly computed grouping takes the slot and
            // is returned, so the caller never sees another input's result.
            _ => {
                entries.insert(
                    key,
                    Arc::new(CachedGrouping {
                        snapshot: snapshot.clone(),
                        coeffs: coeffs.clone(),
                        grouping: Arc::clone(&grouping),
                    }),
                );
                grouping
            }
        }
    }

    /// Number of memoized groupings (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evaluate `num_items` independent tasks on `workers` scoped threads and
/// return the results in item order.
///
/// Work is distributed through a single atomic cursor, so threads self-balance
/// over items of uneven cost.  Results land in per-item slots; completion
/// order is irrelevant to the caller, which is what keeps the planner's
/// reduction deterministic.  With `workers <= 1` (or one item) the tasks run
/// inline on the calling thread — the serial reference path.
pub fn fan_out<T, F>(num_items: usize, workers: usize, eval: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || num_items <= 1 {
        return (0..num_items).map(eval).collect();
    }
    let slots: Vec<OnceLock<T>> = (0..num_items).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(num_items) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= num_items {
                    break;
                }
                // Each slot is set exactly once: indices are handed out
                // uniquely by the cursor.
                let _ = slots[i].set(eval(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index was claimed"))
        .collect()
}

// ---------------------------------------------------------------------------
// RankedMutex: debug-mode lock-rank runtime checker.
//
// The dynamic complement to `malleus-lint`'s static ML001 pass.  Every
// ranked lock carries the rank declared for it in
// `crates/lint/lock_order.toml` (the lint cross-checks the literal at the
// construction site against the manifest).  In debug builds each thread
// records its acquisition stack; taking a lock whose rank is not strictly
// greater than the rank on top of the stack panics immediately, turning a
// potential deadlock into a deterministic test failure.  Release builds
// compile the checks out entirely.
// ---------------------------------------------------------------------------

#[cfg(debug_assertions)]
thread_local! {
    /// Stack of (rank, name) for every `RankedMutex` this thread holds.
    static HELD_RANKS: std::cell::RefCell<Vec<(u32, &'static str)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(debug_assertions)]
fn check_and_push_rank(rank: u32, name: &'static str) {
    HELD_RANKS.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(&(top_rank, top_name)) = held.last() {
            assert!(
                top_rank < rank,
                "lock-rank violation: acquiring `{name}` (rank {rank}) while holding \
                 `{top_name}` (rank {top_rank}); ranks must strictly increase \
                 (see crates/lint/lock_order.toml)"
            );
        }
        held.push((rank, name));
    });
}

#[cfg(debug_assertions)]
fn pop_rank(rank: u32, name: &'static str) {
    HELD_RANKS.with(|held| {
        let mut held = held.borrow_mut();
        // Guards may be released out of LIFO order (that is legal); remove
        // the most recent matching entry rather than blindly popping.
        if let Some(i) = held.iter().rposition(|&(r, n)| r == rank && n == name) {
            held.remove(i);
        }
    });
}

/// A `Mutex` that participates in the workspace lock ranking.
///
/// `lock()` recovers from poisoning (the protected state is valid at every
/// intermediate point for all current users — see `lock_or_poisoned` in
/// `malleus-service` for the recovery rationale) and, in debug builds only,
/// panics when acquired out of rank order.  Condvar interaction goes through
/// [`RankedMutex::wait`] / [`RankedMutex::wait_timeout`], which model the
/// wait as a release + rank-checked reacquisition — exactly what the OS does.
#[derive(Debug)]
pub struct RankedMutex<T> {
    rank: u32,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// `rank` and `name` must match the lock's entry in
    /// `crates/lint/lock_order.toml`; `malleus-lint` verifies the literals.
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self {
            rank,
            name,
            inner: Mutex::new(value),
        }
    }

    /// Declared rank (strictly increasing along any acquisition chain).
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Manifest name, `"Struct.field"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire, recovering from poisoning.  Panics in debug builds if the
    /// calling thread already holds a lock of equal or greater rank.
    pub fn lock(&self) -> RankedGuard<'_, T> {
        #[cfg(debug_assertions)]
        check_and_push_rank(self.rank, self.name);
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RankedGuard {
            lock: self,
            guard: Some(guard),
        }
    }

    /// Condvar wait: releases the lock (popping the rank stack), parks on
    /// `condvar`, and re-acquires with a fresh rank check on wake.
    pub fn wait<'a>(&'a self, condvar: &Condvar, guard: RankedGuard<'a, T>) -> RankedGuard<'a, T> {
        let inner = guard.release_for_wait(self);
        let inner = condvar
            .wait(inner)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.adopt(inner)
    }

    /// [`wait`](Self::wait) with a timeout; the boolean is `true` when the
    /// wait timed out.
    pub fn wait_timeout<'a>(
        &'a self,
        condvar: &Condvar,
        guard: RankedGuard<'a, T>,
        timeout: Duration,
    ) -> (RankedGuard<'a, T>, bool) {
        let inner = guard.release_for_wait(self);
        let (inner, result) = condvar
            .wait_timeout(inner, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (self.adopt(inner), result.timed_out())
    }

    /// Wrap a bare guard re-acquired after a condvar wait, re-running the
    /// rank check.
    fn adopt<'a>(&'a self, guard: std::sync::MutexGuard<'a, T>) -> RankedGuard<'a, T> {
        #[cfg(debug_assertions)]
        check_and_push_rank(self.rank, self.name);
        RankedGuard {
            lock: self,
            guard: Some(guard),
        }
    }
}

/// RAII guard for a [`RankedMutex`]; releasing it pops the thread's rank
/// stack in debug builds.
#[derive(Debug)]
pub struct RankedGuard<'a, T> {
    lock: &'a RankedMutex<T>,
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T> RankedGuard<'a, T> {
    /// Hand the inner guard to a condvar wait, popping the rank stack (the
    /// mutex is genuinely unlocked while the thread is parked).
    fn release_for_wait(mut self, owner: &RankedMutex<T>) -> std::sync::MutexGuard<'a, T> {
        assert!(
            std::ptr::eq(self.lock, owner),
            "guard for `{}` passed to wait on `{}`",
            self.lock.name,
            owner.name
        );
        #[cfg(debug_assertions)]
        pop_rank(self.lock.rank, self.lock.name);
        self.guard.take().expect("guard present until released")
    }
}

impl<T> std::ops::Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until released")
    }
}

impl<T> std::ops::DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until released")
    }
}

impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.take().is_some() {
            #[cfg(debug_assertions)]
            pop_rank(self.lock.rank, self.lock.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};
    use malleus_model::{HardwareParams, ModelSpec};

    #[test]
    fn fan_out_returns_results_in_item_order() {
        for workers in [1, 2, 4, 8] {
            let out = fan_out(37, workers, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fan_out_handles_empty_and_single_item() {
        assert_eq!(fan_out(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn fan_out_balances_uneven_work() {
        // Tasks of wildly different cost still come back correctly indexed.
        let out = fan_out(16, 4, |i| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn parallelism_resolves_to_at_least_one_worker() {
        assert_eq!(Parallelism::Fixed(0).workers(), 1);
        assert_eq!(Parallelism::Fixed(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn parallelism_parse_accepts_auto_and_counts() {
        assert_eq!(Parallelism::parse("auto"), Ok(Parallelism::Auto));
        assert_eq!(Parallelism::parse(" AUTO "), Ok(Parallelism::Auto));
        assert_eq!(Parallelism::parse("4"), Ok(Parallelism::Fixed(4)));
        assert_eq!(Parallelism::parse(" 16 "), Ok(Parallelism::Fixed(16)));
    }

    #[test]
    fn parallelism_parse_rejects_garbage_with_a_diagnostic() {
        for raw in ["fourm", "", "-2", "4.5", "auto4"] {
            let err = Parallelism::parse(raw).expect_err(raw);
            assert_eq!(err.raw, raw);
            assert!(err.to_string().contains(PARALLELISM_ENV), "{err}");
        }
    }

    #[test]
    fn invalid_env_override_is_surfaced_not_silently_defaulted() {
        // Mutating the environment from a multithreaded test binary is a data
        // race (concurrent setenv/getenv is UB on glibc), so the invalid
        // value is injected by re-executing this binary: the child runs only
        // the `#[ignore]`d helper below with the bogus override inherited
        // from its (single point of) process creation.  The child asserts
        // from_env degrades safely; the parent asserts the warning was
        // actually printed rather than the value being silently ignored.
        let exe = std::env::current_exe().expect("test binary path");
        let output = std::process::Command::new(exe)
            .args([
                "--exact",
                "parallel::tests::child_observes_invalid_parallelism_env",
                "--ignored",
                "--nocapture",
            ])
            .env(PARALLELISM_ENV, "not-a-number")
            .output()
            .expect("spawn child test process");
        let stderr = String::from_utf8_lossy(&output.stderr);
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "child failed\nstdout: {stdout}\nstderr: {stderr}"
        );
        assert!(
            stderr.contains(PARALLELISM_ENV) && stderr.contains("invalid"),
            "expected a warning naming {PARALLELISM_ENV} on stderr, got:\n{stderr}"
        );
    }

    /// Helper for the test above; only meaningful with the invalid override
    /// in the process environment, hence ignored in normal runs.
    #[test]
    #[ignore = "spawned by invalid_env_override_is_surfaced_not_silently_defaulted"]
    fn child_observes_invalid_parallelism_env() {
        assert_eq!(
            std::env::var(PARALLELISM_ENV).as_deref(),
            Ok("not-a-number")
        );
        // The bogus value is not treated as a valid override...
        assert_eq!(Parallelism::from_env(), None);
        assert_eq!(
            Parallelism::from_env_or(Parallelism::Fixed(3)),
            Parallelism::Fixed(3)
        );
        // ...and resolution still degrades safely to the Auto fallback.
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn grouping_cache_hits_return_equal_results() {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(3), 5.42);
        let snapshot = cluster.snapshot();
        let cache = GroupingCache::default();
        let a = cache.get_or_compute(&snapshot, &coeffs, 8, 1.05, true);
        assert_eq!(cache.len(), 1);
        let b = cache.get_or_compute(&snapshot, &coeffs, 8, 1.05, true);
        assert_eq!(*a, *b);
        let direct = group_cluster(&snapshot, &coeffs, 8, 1, 1.05, true);
        assert_eq!(*a, direct);
        // A different TP degree is a distinct entry.
        let c = cache.get_or_compute(&snapshot, &coeffs, 4, 1.05, true);
        assert_eq!(cache.len(), 2);
        assert_ne!(*a, *c);
    }

    #[test]
    fn grouping_cache_never_serves_another_models_grouping() {
        // One memo queried under two coefficient sets: each answer must match
        // a direct computation with the coefficients actually passed, even
        // though the (fingerprint, tp, threshold, splitting) key is identical.
        let coeffs_32b =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let coeffs_70b =
            ProfiledCoefficients::derive(ModelSpec::llama2_70b(), HardwareParams::a800_cluster());
        let mut cluster = Cluster::homogeneous(1, 8);
        cluster.set_rate(GpuId(1), 2.57);
        cluster.set_rate(GpuId(2), 1.3);
        let snapshot = cluster.snapshot();
        let cache = GroupingCache::default();
        let a = cache.get_or_compute(&snapshot, &coeffs_32b, 8, 1.05, true);
        let b = cache.get_or_compute(&snapshot, &coeffs_70b, 8, 1.05, true);
        assert_eq!(*a, group_cluster(&snapshot, &coeffs_32b, 8, 1, 1.05, true));
        assert_eq!(*b, group_cluster(&snapshot, &coeffs_70b, 8, 1, 1.05, true));
    }

    #[test]
    fn grouping_cache_distinguishes_snapshots() {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let cache = GroupingCache::default();
        let mut cluster = Cluster::homogeneous(2, 8);
        let a = cache.get_or_compute(&cluster.snapshot(), &coeffs, 8, 1.05, true);
        cluster.set_rate(GpuId(0), 12.53);
        let b = cache.get_or_compute(&cluster.snapshot(), &coeffs, 8, 1.05, true);
        assert_ne!(*a, *b);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn ranked_mutex_allows_increasing_ranks() {
        let low = RankedMutex::new(10, "test.low", 1u32);
        let high = RankedMutex::new(20, "test.high", 2u32);
        let a = low.lock();
        let b = high.lock();
        assert_eq!(*a + *b, 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn ranked_mutex_panics_on_inverted_acquisition() {
        let result = std::panic::catch_unwind(|| {
            let low = RankedMutex::new(10, "test.low", ());
            let high = RankedMutex::new(20, "test.high", ());
            let _b = high.lock();
            let _a = low.lock(); // rank 10 while holding rank 20: inversion
        });
        assert!(result.is_err(), "inverted acquisition must panic in debug");
        // The unwinding must have cleaned the thread-local stack: a fresh
        // well-ordered acquisition on this thread still works.
        let low = RankedMutex::new(10, "test.low", ());
        let _a = low.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    fn ranked_mutex_panics_on_same_rank_reentry() {
        let result = std::panic::catch_unwind(|| {
            let a = RankedMutex::new(10, "test.a", ());
            let b = RankedMutex::new(10, "test.b", ());
            let _ga = a.lock();
            let _gb = b.lock(); // equal rank: would deadlock under contention
        });
        assert!(result.is_err(), "equal-rank nesting must panic in debug");
    }

    #[test]
    fn ranked_mutex_wait_timeout_releases_and_reacquires() {
        let lock = Arc::new(RankedMutex::new(10, "test.waited", 0u32));
        let cv = Arc::new(Condvar::new());
        let guard = lock.lock();
        let (guard, timed_out) = lock.wait_timeout(&cv, guard, Duration::from_millis(5));
        assert!(timed_out);
        drop(guard);

        // A notified wait observes the other thread's mutation: the lock was
        // genuinely released while parked.
        let waiter = {
            let lock = Arc::clone(&lock);
            let cv = Arc::clone(&cv);
            std::thread::spawn(move || {
                let mut guard = lock.lock();
                while *guard == 0 {
                    guard = lock.wait(&cv, guard);
                }
                *guard
            })
        };
        // Spin until the waiter holds/parks, then publish.
        loop {
            let mut guard = lock.lock();
            *guard = 7;
            drop(guard);
            cv.notify_all();
            if waiter.is_finished() {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(waiter.join().expect("waiter"), 7);
    }

    #[test]
    fn ranked_mutex_recovers_from_poison() {
        let lock = Arc::new(RankedMutex::new(10, "test.poisoned", 5u32));
        let lock2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = lock2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*lock.lock(), 5, "poisoned lock recovers to valid state");
    }
}
