//! The unified planning-backend abstraction.
//!
//! Every planner in the workspace — the Malleus [`Planner`] and the four
//! paper baselines in `malleus-baselines` — sits behind one [`PlanBackend`]
//! trait, so the planning service, the training runtime and the benchmark
//! arena can drive any of them through a single interface:
//!
//! * [`PlanBackend::plan`] produces an initial [`PlannedOutcome`] for a
//!   cluster snapshot;
//! * [`PlanBackend::replan`] adapts a previous outcome to a new snapshot
//!   given a classified [`ClusterEvent`], charging the backend's transition
//!   cost (migration, pipeline reinstantiation, checkpoint restart, …);
//! * [`PlanBackend::estimate_step_time`] prices an externally supplied plan
//!   under the backend's own cost model, when it has one.
//!
//! Backends are **stateless**: every method takes `&self` and all history
//! travels through the [`PlannedOutcome`] value.  That is what lets the
//! planning service cache and coalesce backend invocations — a cache key of
//! (snapshot, coefficients, config, [`BackendId`],
//! [`PlanBackend::fingerprint_config`]) fully determines the output.

use std::sync::Arc;

use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_model::ProfiledCoefficients;
use serde::{Deserialize, Serialize};

use crate::error::PlanError;
use crate::plan::ParallelizationPlan;
use crate::planner::{PlanOutcome, Planner, PlannerConfig};

/// Straggler-rate threshold used when classifying cluster events for
/// backends that do not carry their own threshold (matches
/// `PlannerConfig::default().straggler_threshold`).
pub const DEFAULT_STRAGGLER_THRESHOLD: f64 = 1.05;

/// Stable identity of a planning backend.
///
/// The discriminants are part of the service cache-key format: [`Self::code`]
/// values must never be reused for a different backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BackendId {
    /// The Malleus straggler-resilient planner (this repo's [`Planner`]).
    Malleus,
    /// Static Megatron-LM 3D sharding (DP × TP × PP grid search).
    Megatron,
    /// DeepSpeed ZeRO-3 data parallelism.
    DeepSpeed,
    /// Oobleck-style pipeline-template reinstantiation.
    Oobleck,
    /// Restart-on-failure with Megatron-LM re-tuning.
    MegatronRestart,
    /// Restart-on-failure with DeepSpeed ZeRO-3 re-tuning.
    DeepSpeedRestart,
}

impl BackendId {
    /// Every backend the workspace knows about, in display order.
    pub const ALL: [BackendId; 6] = [
        BackendId::Malleus,
        BackendId::Megatron,
        BackendId::DeepSpeed,
        BackendId::Oobleck,
        BackendId::MegatronRestart,
        BackendId::DeepSpeedRestart,
    ];

    /// Human-readable name (also used in benchmark tables).
    pub fn name(&self) -> &'static str {
        match self {
            BackendId::Malleus => "Malleus",
            BackendId::Megatron => "Megatron-LM",
            BackendId::DeepSpeed => "DeepSpeed",
            BackendId::Oobleck => "Oobleck",
            BackendId::MegatronRestart => "Restart (Megatron)",
            BackendId::DeepSpeedRestart => "Restart (DeepSpeed)",
        }
    }

    /// Stable 64-bit code mixed into service cache keys.
    pub fn code(&self) -> u64 {
        match self {
            BackendId::Malleus => 0x4d41_4c4c_4555_5301,
            BackendId::Megatron => 0x4d45_4741_5452_4f02,
            BackendId::DeepSpeed => 0x4445_4550_5350_4403,
            BackendId::Oobleck => 0x4f4f_424c_4543_4b04,
            BackendId::MegatronRestart => 0x5253_544d_4547_4105,
            BackendId::DeepSpeedRestart => 0x5253_5444_5350_4406,
        }
    }

    /// Dense index into per-backend metric arrays (`0..ALL.len()`).
    pub fn index(&self) -> usize {
        match self {
            BackendId::Malleus => 0,
            BackendId::Megatron => 1,
            BackendId::DeepSpeed => 2,
            BackendId::Oobleck => 3,
            BackendId::MegatronRestart => 4,
            BackendId::DeepSpeedRestart => 5,
        }
    }
}

impl std::fmt::Display for BackendId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A cluster event classified relative to a previous planning outcome, fed to
/// [`PlanBackend::replan`] so backends can distinguish "keep going, maybe
/// rebalance" from "a participant died".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterEvent {
    /// Straggling rates moved, but every previously active GPU is alive.
    StragglerDrift,
    /// At least one previously active GPU has failed (infinite rate).
    Failure,
    /// A GPU the previous plan had set aside is healthy again.
    Recovery,
}

impl ClusterEvent {
    /// Classify a new snapshot relative to the previous outcome.  Failure of
    /// an active participant dominates; then, when the previous outcome
    /// carries its scored lattice (and with it the snapshot it was planned
    /// against), the snapshot *diff* catches structural changes the
    /// outcome-level heuristics cannot — a standby GPU dying, or a
    /// previously-failed GPU rejoining while still straggling above
    /// `threshold`.  Otherwise a previously benched GPU back under
    /// `threshold` reads as a recovery; everything else is drift.
    pub fn classify(
        previous: &PlannedOutcome,
        snapshot: &ClusterSnapshot,
        threshold: f64,
    ) -> ClusterEvent {
        let failed = previous
            .active_gpus
            .iter()
            .any(|&gpu| gpu.index() < snapshot.num_gpus() && !snapshot.rate(gpu).is_finite());
        if failed {
            return ClusterEvent::Failure;
        }
        if let Some(basis) = previous
            .malleus
            .as_ref()
            .and_then(|m| m.lattice.as_ref())
            .map(|lattice| &lattice.snapshot)
        {
            match Self::classify_snapshots(basis, snapshot) {
                ClusterEvent::StragglerDrift => {}
                structural => return structural,
            }
        }
        let active: std::collections::HashSet<GpuId> =
            previous.active_gpus.iter().copied().collect();
        let recovered = (0..snapshot.num_gpus() as u32).map(GpuId).any(|gpu| {
            !active.contains(&gpu) && {
                let rate = snapshot.rate(gpu);
                rate.is_finite() && rate <= threshold
            }
        });
        if recovered {
            ClusterEvent::Recovery
        } else {
            ClusterEvent::StragglerDrift
        }
    }

    /// Classify purely from a snapshot diff: node loss (any finite → infinite
    /// rate, or a shrunk cluster) dominates a simultaneous drift or join;
    /// then a node join (any infinite → finite rate, at *any* rate — a
    /// rejoining GPU may still straggle); everything else is drift.
    pub fn classify_snapshots(
        previous: &ClusterSnapshot,
        current: &ClusterSnapshot,
    ) -> ClusterEvent {
        if previous.num_gpus() != current.num_gpus() || previous.num_nodes != current.num_nodes {
            return if current.num_gpus() < previous.num_gpus() {
                ClusterEvent::Failure
            } else {
                ClusterEvent::Recovery
            };
        }
        let rates = previous.rates.iter().zip(current.rates.iter());
        if rates
            .clone()
            .any(|(prev, cur)| prev.is_finite() && !cur.is_finite())
        {
            return ClusterEvent::Failure;
        }
        if rates
            .clone()
            .any(|(prev, cur)| !prev.is_finite() && cur.is_finite())
        {
            return ClusterEvent::Recovery;
        }
        ClusterEvent::StragglerDrift
    }

    /// Whether the event changes cluster structure (availability or
    /// topology).  Structural events route to full enumeration; drift may
    /// warm-start the delta replanner.
    pub fn is_structural(&self) -> bool {
        !matches!(self, ClusterEvent::StragglerDrift)
    }
}

impl std::fmt::Display for ClusterEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterEvent::StragglerDrift => f.write_str("straggler drift"),
            ClusterEvent::Failure => f.write_str("failure"),
            ClusterEvent::Recovery => f.write_str("recovery"),
        }
    }
}

/// The backend-agnostic result of a [`PlanBackend::plan`] / `replan` call.
///
/// Backends that materialize a device-level [`ParallelizationPlan`] (Malleus,
/// Megatron-LM) populate `plan`; purely data-parallel or template-based
/// backends (DeepSpeed, Oobleck, the restart family) may leave it `None` and
/// describe their configuration in `description` instead.  The Malleus
/// backend additionally carries its full native [`PlanOutcome`] so the
/// service's legacy `plan()` entry point stays byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedOutcome {
    /// Which backend produced this outcome.
    pub backend: BackendId,
    /// The device-level plan, when the backend materializes one.
    pub plan: Option<ParallelizationPlan>,
    /// GPUs participating in training under this outcome (sorted).
    pub active_gpus: Vec<GpuId>,
    /// Estimated steady-state training-step time under the planned
    /// configuration, in seconds.
    pub estimated_step_time: f64,
    /// One-off cost of adopting this outcome from the previous one (live
    /// migration, pipeline reinstantiation, checkpoint restart), in seconds.
    /// Zero for initial plans.
    pub transition_cost: f64,
    /// Human-readable configuration summary (e.g. `"DP2TP8PP2, mbs1"`).
    pub description: String,
    /// The native Malleus outcome, populated only by the Malleus backend.
    pub malleus: Option<Arc<PlanOutcome>>,
}

impl PlannedOutcome {
    /// Wrap a native Malleus [`PlanOutcome`].
    pub fn from_malleus(outcome: PlanOutcome) -> Self {
        Self::from_malleus_arc(Arc::new(outcome))
    }

    /// Wrap an already shared native Malleus [`PlanOutcome`].
    pub fn from_malleus_arc(outcome: Arc<PlanOutcome>) -> Self {
        let mut active_gpus = outcome.plan.active_gpus();
        active_gpus.sort_unstable();
        PlannedOutcome {
            backend: BackendId::Malleus,
            estimated_step_time: outcome.estimated_step_time,
            transition_cost: 0.0,
            description: format!(
                "Malleus DP{} maxTP{} mbs{}",
                outcome.dp, outcome.chosen_tp, outcome.plan.micro_batch_size
            ),
            active_gpus,
            plan: Some(outcome.plan.clone()),
            malleus: Some(outcome),
        }
    }
}

/// A planning backend: one of the five systems compared in the paper, driven
/// through a uniform, stateless interface.  See the module docs for the
/// statelessness contract.
pub trait PlanBackend: Send + Sync + std::fmt::Debug {
    /// Stable identity, mixed into service cache keys.
    fn id(&self) -> BackendId;

    /// Fingerprint of every backend knob that is *not* captured by the
    /// `(snapshot, coefficients, PlannerConfig)` request key — e.g. Oobleck's
    /// overhead factor.  Two instances with equal fingerprints must plan
    /// identically on identical requests, or service caching is unsound.
    fn fingerprint_config(&self) -> u64;

    /// Produce an initial plan for the snapshot.
    fn plan(
        &self,
        snapshot: &ClusterSnapshot,
        config: &PlannerConfig,
    ) -> Result<PlannedOutcome, PlanError>;

    /// Adapt the previous outcome to a new snapshot.  `event` is the
    /// classification of the snapshot relative to `previous` (see
    /// [`ClusterEvent::classify`]); the returned outcome's
    /// `transition_cost` charges whatever the backend pays to switch.
    fn replan(
        &self,
        snapshot: &ClusterSnapshot,
        previous: &PlannedOutcome,
        event: ClusterEvent,
    ) -> Result<PlannedOutcome, PlanError>;

    /// Price an externally supplied plan under this backend's cost model, if
    /// it has one that applies.
    fn estimate_step_time(
        &self,
        plan: &ParallelizationPlan,
        snapshot: &ClusterSnapshot,
    ) -> Option<f64>;
}

/// Constructor signature for backend registry entries: the service builds a
/// fresh (stateless) backend instance per request from the request's
/// coefficients and planner configuration.
pub type BackendConstructor =
    dyn Fn(&ProfiledCoefficients, &PlannerConfig) -> Box<dyn PlanBackend> + Send + Sync;

/// Registry constructor for the Malleus backend.
pub fn malleus_constructor() -> Arc<BackendConstructor> {
    Arc::new(|coeffs, config| Box::new(Planner::new(coeffs.clone(), config.clone())))
}

/// FNV-1a accumulator for [`PlanBackend::fingerprint_config`] implementations,
/// so every backend fingerprints its knobs the same way.
#[derive(Debug, Clone)]
pub struct ConfigFingerprint(u64);

impl ConfigFingerprint {
    pub fn new() -> Self {
        ConfigFingerprint(0xcbf2_9ce4_8422_2325)
    }

    pub fn u64(mut self, value: u64) -> Self {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub fn f64(self, value: f64) -> Self {
        self.u64(value.to_bits())
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for ConfigFingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanBackend for Planner {
    fn id(&self) -> BackendId {
        BackendId::Malleus
    }

    fn fingerprint_config(&self) -> u64 {
        // Every Malleus knob lives in `PlannerConfig`, which the service
        // request key already covers; the fingerprint only pins the backend.
        ConfigFingerprint::new()
            .u64(BackendId::Malleus.code())
            .finish()
    }

    fn plan(
        &self,
        snapshot: &ClusterSnapshot,
        config: &PlannerConfig,
    ) -> Result<PlannedOutcome, PlanError> {
        let outcome = if *config == self.config {
            Planner::plan(self, snapshot)?
        } else {
            // Honor the requested configuration while sharing the grouping
            // memo, exactly as the planning service does.
            Planner::new(self.cost.coeffs.clone(), config.clone())
                .with_grouping_cache(self.grouping_cache().clone())
                .plan(snapshot)?
        };
        Ok(PlannedOutcome::from_malleus(outcome))
    }

    fn replan(
        &self,
        snapshot: &ClusterSnapshot,
        previous: &PlannedOutcome,
        event: ClusterEvent,
    ) -> Result<PlannedOutcome, PlanError> {
        // Malleus adapts online whatever the event is; migration cost is
        // priced separately by the runtime/arena via `plan_migration`.
        // Drift-only events warm-start from the previous outcome's scored
        // lattice (`replan_delta` re-checks the snapshot diff itself and
        // falls back to full enumeration if it is structural after all);
        // structural events go straight to full enumeration.
        let outcome = match (&previous.malleus, &previous.plan) {
            (Some(prev), _) if !event.is_structural() => self.replan_delta(snapshot, prev)?,
            (_, Some(plan)) => Planner::replan(self, snapshot, plan)?,
            (Some(prev), None) => Planner::replan(self, snapshot, &prev.plan)?,
            (None, None) => Planner::plan(self, snapshot)?,
        };
        Ok(PlannedOutcome::from_malleus(outcome))
    }

    fn estimate_step_time(
        &self,
        plan: &ParallelizationPlan,
        snapshot: &ClusterSnapshot,
    ) -> Option<f64> {
        Some(self.cost.step_time(plan, snapshot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, StragglerLevel};
    use malleus_model::{HardwareParams, ModelSpec};

    fn planner() -> Planner {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_7b(), HardwareParams::a800_cluster());
        Planner::new(
            coeffs,
            PlannerConfig {
                global_batch_size: 16,
                ..PlannerConfig::default()
            },
        )
    }

    #[test]
    fn backend_ids_have_unique_codes_and_dense_indices() {
        let codes: std::collections::HashSet<u64> =
            BackendId::ALL.iter().map(|id| id.code()).collect();
        assert_eq!(codes.len(), BackendId::ALL.len());
        let mut indices: Vec<usize> = BackendId::ALL.iter().map(|id| id.index()).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..BackendId::ALL.len()).collect::<Vec<_>>());
    }

    #[test]
    fn malleus_backend_plan_is_byte_identical_to_direct_plan() {
        let planner = planner();
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(3), StragglerLevel::Level2.rate());
        let snapshot = cluster.snapshot();

        let direct = Planner::plan(&planner, &snapshot).expect("direct plan");
        let via_trait =
            PlanBackend::plan(&planner, &snapshot, &planner.config.clone()).expect("trait plan");

        let inner = via_trait.malleus.as_ref().expect("malleus outcome");
        assert_eq!(direct.plan, inner.plan);
        assert_eq!(direct.chosen_tp, inner.chosen_tp);
        assert_eq!(direct.dp, inner.dp);
        assert_eq!(
            direct.estimated_step_time.to_bits(),
            inner.estimated_step_time.to_bits()
        );
        assert_eq!(
            direct.estimated_step_time_simplified.to_bits(),
            inner.estimated_step_time_simplified.to_bits()
        );
        assert_eq!(via_trait.plan.as_ref(), Some(&direct.plan));
        assert_eq!(via_trait.backend, BackendId::Malleus);
        assert_eq!(via_trait.transition_cost, 0.0);
    }

    #[test]
    fn malleus_backend_replan_matches_direct_replan() {
        let planner = planner();
        let healthy = Cluster::homogeneous(2, 8).snapshot();
        let initial = PlanBackend::plan(&planner, &healthy, &planner.config.clone()).unwrap();

        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(0), StragglerLevel::Level3.rate());
        let snapshot = cluster.snapshot();
        let event = ClusterEvent::classify(&initial, &snapshot, DEFAULT_STRAGGLER_THRESHOLD);
        assert_eq!(event, ClusterEvent::StragglerDrift);

        let direct = Planner::replan(&planner, &snapshot, initial.plan.as_ref().unwrap()).unwrap();
        let via_trait = PlanBackend::replan(&planner, &snapshot, &initial, event).unwrap();
        assert_eq!(via_trait.plan.as_ref(), Some(&direct.plan));
        assert_eq!(
            via_trait.estimated_step_time.to_bits(),
            direct.estimated_step_time.to_bits()
        );
    }

    #[test]
    fn classify_detects_failure_and_recovery() {
        let planner = planner();
        let healthy = Cluster::homogeneous(2, 8).snapshot();
        let initial = PlanBackend::plan(&planner, &healthy, &planner.config.clone()).unwrap();

        let mut failed = Cluster::homogeneous(2, 8);
        failed.set_rate(GpuId(1), StragglerLevel::Failed.rate());
        assert_eq!(
            ClusterEvent::classify(&initial, &failed.snapshot(), DEFAULT_STRAGGLER_THRESHOLD),
            ClusterEvent::Failure
        );

        // Bench GPU 5 in the "previous" outcome, then show it healthy again.
        let mut benched = initial.clone();
        benched.active_gpus.retain(|&g| g != GpuId(5));
        assert_eq!(
            ClusterEvent::classify(&benched, &healthy, DEFAULT_STRAGGLER_THRESHOLD),
            ClusterEvent::Recovery
        );

        let mut drifting = Cluster::homogeneous(2, 8);
        drifting.set_rate(GpuId(2), StragglerLevel::Level2.rate());
        assert_eq!(
            ClusterEvent::classify(&initial, &drifting.snapshot(), DEFAULT_STRAGGLER_THRESHOLD),
            ClusterEvent::StragglerDrift
        );
    }

    #[test]
    fn simultaneous_drift_and_node_loss_classifies_as_failure() {
        let planner = planner();
        let healthy = Cluster::homogeneous(2, 8).snapshot();
        let initial = PlanBackend::plan(&planner, &healthy, &planner.config.clone()).unwrap();
        // GPU 2 drifts while GPU 5 dies in the same observation window: the
        // loss dominates and the event must route to full enumeration.
        let mut c = Cluster::homogeneous(2, 8);
        c.set_rate(GpuId(2), StragglerLevel::Level2.rate());
        c.set_rate(GpuId(5), StragglerLevel::Failed.rate());
        let event = ClusterEvent::classify(&initial, &c.snapshot(), DEFAULT_STRAGGLER_THRESHOLD);
        assert_eq!(event, ClusterEvent::Failure);
        assert!(event.is_structural());
        assert_eq!(
            ClusterEvent::classify_snapshots(&healthy, &c.snapshot()),
            ClusterEvent::Failure
        );
        // The replan routed through the trait stays byte-identical to the
        // direct full replan.
        let via = PlanBackend::replan(&planner, &c.snapshot(), &initial, event).unwrap();
        let direct = Planner::replan(
            &planner,
            &c.snapshot(),
            initial.plan.as_ref().expect("plan"),
        )
        .unwrap();
        assert_eq!(via.malleus.as_ref().unwrap().plan, direct.plan);
        assert_eq!(
            via.estimated_step_time.to_bits(),
            direct.estimated_step_time.to_bits()
        );
    }

    #[test]
    fn rejoin_of_failed_gpu_above_threshold_classifies_as_recovery() {
        let planner = planner();
        // Plan with GPU 5 failed: the outcome's lattice basis records the
        // infinite rate.
        let mut f = Cluster::homogeneous(2, 8);
        f.set_rate(GpuId(5), StragglerLevel::Failed.rate());
        let previous = PlanBackend::plan(&planner, &f.snapshot(), &planner.config.clone()).unwrap();
        // GPU 5 rejoins but still straggles well above the 1.05 threshold:
        // the outcome-level heuristic alone would call this drift, but the
        // snapshot diff sees the infinite → finite flip.
        let mut rejoined = Cluster::homogeneous(2, 8);
        rejoined.set_rate(GpuId(5), StragglerLevel::Level1.rate());
        let event =
            ClusterEvent::classify(&previous, &rejoined.snapshot(), DEFAULT_STRAGGLER_THRESHOLD);
        assert_eq!(event, ClusterEvent::Recovery);
        assert_eq!(
            ClusterEvent::classify_snapshots(&f.snapshot(), &rejoined.snapshot()),
            ClusterEvent::Recovery
        );
        // Structural: the replan must re-enumerate, and the rejoined GPU is
        // available to the new plan.
        let via = PlanBackend::replan(&planner, &rejoined.snapshot(), &previous, event).unwrap();
        let lattice = via.malleus.as_ref().unwrap().lattice.as_ref().unwrap();
        assert!(!lattice.delta, "join must not consult the memo");
    }

    #[test]
    fn drift_exactly_at_threshold_stays_drift_and_routes_to_delta() {
        let planner = planner();
        let healthy = Cluster::homogeneous(2, 8).snapshot();
        let initial = PlanBackend::plan(&planner, &healthy, &planner.config.clone()).unwrap();
        // A GPU sitting exactly at the straggler threshold is a drift, not a
        // structural event: same topology, same availability.
        let drifted = healthy.with_rate(GpuId(2), DEFAULT_STRAGGLER_THRESHOLD);
        let event = ClusterEvent::classify(&initial, &drifted, DEFAULT_STRAGGLER_THRESHOLD);
        assert_eq!(event, ClusterEvent::StragglerDrift);
        assert!(!event.is_structural());
        assert_eq!(
            ClusterEvent::classify_snapshots(&healthy, &drifted),
            ClusterEvent::StragglerDrift
        );
        // The delta path engages and stays byte-identical to the direct
        // full-enumeration replan.
        let via = PlanBackend::replan(&planner, &drifted, &initial, event).unwrap();
        let inner = via.malleus.as_ref().unwrap();
        assert!(inner.lattice.as_ref().unwrap().delta, "memo consulted");
        let direct =
            Planner::replan(&planner, &drifted, initial.plan.as_ref().expect("plan")).unwrap();
        assert_eq!(inner.plan, direct.plan);
        assert_eq!(
            inner.estimated_step_time.to_bits(),
            direct.estimated_step_time.to_bits()
        );
        assert_eq!(
            inner.estimated_step_time_simplified.to_bits(),
            direct.estimated_step_time_simplified.to_bits()
        );
    }

    #[test]
    fn config_fingerprints_are_order_sensitive_and_stable() {
        let a = ConfigFingerprint::new().u64(1).f64(1.9).finish();
        let b = ConfigFingerprint::new().u64(1).f64(1.9).finish();
        let c = ConfigFingerprint::new().f64(1.9).u64(1).finish();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
