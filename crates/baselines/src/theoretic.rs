//! Theoretic-optimum yardstick (Tables 2–3, Figure 9).
//!
//! If hardware capability were exactly inversely proportional to the straggling
//! rate and work could be split with perfect, fractional freedom, the best
//! achievable slowdown over a healthy cluster of `N` GPUs with `n` stragglers
//! of rates `x_1..x_n` is `N / ((N − n) + Σ 1/x_i)`.

use malleus_cluster::ClusterSnapshot;
use malleus_core::CostModel;

/// The theoretic-optimal step time for a straggler situation, given the step
/// time measured on the healthy cluster.
pub fn theoretic_optimal_time(healthy_step_time: f64, snapshot: &ClusterSnapshot) -> f64 {
    healthy_step_time * CostModel::theoretic_optimal_ratio(snapshot)
}

/// Gap of an actual time from the theoretic optimum, `1 − T_opt / T_actual`
/// (the metric annotated in Figure 9).
///
/// Degenerate measurements — non-finite or non-positive times, as produced by
/// NaN cost coefficients, an all-failed cluster (`T_opt = ∞ · 0`), or a zero
/// healthy step time (`T_opt = 0`) — return `NaN` so report tables can render
/// "n/a" instead of a garbage percentage.
pub fn gap_from_optimum(actual: f64, optimum: f64) -> f64 {
    if !actual.is_finite() || !optimum.is_finite() || actual <= 0.0 || optimum <= 0.0 {
        return f64::NAN;
    }
    1.0 - optimum / actual
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, GpuId};

    #[test]
    fn optimum_equals_healthy_time_without_stragglers() {
        let cluster = Cluster::paper_testbed();
        assert!((theoretic_optimal_time(19.2, &cluster.snapshot()) - 19.2).abs() < 1e-9);
    }

    #[test]
    fn single_straggler_formula_matches_hand_computation() {
        // 64 GPUs, one straggler at x = 5.42: ratio = 64 / (63 + 1/5.42).
        let mut cluster = Cluster::paper_testbed();
        cluster.set_rate(GpuId(0), 5.42);
        let t = theoretic_optimal_time(19.2, &cluster.snapshot());
        let expected = 19.2 * 64.0 / (63.0 + 1.0 / 5.42);
        assert!((t - expected).abs() < 1e-9);
        // The paper's Table 2 reports ~19.4 s for the 110B model here.
        assert!((t - 19.4).abs() < 0.2);
    }

    #[test]
    fn gap_is_zero_when_actual_equals_optimum() {
        assert!(gap_from_optimum(10.0, 10.0).abs() < 1e-12);
        assert!((gap_from_optimum(12.0, 10.0) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_gaps_are_nan_not_garbage() {
        // Zero optimum (e.g. zero healthy step time) must not read as a
        // perfect 100% gap.
        assert!(gap_from_optimum(10.0, 0.0).is_nan());
        // NaN coefficients propagate as NaN, never as a finite percentage.
        assert!(gap_from_optimum(f64::NAN, 10.0).is_nan());
        assert!(gap_from_optimum(10.0, f64::NAN).is_nan());
        // Infinite actual time (a failed run) is not a 100% gap either.
        assert!(gap_from_optimum(f64::INFINITY, 10.0).is_nan());
        assert!(gap_from_optimum(10.0, f64::INFINITY).is_nan());
        // Non-positive times are measurement errors.
        assert!(gap_from_optimum(-1.0, 10.0).is_nan());
        assert!(gap_from_optimum(0.0, 10.0).is_nan());
        assert!(gap_from_optimum(10.0, -1.0).is_nan());
        // Healthy inputs still produce the Figure 9 metric.
        assert!((gap_from_optimum(20.0, 10.0) - 0.5).abs() < 1e-12);
    }
}
