//! `malleus-baselines` — the comparison systems of the paper's evaluation.
//!
//! The paper compares Malleus against:
//!
//! * **Megatron-LM** — uniform 3D parallelism (DP × TP × PP with even layer and
//!   data splits).  Its parallelization is oblivious to stragglers, so a single
//!   slow GPU gates the whole job ([`megatron`]).
//! * **DeepSpeed** — ZeRO-3 / fully-sharded data parallelism whose per-layer
//!   parameter gathers are globally synchronous ([`deepspeed`]).
//! * **Megatron-LM / DeepSpeed "w/ Restart"** — the manual remediation of
//!   §7.2: exclude every node containing a straggler, re-tune the parallel
//!   configuration (Tables 6–7) and restart from a checkpoint ([`restart`]).
//! * **Oobleck** — a fault-tolerant training system driven by precomputed
//!   pipeline templates; it pays a standing efficiency tax and can only migrate
//!   between template-compatible node counts, restarting otherwise
//!   ([`oobleck`]).
//! * The **theoretic optimum** `T_normal · N / ((N−n) + Σ 1/x_i)` used as the
//!   yardstick in Tables 2–3 and Figure 9 ([`theoretic`]).
//!
//! All baselines run on the same simulator (`malleus-sim`) and the same
//! profiled coefficients as Malleus so the comparisons isolate the
//! *parallelization policy*, exactly as in the paper.  Every baseline also
//! implements the [`malleus_core::PlanBackend`] trait ([`backend`]), so the
//! planning service, the training runtime and `exp_backend_arena` can drive
//! all five systems through one interface on identical event sequences.
//!
//! ## Fidelity notes (what each backend models, and what it does not)
//!
//! * **[`megatron`]** models the offline grid search an engineer performs
//!   (DP × TP ∈ {1,2,4,8} × PP, micro-batch ∈ {1,2,4,8}, activation
//!   checkpointing only when needed for memory) and the gating of a uniform
//!   1F1B schedule by its slowest participant.  *Gaps:* no interleaved
//!   virtual-pipeline schedules, no distributed-optimizer sharding, and the
//!   search uses our simulator rather than measured throughput, so the chosen
//!   configuration can differ from Table 6 when two settings are within
//!   simulator noise.
//! * **[`deepspeed`]** models ZeRO-3 with Ulysses sequence parallelism via
//!   `malleus-sim`'s analytic ZeRO-3 step (per-layer all-gather and
//!   reduce-scatter on the slowest participant's critical path).  *Gaps:* no
//!   ZeRO-Offload/Infinity tiers, no communication/computation overlap tuning,
//!   and no device-level [`malleus_core::ParallelizationPlan`] — the backend
//!   reports `plan: None` and re-derives its configuration deterministically
//!   from the active GPU set.
//! * **[`oobleck`]** models template-constrained reinstantiation as a constant
//!   `overhead_factor` (1.9×, the midpoint of Figure 8's 1.8–2.5×) on top of
//!   the best Megatron-style plan for the surviving nodes, with a fixed
//!   per-template migration time and template coverage up to `template_depth`
//!   lost nodes.  *Gaps:* real Oobleck enumerates concrete pipeline templates
//!   and its overhead varies per template; recovery of a re-admitted node is
//!   always a restart here.
//! * **[`restart`]** models checkpoint-restart remediation at node
//!   granularity: healthy GPUs sharing a node with a straggler are discarded
//!   too, and the restart cost comes from `malleus-sim`'s checkpoint
//!   save/re-init/load model.  *Gaps:* restart cost ignores queueing/scheduler
//!   delay, and re-tuning is assumed to find the simulator-optimal
//!   configuration instantly.
//! * **[`theoretic`]** is exact with respect to its own idealization (perfect
//!   fractional work splitting, capability inversely proportional to the
//!   straggling rate); it is a bound, not a system.

pub mod backend;
pub mod deepspeed;
pub mod megatron;
pub mod oobleck;
pub mod restart;
pub mod theoretic;

pub use backend::baseline_constructors;
pub use deepspeed::{DeepSpeedConfig, DeepSpeedPlanner};
pub use megatron::{MegatronConfig, MegatronPlanner};
pub use oobleck::{OobleckOutcome, OobleckPlanner, OobleckTransition};
pub use restart::{nodes_without_stragglers, RestartFamily, RestartOutcome, RestartPlanner};
pub use theoretic::{gap_from_optimum, theoretic_optimal_time};
