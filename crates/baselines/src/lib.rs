//! `malleus-baselines` — the comparison systems of the paper's evaluation.
//!
//! The paper compares Malleus against:
//!
//! * **Megatron-LM** — uniform 3D parallelism (DP × TP × PP with even layer and
//!   data splits).  Its parallelization is oblivious to stragglers, so a single
//!   slow GPU gates the whole job ([`megatron`]).
//! * **DeepSpeed** — ZeRO-3 / fully-sharded data parallelism whose per-layer
//!   parameter gathers are globally synchronous ([`deepspeed`]).
//! * **Megatron-LM / DeepSpeed "w/ Restart"** — the manual remediation of
//!   §7.2: exclude every node containing a straggler, re-tune the parallel
//!   configuration (Tables 6–7) and restart from a checkpoint ([`restart`]).
//! * **Oobleck** — a fault-tolerant training system driven by precomputed
//!   pipeline templates; it pays a standing efficiency tax and can only migrate
//!   between template-compatible node counts, restarting otherwise
//!   ([`oobleck`]).
//! * The **theoretic optimum** `T_normal · N / ((N−n) + Σ 1/x_i)` used as the
//!   yardstick in Tables 2–3 and Figure 9 ([`theoretic`]).
//!
//! All baselines run on the same simulator (`malleus-sim`) and the same
//! profiled coefficients as Malleus so the comparisons isolate the
//! *parallelization policy*, exactly as in the paper.

pub mod deepspeed;
pub mod megatron;
pub mod oobleck;
pub mod restart;
pub mod theoretic;

pub use deepspeed::{DeepSpeedConfig, DeepSpeedPlanner};
pub use megatron::{MegatronConfig, MegatronPlanner};
pub use oobleck::{OobleckOutcome, OobleckPlanner, OobleckTransition};
pub use restart::{nodes_without_stragglers, RestartOutcome, RestartPlanner};
pub use theoretic::theoretic_optimal_time;
