//! [`PlanBackend`] implementations for the four baseline systems, so the
//! planning service, training runtime and benchmark arena can drive them
//! through the same interface as the Malleus planner.
//!
//! Semantics per backend:
//!
//! * **Megatron-LM** tunes once on the usable (non-failed) GPU set and keeps
//!   the same uniform plan across straggler drift — the step time is simply
//!   re-simulated and gated by the slowest participant.  A participant
//!   *failure* is unrecoverable ([`PlanError::CannotAdapt`]): that is exactly
//!   the behaviour the restart family exists to fix.
//! * **DeepSpeed** (ZeRO-3) behaves like Megatron-LM but produces no
//!   device-level [`ParallelizationPlan`]; its configuration is re-derived
//!   deterministically from the active GPU set, so the backend stays
//!   stateless.
//! * **Oobleck** excludes straggling nodes and reinstantiates pipeline
//!   templates; it survives failures (they look like lost nodes) but pays
//!   template migration or restart transition costs.
//! * **Restart (Megatron/DeepSpeed)** excludes straggling nodes, re-tunes the
//!   family configuration and charges a checkpoint-restart whenever the node
//!   set changes.

use std::sync::Arc;

use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_core::{
    BackendConstructor, BackendId, ClusterEvent, ConfigFingerprint, ParallelizationPlan,
    PlanBackend, PlanError, PlannedOutcome, PlannerConfig,
};

use crate::deepspeed::DeepSpeedPlanner;
use crate::megatron::MegatronPlanner;
use crate::oobleck::OobleckPlanner;
use crate::restart::{gpus_on_nodes, RestartFamily, RestartPlanner};

/// GPUs with a finite straggling rate, in id order.
fn usable_gpus(snapshot: &ClusterSnapshot) -> Vec<GpuId> {
    (0..snapshot.num_gpus() as u32)
        .map(GpuId)
        .filter(|&g| snapshot.rate(g).is_finite())
        .collect()
}

/// The (sorted, deduplicated) nodes hosting the given GPUs.
fn nodes_of_gpus(snapshot: &ClusterSnapshot, gpus: &[GpuId]) -> Vec<u32> {
    let mut nodes: Vec<u32> = gpus
        .iter()
        .filter(|g| g.index() < snapshot.num_gpus())
        .map(|&g| snapshot.node_of(g))
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

fn sorted(mut gpus: Vec<GpuId>) -> Vec<GpuId> {
    gpus.sort_unstable();
    gpus
}

impl PlanBackend for MegatronPlanner {
    fn id(&self) -> BackendId {
        BackendId::Megatron
    }

    fn fingerprint_config(&self) -> u64 {
        ConfigFingerprint::new()
            .u64(BackendId::Megatron.code())
            .u64(u64::from(self.gpus_per_node))
            .u64(self.global_batch_size)
            .finish()
    }

    fn plan(
        &self,
        snapshot: &ClusterSnapshot,
        config: &PlannerConfig,
    ) -> Result<PlannedOutcome, PlanError> {
        let planner = MegatronPlanner {
            global_batch_size: config.global_batch_size,
            ..self.clone()
        };
        let gpus = usable_gpus(snapshot);
        let (mcfg, plan, _healthy_time) = planner.search_checked(&gpus)?;
        let step = planner
            .simulate_step(&plan, snapshot, mcfg.activation_checkpointing)
            .ok_or_else(|| PlanError::InfeasibleConfiguration {
                backend: "megatron".into(),
                reason: "the tuned configuration cannot run on the current snapshot".into(),
            })?;
        Ok(PlannedOutcome {
            backend: BackendId::Megatron,
            active_gpus: sorted(plan.active_gpus()),
            plan: Some(plan),
            estimated_step_time: step,
            transition_cost: 0.0,
            description: mcfg.to_string(),
            malleus: None,
        })
    }

    fn replan(
        &self,
        snapshot: &ClusterSnapshot,
        previous: &PlannedOutcome,
        event: ClusterEvent,
    ) -> Result<PlannedOutcome, PlanError> {
        if event == ClusterEvent::Failure {
            return Err(PlanError::CannotAdapt {
                backend: "megatron".into(),
                reason: "a participating GPU failed; static Megatron-LM must restart".into(),
            });
        }
        let plan = previous
            .plan
            .as_ref()
            .ok_or_else(|| PlanError::CannotAdapt {
                backend: "megatron".into(),
                reason: "no device-level plan to keep running".into(),
            })?;
        let ac = self.requires_activation_checkpointing(plan);
        let step =
            self.simulate_step(plan, snapshot, ac)
                .ok_or_else(|| PlanError::CannotAdapt {
                    backend: "megatron".into(),
                    reason: "the kept plan cannot run on the current snapshot".into(),
                })?;
        Ok(PlannedOutcome {
            backend: BackendId::Megatron,
            plan: Some(plan.clone()),
            active_gpus: previous.active_gpus.clone(),
            estimated_step_time: step,
            transition_cost: 0.0,
            description: previous.description.clone(),
            malleus: None,
        })
    }

    fn estimate_step_time(
        &self,
        plan: &ParallelizationPlan,
        snapshot: &ClusterSnapshot,
    ) -> Option<f64> {
        let ac = self.requires_activation_checkpointing(plan);
        self.simulate_step(plan, snapshot, ac)
    }
}

impl PlanBackend for DeepSpeedPlanner {
    fn id(&self) -> BackendId {
        BackendId::DeepSpeed
    }

    fn fingerprint_config(&self) -> u64 {
        ConfigFingerprint::new()
            .u64(BackendId::DeepSpeed.code())
            .u64(self.global_batch_size)
            .finish()
    }

    fn plan(
        &self,
        snapshot: &ClusterSnapshot,
        config: &PlannerConfig,
    ) -> Result<PlannedOutcome, PlanError> {
        let planner = DeepSpeedPlanner {
            global_batch_size: config.global_batch_size,
            ..self.clone()
        };
        let gpus = usable_gpus(snapshot);
        let (dcfg, _healthy_time) = planner.search_checked(snapshot, &gpus)?;
        let step = planner
            .simulate_step(snapshot, &gpus, &dcfg)
            .ok_or_else(|| PlanError::InfeasibleConfiguration {
                backend: "deepspeed".into(),
                reason: "the tuned configuration cannot run on the current snapshot".into(),
            })?;
        Ok(PlannedOutcome {
            backend: BackendId::DeepSpeed,
            plan: None,
            active_gpus: gpus,
            estimated_step_time: step,
            transition_cost: 0.0,
            description: dcfg.to_string(),
            malleus: None,
        })
    }

    fn replan(
        &self,
        snapshot: &ClusterSnapshot,
        previous: &PlannedOutcome,
        event: ClusterEvent,
    ) -> Result<PlannedOutcome, PlanError> {
        if event == ClusterEvent::Failure {
            return Err(PlanError::CannotAdapt {
                backend: "deepspeed".into(),
                reason: "a participating GPU failed; ZeRO-3 collectives cannot proceed".into(),
            });
        }
        // The tuned configuration is re-derived deterministically from the
        // active GPU set (same search as at plan time), keeping the backend
        // stateless.
        let gpus = previous.active_gpus.clone();
        let (dcfg, _healthy_time) = self.search_checked(snapshot, &gpus)?;
        let step =
            self.simulate_step(snapshot, &gpus, &dcfg)
                .ok_or_else(|| PlanError::CannotAdapt {
                    backend: "deepspeed".into(),
                    reason: "the kept configuration cannot run on the current snapshot".into(),
                })?;
        Ok(PlannedOutcome {
            backend: BackendId::DeepSpeed,
            plan: None,
            active_gpus: gpus,
            estimated_step_time: step,
            transition_cost: 0.0,
            description: dcfg.to_string(),
            malleus: None,
        })
    }

    fn estimate_step_time(
        &self,
        _plan: &ParallelizationPlan,
        _snapshot: &ClusterSnapshot,
    ) -> Option<f64> {
        // ZeRO-3 has no notion of a device-level pipeline plan.
        None
    }
}

impl PlanBackend for OobleckPlanner {
    fn id(&self) -> BackendId {
        BackendId::Oobleck
    }

    fn fingerprint_config(&self) -> u64 {
        ConfigFingerprint::new()
            .u64(BackendId::Oobleck.code())
            .u64(u64::from(self.gpus_per_node))
            .u64(self.global_batch_size)
            .f64(self.overhead_factor)
            .u64(self.template_depth as u64)
            .f64(self.threshold)
            .f64(self.migration_seconds)
            .finish()
    }

    fn plan(
        &self,
        snapshot: &ClusterSnapshot,
        config: &PlannerConfig,
    ) -> Result<PlannedOutcome, PlanError> {
        let planner = OobleckPlanner {
            global_batch_size: config.global_batch_size,
            ..self.clone()
        };
        let all_nodes: Vec<u32> = (0..snapshot.num_nodes as u32).collect();
        let outcome = planner.handle_situation_checked(snapshot, &all_nodes, snapshot.num_nodes)?;
        Ok(PlannedOutcome {
            backend: BackendId::Oobleck,
            plan: None,
            active_gpus: gpus_on_nodes(snapshot, &outcome.nodes_used),
            estimated_step_time: outcome.step_time,
            // The first instantiation has no previous job to transition from.
            transition_cost: 0.0,
            description: format!(
                "Oobleck {} nodes ({:?})",
                outcome.nodes_used.len(),
                outcome.transition
            ),
            malleus: None,
        })
    }

    fn replan(
        &self,
        snapshot: &ClusterSnapshot,
        previous: &PlannedOutcome,
        _event: ClusterEvent,
    ) -> Result<PlannedOutcome, PlanError> {
        // Failures look like lost nodes to Oobleck: the template machinery
        // handles them the same way as straggling nodes.
        let previous_nodes = nodes_of_gpus(snapshot, &previous.active_gpus);
        let outcome =
            self.handle_situation_checked(snapshot, &previous_nodes, snapshot.num_nodes)?;
        Ok(PlannedOutcome {
            backend: BackendId::Oobleck,
            plan: None,
            active_gpus: gpus_on_nodes(snapshot, &outcome.nodes_used),
            estimated_step_time: outcome.step_time,
            transition_cost: outcome.transition_cost,
            description: format!(
                "Oobleck {} nodes ({:?})",
                outcome.nodes_used.len(),
                outcome.transition
            ),
            malleus: None,
        })
    }

    fn estimate_step_time(
        &self,
        plan: &ParallelizationPlan,
        snapshot: &ClusterSnapshot,
    ) -> Option<f64> {
        // Oobleck executes Megatron-style template plans with its standing
        // overhead on top.
        let megatron = MegatronPlanner::new(
            self.coeffs.clone(),
            self.global_batch_size,
            self.gpus_per_node,
        );
        let ac = megatron.requires_activation_checkpointing(plan);
        megatron
            .simulate_step(plan, snapshot, ac)
            .map(|t| t * self.overhead_factor)
    }
}

impl PlanBackend for RestartPlanner {
    fn id(&self) -> BackendId {
        match self.family {
            RestartFamily::Megatron => BackendId::MegatronRestart,
            RestartFamily::DeepSpeed => BackendId::DeepSpeedRestart,
        }
    }

    fn fingerprint_config(&self) -> u64 {
        ConfigFingerprint::new()
            .u64(self.id().code())
            .u64(u64::from(self.gpus_per_node))
            .u64(self.global_batch_size)
            .f64(self.threshold)
            .finish()
    }

    fn plan(
        &self,
        snapshot: &ClusterSnapshot,
        config: &PlannerConfig,
    ) -> Result<PlannedOutcome, PlanError> {
        let planner = RestartPlanner {
            global_batch_size: config.global_batch_size,
            ..self.clone()
        };
        let outcome = planner.handle_situation_checked(snapshot, None)?;
        Ok(PlannedOutcome {
            backend: self.id(),
            plan: None,
            active_gpus: gpus_on_nodes(snapshot, &outcome.nodes_used),
            estimated_step_time: outcome.step_time,
            transition_cost: 0.0,
            description: outcome.config,
            malleus: None,
        })
    }

    fn replan(
        &self,
        snapshot: &ClusterSnapshot,
        previous: &PlannedOutcome,
        _event: ClusterEvent,
    ) -> Result<PlannedOutcome, PlanError> {
        let previous_nodes = nodes_of_gpus(snapshot, &previous.active_gpus);
        let outcome = self.handle_situation_checked(snapshot, Some(&previous_nodes))?;
        Ok(PlannedOutcome {
            backend: self.id(),
            plan: None,
            active_gpus: gpus_on_nodes(snapshot, &outcome.nodes_used),
            estimated_step_time: outcome.step_time,
            transition_cost: outcome.restart_cost,
            description: outcome.config,
            malleus: None,
        })
    }

    fn estimate_step_time(
        &self,
        plan: &ParallelizationPlan,
        snapshot: &ClusterSnapshot,
    ) -> Option<f64> {
        match self.family {
            RestartFamily::Megatron => {
                let megatron = MegatronPlanner::new(
                    self.coeffs.clone(),
                    self.global_batch_size,
                    self.gpus_per_node,
                );
                let ac = megatron.requires_activation_checkpointing(plan);
                megatron.simulate_step(plan, snapshot, ac)
            }
            RestartFamily::DeepSpeed => None,
        }
    }
}

/// Registry constructors for all four baseline backends, ready to hand to
/// `PlanService::register_backend`.  `gpus_per_node` parameterizes the
/// node-granularity backends; thresholds follow the request's
/// `PlannerConfig::straggler_threshold`.
pub fn baseline_constructors(gpus_per_node: u32) -> Vec<(BackendId, Arc<BackendConstructor>)> {
    vec![
        (
            BackendId::Megatron,
            Arc::new(move |coeffs, config| {
                Box::new(MegatronPlanner::new(
                    coeffs.clone(),
                    config.global_batch_size,
                    gpus_per_node,
                )) as Box<dyn PlanBackend>
            }),
        ),
        (
            BackendId::DeepSpeed,
            Arc::new(move |coeffs, config| {
                Box::new(DeepSpeedPlanner::new(
                    coeffs.clone(),
                    config.global_batch_size,
                )) as Box<dyn PlanBackend>
            }),
        ),
        (
            BackendId::Oobleck,
            Arc::new(move |coeffs, config| {
                let mut planner =
                    OobleckPlanner::new(coeffs.clone(), config.global_batch_size, gpus_per_node);
                planner.threshold = config.straggler_threshold;
                Box::new(planner) as Box<dyn PlanBackend>
            }),
        ),
        (
            BackendId::MegatronRestart,
            Arc::new(move |coeffs, config| {
                let mut planner = RestartPlanner::new(
                    RestartFamily::Megatron,
                    coeffs.clone(),
                    config.global_batch_size,
                    gpus_per_node,
                );
                planner.threshold = config.straggler_threshold;
                Box::new(planner) as Box<dyn PlanBackend>
            }),
        ),
        (
            BackendId::DeepSpeedRestart,
            Arc::new(move |coeffs, config| {
                let mut planner = RestartPlanner::new(
                    RestartFamily::DeepSpeed,
                    coeffs.clone(),
                    config.global_batch_size,
                    gpus_per_node,
                );
                planner.threshold = config.straggler_threshold;
                Box::new(planner) as Box<dyn PlanBackend>
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, PaperSituation, StragglerLevel};
    use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};

    fn coeffs() -> ProfiledCoefficients {
        ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster())
    }

    fn config() -> PlannerConfig {
        PlannerConfig {
            global_batch_size: 64,
            ..PlannerConfig::default()
        }
    }

    fn snapshot_for(situation: PaperSituation) -> ClusterSnapshot {
        let mut cluster = Cluster::homogeneous(4, 8);
        let sit = situation.situation(&cluster);
        cluster.apply_situation(&sit.rates);
        cluster.snapshot()
    }

    fn all_backends() -> Vec<Box<dyn PlanBackend>> {
        baseline_constructors(8)
            .into_iter()
            .map(|(_, ctor)| ctor(&coeffs(), &config()))
            .collect()
    }

    #[test]
    fn constructors_build_backends_with_matching_ids() {
        for (id, ctor) in baseline_constructors(8) {
            let backend = ctor(&coeffs(), &config());
            assert_eq!(backend.id(), id);
        }
    }

    #[test]
    fn every_baseline_plans_a_healthy_cluster() {
        let snapshot = snapshot_for(PaperSituation::Normal);
        for backend in all_backends() {
            let outcome = backend
                .plan(&snapshot, &config())
                .unwrap_or_else(|e| panic!("{}: {e}", backend.id()));
            assert_eq!(outcome.backend, backend.id());
            assert!(
                outcome.estimated_step_time.is_finite() && outcome.estimated_step_time > 0.0,
                "{}: step {}",
                backend.id(),
                outcome.estimated_step_time
            );
            assert_eq!(outcome.transition_cost, 0.0);
            assert!(!outcome.active_gpus.is_empty());
            assert!(outcome.malleus.is_none());
        }
    }

    #[test]
    fn every_baseline_rejects_an_all_failed_cluster_with_typed_errors() {
        let mut cluster = Cluster::homogeneous(2, 8);
        for gpu in 0..16 {
            cluster.set_rate(GpuId(gpu), StragglerLevel::Failed.rate());
        }
        let snapshot = cluster.snapshot();
        for backend in all_backends() {
            let err = backend
                .plan(&snapshot, &config())
                .expect_err(backend.id().name());
            assert!(
                matches!(err, PlanError::NoUsableGpus | PlanError::NoHealthyNodes),
                "{}: {err:?}",
                backend.id()
            );
        }
    }

    #[test]
    fn static_backends_cannot_adapt_to_participant_failure() {
        let healthy = snapshot_for(PaperSituation::Normal);
        let mut failed = Cluster::homogeneous(4, 8);
        failed.set_rate(GpuId(0), StragglerLevel::Failed.rate());
        let failed_snapshot = failed.snapshot();
        for backend in all_backends() {
            let initial = backend.plan(&healthy, &config()).unwrap();
            let event = ClusterEvent::classify(&initial, &failed_snapshot, 1.05);
            assert_eq!(event, ClusterEvent::Failure, "{}", backend.id());
            let result = backend.replan(&failed_snapshot, &initial, event);
            match backend.id() {
                BackendId::Megatron | BackendId::DeepSpeed => {
                    assert!(
                        matches!(result, Err(PlanError::CannotAdapt { .. })),
                        "{}: {result:?}",
                        backend.id()
                    );
                }
                _ => {
                    // Node-granularity backends survive by dropping node 0.
                    let outcome = result.unwrap_or_else(|e| panic!("{}: {e}", backend.id()));
                    assert!(outcome.transition_cost > 0.0, "{}", backend.id());
                    assert!(!outcome.active_gpus.contains(&GpuId(0)));
                }
            }
        }
    }

    #[test]
    fn megatron_replan_keeps_the_plan_and_slows_with_stragglers() {
        let megatron = MegatronPlanner::new(coeffs(), 64, 8);
        let healthy = snapshot_for(PaperSituation::Normal);
        let initial = PlanBackend::plan(&megatron, &healthy, &config()).unwrap();
        let straggled = snapshot_for(PaperSituation::S1);
        let event = ClusterEvent::classify(&initial, &straggled, 1.05);
        let after = PlanBackend::replan(&megatron, &straggled, &initial, event).unwrap();
        assert_eq!(after.plan, initial.plan, "static plan must not change");
        assert!(
            after.estimated_step_time > initial.estimated_step_time * 1.5,
            "{} vs {}",
            after.estimated_step_time,
            initial.estimated_step_time
        );
    }

    #[test]
    fn restart_replan_charges_a_restart_when_nodes_change() {
        let restart = RestartPlanner::new(RestartFamily::Megatron, coeffs(), 64, 8);
        let healthy = snapshot_for(PaperSituation::Normal);
        let initial = PlanBackend::plan(&restart, &healthy, &config()).unwrap();
        let straggled = snapshot_for(PaperSituation::S1);
        let event = ClusterEvent::classify(&initial, &straggled, 1.05);
        let after = PlanBackend::replan(&restart, &straggled, &initial, event).unwrap();
        assert!(after.transition_cost > 60.0, "{}", after.transition_cost);
        assert!(after.active_gpus.len() < initial.active_gpus.len());
    }

    #[test]
    fn fingerprints_distinguish_backend_knobs() {
        let a = OobleckPlanner::new(coeffs(), 64, 8);
        let mut b = a.clone();
        b.overhead_factor = 2.5;
        assert_ne!(
            PlanBackend::fingerprint_config(&a),
            PlanBackend::fingerprint_config(&b)
        );
        let m = MegatronPlanner::new(coeffs(), 64, 8);
        assert_ne!(
            PlanBackend::fingerprint_config(&a),
            PlanBackend::fingerprint_config(&m)
        );
    }
}
