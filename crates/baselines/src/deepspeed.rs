//! DeepSpeed-style ZeRO-3 (fully-sharded data parallel) baseline.
//!
//! Configuration search mirrors Table 7: the tunables are the Ulysses
//! sequence-parallel degree, the micro-batch size and activation
//! checkpointing.  The execution model lives in `malleus-sim::zero3`.

use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_core::PlanError;
use malleus_model::ProfiledCoefficients;
use malleus_sim::{simulate_zero3_step, Zero3Config};
use serde::{Deserialize, Serialize};

/// A concrete DeepSpeed configuration (cf. Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeepSpeedConfig {
    /// Data-parallel group count (GPUs / sequence-parallel degree).
    pub dp: usize,
    /// Ulysses sequence-parallel degree.
    pub sequence_parallel: u32,
    /// Micro-batch size.
    pub micro_batch_size: u64,
    /// Whether activation checkpointing is enabled.
    pub activation_checkpointing: bool,
}

impl std::fmt::Display for DeepSpeedConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DP{}SP{}{}, mbs{}",
            self.dp,
            self.sequence_parallel,
            if self.activation_checkpointing {
                "+AC"
            } else {
                ""
            },
            self.micro_batch_size
        )
    }
}

impl DeepSpeedConfig {
    /// Convert to the simulator's configuration struct.
    pub fn zero3(&self) -> Zero3Config {
        Zero3Config {
            sequence_parallel: self.sequence_parallel,
            micro_batch_size: self.micro_batch_size,
            activation_checkpointing: self.activation_checkpointing,
        }
    }
}

/// Planner/searcher for the DeepSpeed baseline.
#[derive(Debug, Clone)]
pub struct DeepSpeedPlanner {
    /// Profiled coefficients.
    pub coeffs: ProfiledCoefficients,
    /// Global batch size.
    pub global_batch_size: u64,
}

impl DeepSpeedPlanner {
    /// Create a planner.
    pub fn new(coeffs: ProfiledCoefficients, global_batch_size: u64) -> Self {
        Self {
            coeffs,
            global_batch_size,
        }
    }

    /// Search the best configuration for the given GPU set on a healthy
    /// cluster.  Returns the configuration and its healthy step time.
    pub fn search(
        &self,
        snapshot: &ClusterSnapshot,
        gpus: &[GpuId],
    ) -> Option<(DeepSpeedConfig, f64)> {
        let healthy = ClusterSnapshot {
            num_nodes: snapshot.num_nodes,
            node_of: snapshot.node_of.clone(),
            rates: vec![1.0; snapshot.num_gpus()],
        };
        let n = gpus.len();
        let mut best: Option<(DeepSpeedConfig, f64)> = None;
        for sp in [1u32, 2, 4, 8] {
            if !n.is_multiple_of(sp as usize) {
                continue;
            }
            let dp = n / sp as usize;
            for mbs in [1u64, 2, 4, 6, 8] {
                for ac in [false, true] {
                    let config = DeepSpeedConfig {
                        dp,
                        sequence_parallel: sp,
                        micro_batch_size: mbs,
                        activation_checkpointing: ac,
                    };
                    let Some(report) = simulate_zero3_step(
                        &self.coeffs,
                        &healthy,
                        gpus,
                        self.global_batch_size,
                        &config.zero3(),
                    ) else {
                        continue;
                    };
                    if !report.memory_feasible {
                        continue;
                    }
                    if best
                        .as_ref()
                        .map(|(_, t)| report.step_time < *t)
                        .unwrap_or(true)
                    {
                        best = Some((config, report.step_time));
                    }
                }
            }
        }
        best
    }

    /// Like [`Self::search`], but with typed errors for degenerate inputs.
    pub fn search_checked(
        &self,
        snapshot: &ClusterSnapshot,
        gpus: &[GpuId],
    ) -> Result<(DeepSpeedConfig, f64), PlanError> {
        if gpus.is_empty() {
            return Err(PlanError::NoUsableGpus);
        }
        self.search(snapshot, gpus)
            .ok_or_else(|| PlanError::InfeasibleConfiguration {
                backend: "deepspeed".into(),
                reason: format!(
                    "no SP×mbs setting over {} GPUs is memory-feasible for batch {}",
                    gpus.len(),
                    self.global_batch_size
                ),
            })
    }

    /// Simulate one step with a fixed configuration under the given straggler
    /// situation.  Returns `None` when the configuration cannot run (e.g. a
    /// participating GPU has failed).
    pub fn simulate_step(
        &self,
        snapshot: &ClusterSnapshot,
        gpus: &[GpuId],
        config: &DeepSpeedConfig,
    ) -> Option<f64> {
        simulate_zero3_step(
            &self.coeffs,
            snapshot,
            gpus,
            self.global_batch_size,
            &config.zero3(),
        )
        .map(|r| r.step_time)
    }

    /// Simulated MFU on a healthy cluster.
    pub fn mfu(
        &self,
        snapshot: &ClusterSnapshot,
        gpus: &[GpuId],
        config: &DeepSpeedConfig,
    ) -> Option<f64> {
        simulate_zero3_step(
            &self.coeffs,
            snapshot,
            gpus,
            self.global_batch_size,
            &config.zero3(),
        )
        .map(|r| r.mfu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::Cluster;
    use malleus_model::{HardwareParams, ModelSpec};

    fn planner(spec: ModelSpec) -> DeepSpeedPlanner {
        DeepSpeedPlanner::new(
            ProfiledCoefficients::derive(spec, HardwareParams::a800_cluster()),
            64,
        )
    }

    fn gpu_ids(n: u32) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn search_finds_feasible_config_for_70b() {
        let p = planner(ModelSpec::llama2_70b());
        let cluster = Cluster::paper_testbed();
        let (config, time) = p.search(&cluster.snapshot(), &gpu_ids(64)).expect("config");
        assert_eq!(config.dp * config.sequence_parallel as usize, 64);
        assert!(time > 1.0 && time < 120.0, "step {time}");
    }

    #[test]
    fn deepspeed_is_more_straggler_sensitive_than_its_healthy_time() {
        let p = planner(ModelSpec::llama2_70b());
        let mut cluster = Cluster::paper_testbed();
        let (config, healthy) = p.search(&cluster.snapshot(), &gpu_ids(64)).unwrap();
        cluster.set_rate(GpuId(0), 5.42);
        let straggled = p
            .simulate_step(&cluster.snapshot(), &gpu_ids(64), &config)
            .unwrap();
        assert!(straggled / healthy > 2.0, "{straggled} vs {healthy}");
    }

    #[test]
    fn display_matches_paper_notation() {
        let c = DeepSpeedConfig {
            dp: 32,
            sequence_parallel: 2,
            micro_batch_size: 2,
            activation_checkpointing: true,
        };
        assert_eq!(c.to_string(), "DP32SP2+AC, mbs2");
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let p = planner(ModelSpec::llama2_110b());
        let snapshot = Cluster::homogeneous(1, 8).snapshot();
        assert_eq!(
            p.search_checked(&snapshot, &[]),
            Err(PlanError::NoUsableGpus)
        );
        // One GPU cannot shard a 110B model's optimizer state alone.
        match p.search_checked(&snapshot, &gpu_ids(1)) {
            Err(PlanError::InfeasibleConfiguration { backend, .. }) => {
                assert_eq!(backend, "deepspeed");
            }
            other => panic!("expected InfeasibleConfiguration, got {other:?}"),
        }
    }

    #[test]
    fn failed_gpu_prevents_execution() {
        let p = planner(ModelSpec::llama2_7b());
        let mut cluster = Cluster::paper_testbed();
        let (config, _) = p.search(&cluster.snapshot(), &gpu_ids(64)).unwrap();
        cluster.set_rate(GpuId(3), f64::INFINITY);
        assert!(p
            .simulate_step(&cluster.snapshot(), &gpu_ids(64), &config)
            .is_none());
    }
}
