//! Megatron-LM-style uniform 3D parallelism.
//!
//! Megatron-LM partitions the cluster into a `DP × PP × TP` grid, splits the
//! model layers evenly across pipeline stages and the global batch evenly
//! across data-parallel replicas.  The configuration is tuned for the healthy
//! cluster and never adapts to stragglers, so when one appears the whole job is
//! gated by the slowest participant — this is the behaviour Table 2 measures.

use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_core::{CostModel, ParallelizationPlan, PlanError};
use malleus_model::ProfiledCoefficients;
use malleus_sim::TrainingSimulator;
use serde::{Deserialize, Serialize};

/// A concrete Megatron-LM parallel configuration (cf. Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MegatronConfig {
    /// Data-parallel degree.
    pub dp: usize,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Pipeline-parallel degree.
    pub pp: usize,
    /// Micro-batch size.
    pub micro_batch_size: u64,
    /// Whether activation checkpointing is required to fit in memory.
    pub activation_checkpointing: bool,
}

impl std::fmt::Display for MegatronConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DP{}TP{}PP{}{}, mbs{}",
            self.dp,
            self.tp,
            self.pp,
            if self.activation_checkpointing {
                "+AC"
            } else {
                ""
            },
            self.micro_batch_size
        )
    }
}

/// Planner/searcher for uniform Megatron-LM configurations.
#[derive(Debug, Clone)]
pub struct MegatronPlanner {
    /// Profiled coefficients (shared with Malleus for a fair comparison).
    pub coeffs: ProfiledCoefficients,
    /// Global batch size.
    pub global_batch_size: u64,
    /// GPUs per node (TP must stay within a node).
    pub gpus_per_node: u32,
}

/// Extra compute factor paid when activation checkpointing recomputes the
/// forward pass during backward (4 passes instead of 3).
pub const ACTIVATION_CHECKPOINT_SLOWDOWN: f64 = 4.0 / 3.0;

impl MegatronPlanner {
    /// Create a planner.
    pub fn new(coeffs: ProfiledCoefficients, global_batch_size: u64, gpus_per_node: u32) -> Self {
        Self {
            coeffs,
            global_batch_size,
            gpus_per_node,
        }
    }

    fn cost_with_ac(&self, activation_checkpointing: bool) -> CostModel {
        let mut coeffs = self.coeffs.clone();
        if activation_checkpointing {
            coeffs.memory = malleus_model::MemoryModel::with_activation_checkpointing();
        }
        CostModel::new(coeffs)
    }

    /// Build the uniform plan for a given configuration over the given GPUs,
    /// returning `None` if the configuration is structurally or memory
    /// infeasible.
    pub fn plan_with_config(
        &self,
        gpus: &[GpuId],
        config: &MegatronConfig,
    ) -> Option<ParallelizationPlan> {
        let needed = config.dp * config.pp * config.tp as usize;
        if needed > gpus.len() || config.tp > self.gpus_per_node {
            return None;
        }
        if !self
            .global_batch_size
            .is_multiple_of(config.dp as u64 * config.micro_batch_size)
        {
            return None;
        }
        let plan = ParallelizationPlan::uniform(
            gpus,
            config.dp,
            config.pp,
            config.tp,
            self.coeffs.spec.num_layers,
            self.global_batch_size,
            config.micro_batch_size,
        )
        .ok()?;
        let cost = self.cost_with_ac(config.activation_checkpointing);
        if !cost.memory_feasible(&plan) {
            return None;
        }
        Some(plan)
    }

    /// Search the best configuration for a healthy cluster of `gpus` devices,
    /// exactly like an engineer tuning Megatron-LM offline (the paper tunes the
    /// baselines per task, Tables 6–7).  Returns the configuration, its plan
    /// and the simulated healthy step time.
    pub fn search(&self, gpus: &[GpuId]) -> Option<(MegatronConfig, ParallelizationPlan, f64)> {
        let n = gpus.len();
        // The snapshot must be indexable by the *global* GPU ids appearing in
        // the plan (the GPU set may be a subset of the cluster, e.g. after
        // excluding straggling nodes).
        let universe = gpus.iter().map(|g| g.index() + 1).max().unwrap_or(0);
        let healthy = ClusterSnapshot {
            num_nodes: universe.div_ceil(self.gpus_per_node as usize),
            node_of: (0..universe)
                .map(|i| (i / self.gpus_per_node as usize) as u32)
                .collect(),
            rates: vec![1.0; universe],
        };
        let mut best: Option<(MegatronConfig, ParallelizationPlan, f64)> = None;
        for tp in [1u32, 2, 4, 8] {
            if tp > self.gpus_per_node {
                continue;
            }
            for pp in 1..=(n / tp as usize).min(self.coeffs.spec.num_layers as usize) {
                let denom = tp as usize * pp;
                if !n.is_multiple_of(denom) {
                    continue;
                }
                let dp = n / denom;
                if !self.global_batch_size.is_multiple_of(dp as u64) {
                    continue;
                }
                for mbs in [1u64, 2, 4, 8] {
                    for ac in [false, true] {
                        let config = MegatronConfig {
                            dp,
                            tp,
                            pp,
                            micro_batch_size: mbs,
                            activation_checkpointing: ac,
                        };
                        let Some(plan) = self.plan_with_config(gpus, &config) else {
                            continue;
                        };
                        let Some(time) = self.simulate_step(&plan, &healthy, ac) else {
                            continue;
                        };
                        if best.as_ref().map(|(_, _, t)| time < *t).unwrap_or(true) {
                            best = Some((config, plan, time));
                        }
                        // Prefer the cheaper non-AC variant when both fit.
                        if !ac {
                            break;
                        }
                    }
                }
            }
        }
        best
    }

    /// Like [`Self::search`], but with typed errors for degenerate inputs: an
    /// empty GPU set reports [`PlanError::NoUsableGpus`], an exhausted
    /// configuration grid [`PlanError::InfeasibleConfiguration`].
    pub fn search_checked(
        &self,
        gpus: &[GpuId],
    ) -> Result<(MegatronConfig, ParallelizationPlan, f64), PlanError> {
        if gpus.is_empty() {
            return Err(PlanError::NoUsableGpus);
        }
        self.search(gpus)
            .ok_or_else(|| PlanError::InfeasibleConfiguration {
                backend: "megatron".into(),
                reason: format!(
                    "no DP×TP×PP configuration over {} GPUs fits batch {} in memory",
                    gpus.len(),
                    self.global_batch_size
                ),
            })
    }

    /// Whether [`Self::search`] would have chosen activation checkpointing for
    /// this plan: the search prefers the cheaper non-AC variant and only
    /// enables AC when the plan does not fit in memory without it.
    pub fn requires_activation_checkpointing(&self, plan: &ParallelizationPlan) -> bool {
        !CostModel::new(self.coeffs.clone()).memory_feasible(plan)
    }

    /// Simulate one step of a uniform plan under a straggler situation.
    pub fn simulate_step(
        &self,
        plan: &ParallelizationPlan,
        snapshot: &ClusterSnapshot,
        activation_checkpointing: bool,
    ) -> Option<f64> {
        let mut coeffs = self.coeffs.clone();
        if activation_checkpointing {
            coeffs.memory = malleus_model::MemoryModel::with_activation_checkpointing();
        }
        let sim = TrainingSimulator::new(coeffs);
        let report = sim.step(plan, snapshot).ok()?;
        let factor = if activation_checkpointing {
            ACTIVATION_CHECKPOINT_SLOWDOWN
        } else {
            1.0
        };
        Some(report.step_time * factor)
    }

    /// Simulated MFU of a plan on a healthy cluster (reported in Table 2).
    pub fn mfu(&self, plan: &ParallelizationPlan, snapshot: &ClusterSnapshot) -> Option<f64> {
        let sim = TrainingSimulator::new(self.coeffs.clone());
        sim.step(plan, snapshot).ok().map(|r| r.mfu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::Cluster;
    use malleus_model::{HardwareParams, ModelSpec};

    fn planner(spec: ModelSpec, batch: u64) -> MegatronPlanner {
        MegatronPlanner::new(
            ProfiledCoefficients::derive(spec, HardwareParams::a800_cluster()),
            batch,
            8,
        )
    }

    fn gpu_ids(n: u32) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    #[test]
    fn search_finds_a_feasible_config_for_32b_on_32_gpus() {
        let p = planner(ModelSpec::llama2_32b(), 64);
        let (config, plan, time) = p.search(&gpu_ids(32)).expect("config");
        assert_eq!(config.dp * config.pp * config.tp as usize, 32);
        plan.validate(60, 64).unwrap();
        assert!(time > 1.0 && time < 60.0, "step {time}");
    }

    #[test]
    fn search_finds_a_feasible_config_for_110b_on_64_gpus() {
        // The paper's tuned config is DP2 TP8 PP4; our search should find
        // something with a comparable TP degree (the 110B model cannot fit with
        // tiny TP without activation checkpointing everywhere).
        let p = planner(ModelSpec::llama2_110b(), 64);
        let (config, plan, _) = p.search(&gpu_ids(64)).expect("config");
        assert!(config.tp >= 4, "chose {config}");
        plan.validate(80, 64).unwrap();
    }

    #[test]
    fn straggler_slows_uniform_plan_by_roughly_its_rate() {
        let p = planner(ModelSpec::llama2_32b(), 64);
        let (config, plan, healthy_time) = p.search(&gpu_ids(32)).unwrap();
        let mut cluster = Cluster::homogeneous(4, 8);
        cluster.set_rate(GpuId(0), 5.42);
        let straggled = p
            .simulate_step(&plan, &cluster.snapshot(), config.activation_checkpointing)
            .unwrap();
        let slowdown = straggled / healthy_time;
        assert!(slowdown > 2.5, "slowdown {slowdown}");
        assert!(slowdown < 6.0, "slowdown {slowdown}");
    }

    #[test]
    fn infeasible_configs_are_rejected() {
        let p = planner(ModelSpec::llama2_110b(), 64);
        // TP1/PP1/DP64 cannot hold a 110B model on one GPU.
        let config = MegatronConfig {
            dp: 64,
            tp: 1,
            pp: 1,
            micro_batch_size: 1,
            activation_checkpointing: false,
        };
        assert!(p.plan_with_config(&gpu_ids(64), &config).is_none());
        // TP16 exceeds the node size.
        let config = MegatronConfig {
            dp: 2,
            tp: 16,
            pp: 2,
            micro_batch_size: 1,
            activation_checkpointing: false,
        };
        assert!(p.plan_with_config(&gpu_ids(64), &config).is_none());
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let p = planner(ModelSpec::llama2_110b(), 64);
        assert_eq!(p.search_checked(&[]), Err(PlanError::NoUsableGpus));
        // A single GPU cannot hold the 110B model under any configuration.
        match p.search_checked(&gpu_ids(1)) {
            Err(PlanError::InfeasibleConfiguration { backend, .. }) => {
                assert_eq!(backend, "megatron");
            }
            other => panic!("expected InfeasibleConfiguration, got {other:?}"),
        }
    }

    #[test]
    fn config_display_matches_paper_notation() {
        let config = MegatronConfig {
            dp: 2,
            tp: 8,
            pp: 4,
            micro_batch_size: 1,
            activation_checkpointing: true,
        };
        assert_eq!(config.to_string(), "DP2TP8PP4+AC, mbs1");
    }
}
