//! Oobleck-style fault-tolerant baseline (Figure 8).
//!
//! Oobleck (SOSP'23) prepares a set of *pipeline templates* ahead of time and
//! reconfigures among them when nodes fail.  Used for straggler mitigation (by
//! treating stragglers as faults), it has two structural handicaps the paper
//! measures:
//!
//! 1. it pays a standing efficiency tax even with no stragglers, because its
//!    parallelization is constrained to fault-tolerant templates rather than
//!    the throughput-optimal configuration;
//! 2. it can only migrate between precomputed templates — node counts outside
//!    the covered range, or re-admitting recovered nodes, force a full restart.

use crate::megatron::MegatronPlanner;
use crate::restart::{gpus_on_nodes, nodes_without_stragglers};
use malleus_cluster::ClusterSnapshot;
use malleus_core::PlanError;
use malleus_model::ProfiledCoefficients;
use malleus_sim::restart_time;
use serde::{Deserialize, Serialize};

/// How Oobleck handled a change in the straggler situation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OobleckTransition {
    /// The node set did not change; keep training.
    NoChange,
    /// Reconfigured by instantiating a smaller precomputed template.
    Migrated,
    /// No covering template exists (or nodes must be re-admitted); restart.
    Restarted,
}

/// Outcome of one Oobleck phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OobleckOutcome {
    /// Nodes participating after the transition.
    pub nodes_used: Vec<u32>,
    /// Step time during the phase.
    pub step_time: f64,
    /// How the transition was handled.
    pub transition: OobleckTransition,
    /// One-off transition cost in seconds (migration or restart).
    pub transition_cost: f64,
}

/// Oobleck baseline planner.
#[derive(Debug, Clone)]
pub struct OobleckPlanner {
    /// Profiled coefficients.
    pub coeffs: ProfiledCoefficients,
    /// Global batch size.
    pub global_batch_size: u64,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// Standing efficiency tax of the fault-tolerant parallelization (Figure 8
    /// measures Oobleck at 1.8–2.5× the step time of Malleus).
    pub overhead_factor: f64,
    /// Templates cover losing up to this many nodes from the initial set.
    pub template_depth: usize,
    /// Straggler detection threshold.
    pub threshold: f64,
    /// Time of one template-based reconfiguration (migration), seconds.
    pub migration_seconds: f64,
}

impl OobleckPlanner {
    /// Create an Oobleck planner with the defaults used in Figure 8.
    pub fn new(coeffs: ProfiledCoefficients, global_batch_size: u64, gpus_per_node: u32) -> Self {
        Self {
            coeffs,
            global_batch_size,
            gpus_per_node,
            overhead_factor: 1.9,
            template_depth: 2,
            threshold: 1.05,
            migration_seconds: 7.5,
        }
    }

    /// Handle a straggler-situation change.  `previous_nodes` is the node set
    /// in use before the change and `initial_nodes` the original (healthy)
    /// node count the templates were generated for.
    pub fn handle_situation(
        &self,
        snapshot: &ClusterSnapshot,
        previous_nodes: &[u32],
        initial_nodes: usize,
    ) -> Option<OobleckOutcome> {
        let nodes = nodes_without_stragglers(snapshot, self.threshold);
        if nodes.is_empty() {
            return None;
        }
        let transition = if nodes == previous_nodes {
            OobleckTransition::NoChange
        } else {
            let lost_from_initial = initial_nodes.saturating_sub(nodes.len());
            let shrinking = nodes.len() < previous_nodes.len();
            if shrinking && lost_from_initial <= self.template_depth {
                OobleckTransition::Migrated
            } else {
                // Growing back (re-admitting recovered nodes) or falling outside
                // the template coverage requires a restart.
                OobleckTransition::Restarted
            }
        };
        let gpus = gpus_on_nodes(snapshot, &nodes);
        let healthy = ClusterSnapshot {
            num_nodes: snapshot.num_nodes,
            node_of: snapshot.node_of.clone(),
            rates: vec![1.0; snapshot.num_gpus()],
        };
        let planner = MegatronPlanner::new(
            self.coeffs.clone(),
            self.global_batch_size,
            self.gpus_per_node,
        );
        let (config, plan, _) = planner.search(&gpus)?;
        let base_time = planner.simulate_step(&plan, &healthy, config.activation_checkpointing)?;
        let transition_cost = match transition {
            OobleckTransition::NoChange => 0.0,
            OobleckTransition::Migrated => self.migration_seconds,
            OobleckTransition::Restarted => restart_time(&self.coeffs, nodes.len()),
        };
        Some(OobleckOutcome {
            nodes_used: nodes,
            step_time: base_time * self.overhead_factor,
            transition,
            transition_cost,
        })
    }

    /// Like [`Self::handle_situation`], but with typed errors: an all-straggler
    /// cluster reports [`PlanError::NoHealthyNodes`], an exhausted template
    /// search [`PlanError::InfeasibleConfiguration`].
    pub fn handle_situation_checked(
        &self,
        snapshot: &ClusterSnapshot,
        previous_nodes: &[u32],
        initial_nodes: usize,
    ) -> Result<OobleckOutcome, PlanError> {
        let nodes = nodes_without_stragglers(snapshot, self.threshold);
        if nodes.is_empty() {
            return Err(PlanError::NoHealthyNodes);
        }
        self.handle_situation(snapshot, previous_nodes, initial_nodes)
            .ok_or_else(|| PlanError::InfeasibleConfiguration {
                backend: "oobleck".into(),
                reason: format!(
                    "no pipeline template fits on {} straggler-free nodes",
                    nodes.len()
                ),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, PaperSituation};
    use malleus_model::{HardwareParams, ModelSpec};

    fn planner() -> OobleckPlanner {
        OobleckPlanner::new(
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster()),
            64,
            8,
        )
    }

    fn snapshot_for(situation: PaperSituation) -> ClusterSnapshot {
        let mut cluster = Cluster::homogeneous(4, 8);
        let sit = situation.situation(&cluster);
        cluster.apply_situation(&sit.rates);
        cluster.snapshot()
    }

    #[test]
    fn oobleck_pays_a_standing_overhead() {
        let p = planner();
        let normal = snapshot_for(PaperSituation::Normal);
        let all_nodes = vec![0, 1, 2, 3];
        let outcome = p.handle_situation(&normal, &all_nodes, 4).unwrap();
        assert_eq!(outcome.transition, OobleckTransition::NoChange);
        // Compare against the plain Megatron search time: Oobleck must be slower.
        let mp = MegatronPlanner::new(p.coeffs.clone(), 64, 8);
        let gpus = gpus_on_nodes(&normal, &all_nodes);
        let (_, _, megatron_time) = mp.search(&gpus).unwrap();
        assert!(outcome.step_time > megatron_time * 1.5);
    }

    #[test]
    fn losing_one_or_two_nodes_migrates() {
        let p = planner();
        let s1 = snapshot_for(PaperSituation::S1);
        let outcome = p.handle_situation(&s1, &[0, 1, 2, 3], 4).unwrap();
        assert_eq!(outcome.transition, OobleckTransition::Migrated);
        assert!(outcome.transition_cost < 60.0);
        let s3 = snapshot_for(PaperSituation::S3);
        let outcome = p.handle_situation(&s3, &[1, 2, 3], 4).unwrap();
        assert_eq!(outcome.transition, OobleckTransition::Migrated);
    }

    #[test]
    fn all_straggler_cluster_yields_typed_error() {
        let p = planner();
        let mut cluster = Cluster::homogeneous(2, 8);
        for gpu in 0..16 {
            cluster.set_rate(malleus_cluster::GpuId(gpu), 1.5);
        }
        let err = p
            .handle_situation_checked(&cluster.snapshot(), &[0, 1], 2)
            .unwrap_err();
        assert_eq!(err, PlanError::NoHealthyNodes);
    }

    #[test]
    fn losing_three_nodes_or_readding_nodes_restarts() {
        let p = planner();
        // S4 stragglers live on three different nodes: beyond template depth.
        let s4 = snapshot_for(PaperSituation::S4);
        let outcome = p.handle_situation(&s4, &[2, 3], 4).unwrap();
        assert_eq!(outcome.transition, OobleckTransition::Restarted);
        assert!(outcome.transition_cost > 100.0);
        // Recovering to Normal re-admits nodes, which also needs a restart.
        let normal = snapshot_for(PaperSituation::Normal);
        let outcome = p.handle_situation(&normal, &[1, 2, 3], 4).unwrap();
        assert_eq!(outcome.transition, OobleckTransition::Restarted);
    }
}
