//! The "w/ Restart" baselines: exclude straggling nodes, re-tune the parallel
//! configuration and restart the job from a checkpoint (§7.2).
//!
//! This is the manual remediation the paper contrasts against Malleus: it
//! removes stragglers at *node* granularity (wasting the healthy GPUs that
//! share a node with a straggler), needs a fresh configuration search for every
//! new node count (Tables 6–7) and pays a restart overhead of minutes.

use crate::deepspeed::DeepSpeedPlanner;
use crate::megatron::MegatronPlanner;
use malleus_cluster::{ClusterSnapshot, GpuId};
use malleus_core::PlanError;
use malleus_model::ProfiledCoefficients;
use malleus_sim::restart_time;
use serde::{Deserialize, Serialize};

/// Nodes that contain no straggling GPU (rate above `threshold`).
pub fn nodes_without_stragglers(snapshot: &ClusterSnapshot, threshold: f64) -> Vec<u32> {
    (0..snapshot.num_nodes as u32)
        .filter(|&node| {
            snapshot
                .gpus_on_node(node)
                .iter()
                .all(|g| snapshot.rate(*g) <= threshold)
        })
        .collect()
}

/// GPUs hosted on the given nodes, in id order.
pub fn gpus_on_nodes(snapshot: &ClusterSnapshot, nodes: &[u32]) -> Vec<GpuId> {
    let mut gpus: Vec<GpuId> = nodes
        .iter()
        .flat_map(|&n| snapshot.gpus_on_node(n))
        .collect();
    gpus.sort();
    gpus
}

/// Which baseline family a restart planner retunes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartFamily {
    /// Megatron-LM (3D parallel).
    Megatron,
    /// DeepSpeed (ZeRO-3).
    DeepSpeed,
}

/// Outcome of handling one straggler situation with the restart strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestartOutcome {
    /// Nodes kept in the job.
    pub nodes_used: Vec<u32>,
    /// Human-readable configuration chosen after the restart.
    pub config: String,
    /// Step time after the restart (stragglers excluded).
    pub step_time: f64,
    /// One-off restart cost (checkpoint save + re-init + load), seconds.
    pub restart_cost: f64,
    /// Whether a restart was actually needed (the node set changed).
    pub restarted: bool,
}

/// Restart-based straggler handling for either baseline family.
#[derive(Debug, Clone)]
pub struct RestartPlanner {
    /// Which baseline is being restarted.
    pub family: RestartFamily,
    /// Profiled coefficients.
    pub coeffs: ProfiledCoefficients,
    /// Global batch size.
    pub global_batch_size: u64,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// Straggler detection threshold.
    pub threshold: f64,
}

impl RestartPlanner {
    /// Create a restart planner.
    pub fn new(
        family: RestartFamily,
        coeffs: ProfiledCoefficients,
        global_batch_size: u64,
        gpus_per_node: u32,
    ) -> Self {
        Self {
            family,
            coeffs,
            global_batch_size,
            gpus_per_node,
            threshold: 1.05,
        }
    }

    /// Handle a straggler situation: exclude straggling nodes, re-tune, and
    /// report the resulting step time plus the restart cost.  `previous_nodes`
    /// is the node set used before the situation changed (to detect whether a
    /// restart is needed at all).
    pub fn handle_situation(
        &self,
        snapshot: &ClusterSnapshot,
        previous_nodes: Option<&[u32]>,
    ) -> Option<RestartOutcome> {
        let nodes = nodes_without_stragglers(snapshot, self.threshold);
        if nodes.is_empty() {
            return None;
        }
        let restarted = previous_nodes
            .map(|p| p != nodes.as_slice())
            .unwrap_or(false);
        let gpus = gpus_on_nodes(snapshot, &nodes);
        // After excluding straggling nodes the remaining GPUs are all healthy,
        // so simulate on an all-healthy snapshot restricted to those GPUs.
        let healthy = ClusterSnapshot {
            num_nodes: snapshot.num_nodes,
            node_of: snapshot.node_of.clone(),
            rates: vec![1.0; snapshot.num_gpus()],
        };
        let restart_cost = if restarted {
            restart_time(&self.coeffs, nodes.len())
        } else {
            0.0
        };
        match self.family {
            RestartFamily::Megatron => {
                let planner = MegatronPlanner::new(
                    self.coeffs.clone(),
                    self.global_batch_size,
                    self.gpus_per_node,
                );
                let (config, plan, _) = planner.search(&gpus)?;
                let step_time =
                    planner.simulate_step(&plan, &healthy, config.activation_checkpointing)?;
                Some(RestartOutcome {
                    nodes_used: nodes,
                    config: config.to_string(),
                    step_time,
                    restart_cost,
                    restarted,
                })
            }
            RestartFamily::DeepSpeed => {
                let planner = DeepSpeedPlanner::new(self.coeffs.clone(), self.global_batch_size);
                let (config, step_time) = planner.search(&healthy, &gpus)?;
                Some(RestartOutcome {
                    nodes_used: nodes,
                    config: config.to_string(),
                    step_time,
                    restart_cost,
                    restarted,
                })
            }
        }
    }

    /// Like [`Self::handle_situation`], but with typed errors: an all-straggler
    /// cluster reports [`PlanError::NoHealthyNodes`], an exhausted
    /// configuration search [`PlanError::InfeasibleConfiguration`].
    pub fn handle_situation_checked(
        &self,
        snapshot: &ClusterSnapshot,
        previous_nodes: Option<&[u32]>,
    ) -> Result<RestartOutcome, PlanError> {
        let nodes = nodes_without_stragglers(snapshot, self.threshold);
        if nodes.is_empty() {
            return Err(PlanError::NoHealthyNodes);
        }
        let backend = match self.family {
            RestartFamily::Megatron => "megatron-restart",
            RestartFamily::DeepSpeed => "deepspeed-restart",
        };
        self.handle_situation(snapshot, previous_nodes)
            .ok_or_else(|| PlanError::InfeasibleConfiguration {
                backend: backend.into(),
                reason: format!(
                    "no tuned configuration over {} straggler-free nodes is feasible",
                    nodes.len()
                ),
            })
    }

    /// The tuned configuration table across node counts (reproduces the shape
    /// of Tables 6–7: one entry per distinct number of excluded nodes).
    pub fn config_table(
        &self,
        snapshot: &ClusterSnapshot,
        excluded_node_counts: &[usize],
    ) -> Vec<(usize, String)> {
        let mut rows = Vec::new();
        for &excluded in excluded_node_counts {
            if excluded >= snapshot.num_nodes {
                continue;
            }
            let nodes: Vec<u32> = (excluded as u32..snapshot.num_nodes as u32).collect();
            let gpus = gpus_on_nodes(snapshot, &nodes);
            let healthy = ClusterSnapshot {
                num_nodes: snapshot.num_nodes,
                node_of: snapshot.node_of.clone(),
                rates: vec![1.0; snapshot.num_gpus()],
            };
            let config = match self.family {
                RestartFamily::Megatron => MegatronPlanner::new(
                    self.coeffs.clone(),
                    self.global_batch_size,
                    self.gpus_per_node,
                )
                .search(&gpus)
                .map(|(c, _, _)| c.to_string()),
                RestartFamily::DeepSpeed => {
                    DeepSpeedPlanner::new(self.coeffs.clone(), self.global_batch_size)
                        .search(&healthy, &gpus)
                        .map(|(c, _)| c.to_string())
                }
            };
            rows.push((excluded, config.unwrap_or_else(|| "infeasible".to_string())));
        }
        rows
    }
}

#[allow(unused_imports)]
pub use RestartFamily::{DeepSpeed, Megatron};

#[cfg(test)]
mod tests {
    use super::*;
    use malleus_cluster::{Cluster, PaperSituation};
    use malleus_model::{HardwareParams, ModelSpec};

    fn snapshot_for(situation: PaperSituation) -> ClusterSnapshot {
        let mut cluster = Cluster::homogeneous(4, 8);
        let sit = situation.situation(&cluster);
        cluster.apply_situation(&sit.rates);
        cluster.snapshot()
    }

    #[test]
    fn straggling_nodes_are_identified() {
        let s = snapshot_for(PaperSituation::S3);
        // S3 places stragglers on nodes 0 and 1.
        assert_eq!(nodes_without_stragglers(&s, 1.05), vec![2, 3]);
        let healthy = snapshot_for(PaperSituation::Normal);
        assert_eq!(nodes_without_stragglers(&healthy, 1.05).len(), 4);
    }

    #[test]
    fn restart_excludes_straggling_nodes_and_pays_overhead() {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let planner = RestartPlanner::new(RestartFamily::Megatron, coeffs, 64, 8);
        let s = snapshot_for(PaperSituation::S1);
        let outcome = planner
            .handle_situation(&s, Some(&[0, 1, 2, 3]))
            .expect("outcome");
        assert_eq!(outcome.nodes_used, vec![1, 2, 3]);
        assert!(outcome.restarted);
        assert!(
            outcome.restart_cost > 60.0,
            "restart {}",
            outcome.restart_cost
        );
        assert!(outcome.step_time > 1.0);
    }

    #[test]
    fn no_restart_when_node_set_is_unchanged() {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let planner = RestartPlanner::new(RestartFamily::Megatron, coeffs, 64, 8);
        let s = snapshot_for(PaperSituation::S1);
        let outcome = planner.handle_situation(&s, Some(&[1, 2, 3])).unwrap();
        assert!(!outcome.restarted);
        assert_eq!(outcome.restart_cost, 0.0);
    }

    #[test]
    fn deepspeed_restart_also_works() {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let planner = RestartPlanner::new(RestartFamily::DeepSpeed, coeffs, 64, 8);
        let s = snapshot_for(PaperSituation::S2);
        let outcome = planner.handle_situation(&s, None).unwrap();
        assert!(outcome.config.starts_with("DP"));
        assert!(outcome.step_time > 1.0);
    }

    #[test]
    fn degenerate_snapshots_yield_typed_errors() {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let planner = RestartPlanner::new(RestartFamily::Megatron, coeffs, 64, 8);
        // Every node hosts a straggler: nothing survives node-level exclusion.
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(0), 1.5);
        cluster.set_rate(GpuId(8), f64::INFINITY);
        let err = planner
            .handle_situation_checked(&cluster.snapshot(), None)
            .unwrap_err();
        assert_eq!(err, PlanError::NoHealthyNodes);
        // A zero-GPU cluster has no healthy nodes either.
        let empty = ClusterSnapshot {
            num_nodes: 0,
            node_of: vec![],
            rates: vec![],
        };
        assert_eq!(
            planner.handle_situation_checked(&empty, None).unwrap_err(),
            PlanError::NoHealthyNodes
        );
    }

    #[test]
    fn config_table_has_one_row_per_node_count() {
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_32b(), HardwareParams::a800_cluster());
        let planner = RestartPlanner::new(RestartFamily::Megatron, coeffs, 64, 8);
        let s = snapshot_for(PaperSituation::Normal);
        let table = planner.config_table(&s, &[0, 1, 2, 3]);
        assert_eq!(table.len(), 4);
        assert!(table
            .iter()
            .all(|(_, c)| c.contains("TP") || c == "infeasible"));
    }
}
