//! Division-solver micro-benchmark: the frozen seed reference
//! (`malleus_solver::reference`) vs the allocation-free scratch-arena solver,
//! serial and parallel, with byte-identity asserted on every instance.
//!
//! ```bash
//! cargo bench -p malleus-bench --bench division_bench            # full
//! cargo bench -p malleus-bench --bench division_bench -- --smoke # CI mode
//! ```
//!
//! `--smoke` runs one timing iteration per cell instead of taking the best of
//! several; the identity assertions run in both modes.

use malleus_bench::table::Table;
use malleus_solver::reference::divide_pipelines_reference;
use malleus_solver::{divide_pipelines, divide_pipelines_parallel, Division, DivisionProblem};
use std::hint::black_box;
use std::time::Instant;

struct Case {
    label: &'static str,
    problem: DivisionProblem,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "dp2_ms2_fast6 (64-GPU S3 shape)",
            problem: DivisionProblem::new(2, 6, 0.17, vec![0.4, 0.9], 64),
        },
        Case {
            label: "dp8_ms4_fast24 (4k candidates)",
            problem: DivisionProblem::new(8, 24, 1.0, vec![2.0, 3.0, 2.5, 4.0], 256),
        },
        Case {
            label: "dp8_ms5_fast120 (32k candidates, paper fast pool)",
            problem: DivisionProblem::new(8, 120, 0.17, vec![0.4, 0.45, 0.5, 0.55, 0.6], 1024),
        },
        Case {
            label: "dp16_ms4_fast48 (65k candidates)",
            problem: DivisionProblem::new(16, 48, 1.0, vec![2.0, 2.5, 3.0, 3.5], 512),
        },
        Case {
            label: "dp4_ms8_fast12 (65k candidates, slow-heavy)",
            problem: DivisionProblem::new(
                4,
                12,
                1.0,
                vec![2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5],
                256,
            ),
        },
        Case {
            label: "dp8_ms16_fast120 (local search)",
            problem: DivisionProblem::new(
                8,
                120,
                1.0,
                (0..16).map(|i| 2.0 + i as f64 * 0.25).collect(),
                1024,
            ),
        },
    ]
}

fn best_secs(iters: usize, mut f: impl FnMut() -> Division) -> (f64, Division) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let d = black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(d);
    }
    (best, out.expect("at least one iteration"))
}

fn assert_bitwise_equal(a: &Division, b: &Division, label: &str) {
    assert_eq!(a.fast_per_pipeline, b.fast_per_pipeline, "{label}");
    assert_eq!(a.slow_assignment, b.slow_assignment, "{label}");
    assert_eq!(a.micro_batches, b.micro_batches, "{label}");
    assert_eq!(
        a.objective.to_bits(),
        b.objective.to_bits(),
        "{label}: objective {} vs {}",
        a.objective,
        b.objective
    );
    let ca: Vec<u64> = a.capacities.iter().map(|c| c.to_bits()).collect();
    let cb: Vec<u64> = b.capacities.iter().map(|c| c.to_bits()).collect();
    assert_eq!(ca, cb, "{label}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 1 } else { 5 };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    println!(
        "Division-solver micro-benchmark (best of {iters}, parallel at {workers} workers){}",
        if smoke { " [smoke]" } else { "" }
    );

    let mut table = Table::new([
        "instance",
        "seed ref (ms)",
        "optimized (ms)",
        "parallel (ms)",
        "speedup",
        "speedup (par)",
    ]);
    let mut worst_serial = f64::INFINITY;
    let mut worst_parallel = f64::INFINITY;
    for case in cases() {
        let p = &case.problem;
        let (ref_secs, ref_d) =
            best_secs(iters, || divide_pipelines_reference(p).expect("reference"));
        let (opt_secs, opt_d) = best_secs(iters, || divide_pipelines(p).expect("optimized"));
        let (par_secs, par_d) = best_secs(iters, || {
            divide_pipelines_parallel(p, workers).expect("parallel")
        });
        assert_bitwise_equal(&opt_d, &ref_d, case.label);
        assert_bitwise_equal(&par_d, &ref_d, case.label);
        let speedup = ref_secs / opt_secs.max(1e-12);
        let speedup_par = ref_secs / par_secs.max(1e-12);
        worst_serial = worst_serial.min(speedup);
        worst_parallel = worst_parallel.min(speedup_par);
        table.row([
            case.label.to_string(),
            format!("{:.2}", ref_secs * 1e3),
            format!("{:.2}", opt_secs * 1e3),
            format!("{:.2}", par_secs * 1e3),
            format!("{speedup:.2}x"),
            format!("{speedup_par:.2}x"),
        ]);
    }
    table.print();
    println!(
        "\nAll instances byte-identical to the seed reference. Worst-case speedup: {worst_serial:.2}x serial, {worst_parallel:.2}x parallel."
    );
}
