//! Criterion benchmarks for the training-step simulator and migration planner.

use criterion::{criterion_group, criterion_main, Criterion};
use malleus_bench::paper_workloads;
use malleus_cluster::PaperSituation;
use malleus_core::plan_migration;
use malleus_sim::{migration_time, TrainingSimulator};
use std::hint::black_box;

fn bench_step_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_step");
    for workload in paper_workloads() {
        let planner = workload.planner();
        let snapshot = workload.snapshot_for(PaperSituation::S3);
        let outcome = planner.plan(&snapshot).unwrap();
        let simulator = TrainingSimulator::new(workload.coeffs());
        group.bench_function(workload.label, |b| {
            b.iter(|| {
                simulator
                    .step(black_box(&outcome.plan), black_box(&snapshot))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_migration_planning(c: &mut Criterion) {
    let workload = &paper_workloads()[0];
    let planner = workload.planner();
    let healthy = workload.snapshot_for(PaperSituation::Normal);
    let straggled = workload.snapshot_for(PaperSituation::S5);
    let before = planner.plan(&healthy).unwrap().plan;
    let after = planner.replan(&straggled, &before).unwrap().plan;
    let coeffs = workload.coeffs();
    c.bench_function("plan_migration_32B_S5", |b| {
        b.iter(|| {
            let migration = plan_migration(black_box(&before), black_box(&after), &coeffs);
            migration_time(&coeffs, &straggled, &migration)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_step_simulation, bench_migration_planning
}
criterion_main!(benches);
