//! Criterion micro-benchmarks for the ILP / MINLP solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use malleus_solver::{divide_pipelines, solve_minmax_allocation, DivisionProblem};
use std::hint::black_box;

fn bench_minmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("minmax_allocation");
    for &(slots, total) in &[(4usize, 80u64), (16, 80), (64, 1024)] {
        let weights: Vec<f64> = (0..slots)
            .map(|i| if i % 7 == 0 { 2.57 } else { 1.0 })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{slots}slots_{total}units")),
            &(weights, total),
            |b, (weights, total)| {
                b.iter(|| solve_minmax_allocation(black_box(weights), black_box(*total), &[]))
            },
        );
    }
    group.finish();
}

fn bench_division(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_division");
    // Paper-scale instance: 8 pipelines out of ~120 fast + 16 slow groups.
    let large = DivisionProblem::new(
        8,
        120,
        0.17,
        (0..16).map(|i| 0.4 + i as f64 * 0.05).collect(),
        1024,
    );
    // 64-GPU instance: 2 pipelines, 6 fast groups, 2 slow groups.
    let small = DivisionProblem::new(2, 6, 0.17, vec![0.4, 0.9], 64);
    group.bench_function("64gpu_S3", |b| {
        b.iter(|| divide_pipelines(black_box(&small)))
    });
    group.bench_function("1024gpu_32stragglers", |b| {
        b.iter(|| divide_pipelines(black_box(&large)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_minmax, bench_division
}
criterion_main!(benches);
