//! Criterion benchmarks for the Malleus planning algorithm and its phases.

use criterion::{criterion_group, criterion_main, Criterion};
use malleus_bench::{paper_workloads, ScenarioMatrix};
use malleus_cluster::PaperSituation;
use malleus_core::{grouping::group_cluster, CostModel, Parallelism};
use std::hint::black_box;

fn bench_full_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);
    for workload in paper_workloads() {
        let planner = workload.planner();
        for situation in [PaperSituation::Normal, PaperSituation::S4] {
            let snapshot = workload.snapshot_for(situation);
            group.bench_function(format!("{}_{}", workload.label, situation.name()), |b| {
                b.iter(|| planner.plan(black_box(&snapshot)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let workload = &paper_workloads()[2];
    let coeffs = workload.coeffs();
    let snapshot = workload.snapshot_for(PaperSituation::S5);
    c.bench_function("grouping_110B_S5_tp8", |b| {
        b.iter(|| group_cluster(black_box(&snapshot), &coeffs, 8, 1, 1.05, true))
    });
}

fn bench_parallel_scaling(c: &mut Criterion) {
    // The acceptance scenario for the candidate-lattice fan-out: the 256-GPU
    // synthetic cluster, planned by the serial oracle and by the auto-width
    // parallel path (identical output, different wall-clock on multi-core).
    let scenario = ScenarioMatrix::large_scale()
        .get("256-GPU")
        .cloned()
        .expect("256-GPU scenario");
    let snapshot = scenario.snapshot();
    let mut group = c.benchmark_group("planner_parallel");
    group.sample_size(10);
    let serial = scenario.planner(Parallelism::Fixed(1));
    group.bench_function("256gpu_serial", |b| {
        b.iter(|| serial.plan(black_box(&snapshot)).unwrap())
    });
    let auto = scenario.planner(Parallelism::Auto);
    group.bench_function("256gpu_auto", |b| {
        b.iter(|| auto.plan(black_box(&snapshot)).unwrap())
    });
    group.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    let workload = &paper_workloads()[0];
    let planner = workload.planner();
    let snapshot = workload.snapshot_for(PaperSituation::S2);
    let outcome = planner.plan(&snapshot).unwrap();
    let cost = CostModel::new(workload.coeffs());
    c.bench_function("cost_model_step_time_32B", |b| {
        b.iter(|| cost.step_time(black_box(&outcome.plan), black_box(&snapshot)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_full_planning, bench_grouping, bench_parallel_scaling, bench_cost_model
}
criterion_main!(benches);
