//! Criterion benchmarks for the Malleus planning algorithm and its phases.

use criterion::{criterion_group, criterion_main, Criterion};
use malleus_bench::paper_workloads;
use malleus_cluster::PaperSituation;
use malleus_core::{grouping::group_cluster, CostModel};
use std::hint::black_box;

fn bench_full_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);
    for workload in paper_workloads() {
        let planner = workload.planner();
        for situation in [PaperSituation::Normal, PaperSituation::S4] {
            let snapshot = workload.snapshot_for(situation);
            group.bench_function(format!("{}_{}", workload.label, situation.name()), |b| {
                b.iter(|| planner.plan(black_box(&snapshot)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let workload = &paper_workloads()[2];
    let coeffs = workload.coeffs();
    let snapshot = workload.snapshot_for(PaperSituation::S5);
    c.bench_function("grouping_110B_S5_tp8", |b| {
        b.iter(|| group_cluster(black_box(&snapshot), &coeffs, 8, 1, 1.05, true))
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let workload = &paper_workloads()[0];
    let planner = workload.planner();
    let snapshot = workload.snapshot_for(PaperSituation::S2);
    let outcome = planner.plan(&snapshot).unwrap();
    let cost = CostModel::new(workload.coeffs());
    c.bench_function("cost_model_step_time_32B", |b| {
        b.iter(|| cost.step_time(black_box(&outcome.plan), black_box(&snapshot)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_full_planning, bench_grouping, bench_cost_model
}
criterion_main!(benches);
