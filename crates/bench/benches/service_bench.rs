//! Criterion benchmarks for the multi-tenant planning service: cache-hit
//! latency vs a direct planner invocation, and the coalesced fan-in path.

use criterion::{criterion_group, criterion_main, Criterion};
use malleus_bench::paper_workloads;
use malleus_cluster::PaperSituation;
use malleus_service::{PlanRequest, PlanService, ServiceConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench_service_paths(c: &mut Criterion) {
    let workload = &paper_workloads()[0]; // 32B
    let snapshot = workload.snapshot_for(PaperSituation::S3);
    let planner = workload.planner();
    let request = PlanRequest::new(workload.coeffs(), snapshot.clone(), planner.config.clone());

    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    // The floor: what every tenant would pay without the service.
    group.bench_function("direct_plan_32b_s3", |b| {
        b.iter(|| planner.plan(black_box(&snapshot)).unwrap())
    });

    // The fast path: confirmed cache hit (one warm-up miss outside timing).
    let service = PlanService::new(ServiceConfig::default());
    service.plan(&request).expect("warm-up plan");
    group.bench_function("cache_hit_32b_s3", |b| {
        b.iter(|| service.plan(black_box(&request)).unwrap())
    });

    // Concurrent fan-in: 8 tenants hitting one warm service at once.
    let service = Arc::new(PlanService::new(ServiceConfig::default()));
    service.plan(&request).expect("warm-up plan");
    group.bench_function("fan_in_8_tenants_32b_s3", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    let service = Arc::clone(&service);
                    let request = &request;
                    scope.spawn(move || service.plan(black_box(request)).unwrap());
                }
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_service_paths
}
criterion_main!(benches);
