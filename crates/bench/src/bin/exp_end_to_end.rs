//! Figure 7 + Table 2: end-to-end evaluation over the six straggler situations.
//!
//! For each of the paper's three workloads (32B / 70B / 110B) this harness
//! reports the per-step training time of Malleus, Megatron-LM and DeepSpeed
//! (with and without node-exclusion restarts) under Normal and S1–S6, the MFU
//! of each system on the healthy cluster, the theoretic optimum, the average
//! improvement of Malleus (geometric mean, as in Table 2), and the transition
//! costs (Malleus migrations vs. baseline restarts, as annotated in Figure 7).
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_end_to_end
//! ```

use malleus_baselines::{
    restart::RestartFamily, theoretic_optimal_time, DeepSpeedPlanner, MegatronPlanner,
    RestartPlanner,
};
use malleus_bench::table::{secs, times, Table};
use malleus_bench::{paper_workloads, PaperWorkload};
use malleus_cluster::{GpuId, PaperSituation, Trace};
use malleus_core::PlannerConfig;
use malleus_runtime::TrainingSession;

const SITUATIONS: [PaperSituation; 7] = [
    PaperSituation::Normal,
    PaperSituation::S1,
    PaperSituation::S2,
    PaperSituation::S3,
    PaperSituation::S4,
    PaperSituation::S5,
    PaperSituation::S6,
];

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

struct SystemRow {
    name: String,
    normal: f64,
    mfu: Option<f64>,
    times: Vec<f64>,       // per situation S1..S6
    transitions: Vec<f64>, // restart / migration costs per situation S1..S6
}

fn run_workload(workload: &PaperWorkload) {
    println!(
        "\n##### {} model on {} GPUs #####",
        workload.label,
        workload.num_gpus()
    );
    let coeffs = workload.coeffs();
    let all_gpus: Vec<GpuId> = (0..workload.num_gpus() as u32).map(GpuId).collect();

    // ---- Malleus: full session over the paper trace ----
    let cluster = workload.cluster();
    let trace = Trace::paper_trace(&cluster, 20);
    let mut session = TrainingSession::new(
        coeffs.clone(),
        PlannerConfig {
            global_batch_size: workload.global_batch_size,
            ..PlannerConfig::default()
        },
        cluster,
    );
    let report = session.run(&trace).expect("Malleus session");
    let malleus_normal = report.phases[0].step_time;
    let malleus_mfu = report.phases[0].mfu;
    let malleus_times: Vec<f64> = report.phases[1..7].iter().map(|p| p.step_time).collect();
    let malleus_migrations: Vec<f64> = report.phases[1..7]
        .iter()
        .map(|p| p.migration_time)
        .collect();

    // ---- Megatron-LM and DeepSpeed without restarts ----
    let megatron = MegatronPlanner::new(coeffs.clone(), workload.global_batch_size, 8);
    let (mega_config, mega_plan, mega_normal) = megatron.search(&all_gpus).expect("megatron cfg");
    let deepspeed = DeepSpeedPlanner::new(coeffs.clone(), workload.global_batch_size);
    let healthy_snapshot = workload.snapshot_for(PaperSituation::Normal);
    let (ds_config, ds_normal) = deepspeed
        .search(&healthy_snapshot, &all_gpus)
        .expect("deepspeed cfg");

    let mut mega_times = Vec::new();
    let mut ds_times = Vec::new();
    for situation in &SITUATIONS[1..] {
        let snapshot = workload.snapshot_for(*situation);
        mega_times.push(
            megatron
                .simulate_step(&mega_plan, &snapshot, mega_config.activation_checkpointing)
                .unwrap_or(f64::NAN),
        );
        ds_times.push(
            deepspeed
                .simulate_step(&snapshot, &all_gpus, &ds_config)
                .unwrap_or(f64::NAN),
        );
    }

    // ---- Restart variants ----
    let mut restart_rows = Vec::new();
    for (family, name, normal, mfu) in [
        (
            RestartFamily::Megatron,
            "Megatron-LM w/ Restart",
            mega_normal,
            megatron.mfu(&mega_plan, &healthy_snapshot),
        ),
        (
            RestartFamily::DeepSpeed,
            "DeepSpeed w/ Restart",
            ds_normal,
            deepspeed.mfu(&healthy_snapshot, &all_gpus, &ds_config),
        ),
    ] {
        let planner = RestartPlanner::new(family, coeffs.clone(), workload.global_batch_size, 8);
        let mut prev_nodes: Option<Vec<u32>> = Some((0..workload.num_nodes).collect());
        let mut step_times = Vec::new();
        let mut restart_costs = Vec::new();
        for situation in &SITUATIONS[1..] {
            let snapshot = workload.snapshot_for(*situation);
            match planner.handle_situation(&snapshot, prev_nodes.as_deref()) {
                Some(outcome) => {
                    step_times.push(outcome.step_time);
                    restart_costs.push(outcome.restart_cost);
                    prev_nodes = Some(outcome.nodes_used);
                }
                None => {
                    step_times.push(f64::NAN);
                    restart_costs.push(f64::NAN);
                }
            }
        }
        restart_rows.push(SystemRow {
            name: name.to_string(),
            normal,
            mfu,
            times: step_times,
            transitions: restart_costs,
        });
    }

    // ---- Theoretic optimum ----
    let optimum: Vec<f64> = SITUATIONS[1..]
        .iter()
        .map(|s| theoretic_optimal_time(malleus_normal, &workload.snapshot_for(*s)))
        .collect();

    let rows = vec![
        SystemRow {
            name: "DeepSpeed w/o Restart".to_string(),
            normal: ds_normal,
            mfu: deepspeed.mfu(&healthy_snapshot, &all_gpus, &ds_config),
            times: ds_times,
            transitions: vec![f64::NAN; 6],
        },
        SystemRow {
            name: "Megatron-LM w/o Restart".to_string(),
            normal: mega_normal,
            mfu: megatron.mfu(&mega_plan, &healthy_snapshot),
            times: mega_times,
            transitions: vec![f64::NAN; 6],
        },
        restart_rows.remove(1),
        restart_rows.remove(0),
        SystemRow {
            name: "Malleus".to_string(),
            normal: malleus_normal,
            mfu: Some(malleus_mfu),
            times: malleus_times.clone(),
            transitions: malleus_migrations,
        },
        SystemRow {
            name: "Theoretic Opt.".to_string(),
            normal: malleus_normal,
            mfu: None,
            times: optimum,
            transitions: vec![f64::NAN; 6],
        },
    ];

    // ---- Table 2 ----
    let mut table = Table::new([
        "system",
        "Normal",
        "MFU",
        "S1",
        "S2",
        "S3",
        "S4",
        "S5",
        "S6",
        "Avg. Improv.",
    ]);
    for row in &rows {
        let improvements: Vec<f64> = row
            .times
            .iter()
            .zip(malleus_times.iter())
            .filter(|(t, _)| t.is_finite())
            .map(|(t, m)| t / m)
            .collect();
        let avg = if row.name == "Malleus" || row.name == "Theoretic Opt." {
            "-".to_string()
        } else {
            times(geomean(&improvements))
        };
        let mut cells = vec![
            row.name.clone(),
            secs(row.normal),
            row.mfu
                .map(|m| format!("{:.1}%", m * 100.0))
                .unwrap_or_else(|| "-".to_string()),
        ];
        cells.extend(row.times.iter().map(|t| {
            if t.is_finite() {
                secs(*t)
            } else {
                "n/a".to_string()
            }
        }));
        cells.push(avg);
        table.row(cells);
    }
    println!("\nTable 2 — averaged running time per step (seconds):");
    table.print();

    // ---- Figure 7 annotations: transition costs ----
    let mut costs = Table::new(["system", "S1", "S2", "S3", "S4", "S5", "S6"]);
    for row in rows
        .iter()
        .filter(|r| r.transitions.iter().any(|c| c.is_finite()))
    {
        let mut cells = vec![row.name.clone()];
        cells.extend(row.transitions.iter().map(|c| {
            if c.is_finite() {
                format!("{c:.1}s")
            } else {
                "-".to_string()
            }
        }));
        costs.row(cells);
    }
    println!("\nFigure 7 — transition costs when entering each situation (Malleus: migration, baselines: restart):");
    costs.print();

    println!("\nconfigurations: Megatron-LM = {mega_config}, DeepSpeed = {ds_config}");
}

fn main() {
    println!("Experiment: end-to-end evaluation (Figure 7, Table 2)");
    for workload in paper_workloads() {
        run_workload(&workload);
    }
}
