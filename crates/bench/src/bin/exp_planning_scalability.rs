//! Table 5 (Appendix A.2): planning-time breakdown and scalability.
//!
//! The harness times the four phases of the planning algorithm — GPU grouping,
//! pipeline division, group ordering and work assignment — for the paper's
//! 64-GPU S3 scenario and for a simulated 1024-GPU cluster (128 nodes) with 32
//! stragglers (~3% of the fleet) and a global batch scaled to 1024, both on the
//! 110B model.  Results also land in `BENCH_planning.json` for CI to upload.
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_planning_scalability            # full
//! cargo run --release -p malleus-bench --bin exp_planning_scalability -- --smoke # 64-GPU only
//! ```
//!
//! `--smoke` runs only the 64-GPU S3 breakdown (the 1024-GPU plan and the
//! scenario matrix are minutes of planner work); the JSON artifact is written
//! in both modes.

use malleus_bench::paper_workloads;
use malleus_bench::table::Table;
use malleus_bench::{write_json, JsonValue, ScenarioMatrix};
use malleus_cluster::{Cluster, GpuId, PaperSituation, StragglerLevel};
use malleus_core::{Parallelism, PlanTiming, Planner, PlannerConfig};
use malleus_model::{HardwareParams, ProfiledCoefficients};
use malleus_solver::reference::divide_pipelines_reference;
use malleus_solver::{divide_pipelines, Division, DivisionProblem};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;
use std::time::Instant;

fn row(label: &str, timing: &PlanTiming, table: &mut Table) {
    let s = |d: std::time::Duration| format!("{:.2}s", d.as_secs_f64());
    table.row([
        label.to_string(),
        s(timing.grouping),
        s(timing.division),
        s(timing.ordering),
        s(timing.assignment),
        s(timing.total()),
    ]);
}

fn timing_json(label: &str, timing: &PlanTiming) -> JsonValue {
    JsonValue::obj(vec![
        ("scenario", JsonValue::str(label)),
        ("grouping", JsonValue::Num(timing.grouping.as_secs_f64())),
        ("division", JsonValue::Num(timing.division.as_secs_f64())),
        ("ordering", JsonValue::Num(timing.ordering.as_secs_f64())),
        (
            "assignment",
            JsonValue::Num(timing.assignment.as_secs_f64()),
        ),
        ("total", JsonValue::Num(timing.total().as_secs_f64())),
    ])
}

/// Best-of-`iters` wall clock for one division solve, returning the plan so the
/// caller can assert byte-identity against the seed reference.
fn best_division_secs(iters: usize, mut f: impl FnMut() -> Division) -> (f64, Division) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let d = black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(d);
    }
    (best, out.expect("at least one iteration"))
}

fn assert_division_bitwise_equal(a: &Division, b: &Division, label: &str) {
    assert_eq!(a.fast_per_pipeline, b.fast_per_pipeline, "{label}");
    assert_eq!(a.slow_assignment, b.slow_assignment, "{label}");
    assert_eq!(a.micro_batches, b.micro_batches, "{label}");
    assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "{label}");
    let ca: Vec<u64> = a.capacities.iter().map(|c| c.to_bits()).collect();
    let cb: Vec<u64> = b.capacities.iter().map(|c| c.to_bits()).collect();
    assert_eq!(ca, cb, "{label}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "Experiment: planning-time breakdown and scalability (Table 5, Appendix A.2){}",
        if smoke { " (smoke: 64-GPU only)" } else { "" }
    );
    let workload = &paper_workloads()[2]; // 110B
    let mut table = Table::new([
        "scenario",
        "GPU grouping",
        "pipeline division",
        "group ordering",
        "work assignment",
        "total",
    ]);
    let mut breakdowns = Vec::new();

    // ---- 64 GPUs, S3 ----
    let snapshot = workload.snapshot_for(PaperSituation::S3);
    let planner = workload.planner();
    let outcome = planner.plan(&snapshot).expect("64-GPU plan");
    row("64 GPUs (S3, B=64)", &outcome.timing, &mut table);
    breakdowns.push(timing_json("64 GPUs (S3, B=64)", &outcome.timing));

    // ---- 1024 GPUs, 32 random stragglers, B = 1024 (full mode only) ----
    if !smoke {
        let mut cluster = Cluster::homogeneous(128, 8);
        let mut rng = StdRng::seed_from_u64(2025);
        let mut ids: Vec<u32> = (0..1024).collect();
        ids.shuffle(&mut rng);
        for (i, gpu) in ids.into_iter().take(32).enumerate() {
            let level = match i % 3 {
                0 => StragglerLevel::Level1,
                1 => StragglerLevel::Level2,
                _ => StragglerLevel::Level3,
            };
            cluster.set_rate(GpuId(gpu), level.rate());
        }
        let coeffs =
            ProfiledCoefficients::derive(workload.spec.clone(), HardwareParams::a800_cluster());
        // The paper keeps the DP degree fixed when scaling out (the global batch
        // is scaled linearly); we fix DP = 8 and micro-batch 1 to match the
        // analysis.
        let planner = Planner::new(
            coeffs,
            PlannerConfig {
                global_batch_size: 1024,
                candidate_micro_batch_sizes: vec![1],
                fixed_dp: Some(8),
                ..PlannerConfig::default()
            },
        );
        match planner.plan(&cluster.snapshot()) {
            Ok(outcome) => {
                row(
                    "1024 GPUs (32 stragglers, B=1024)",
                    &outcome.timing,
                    &mut table,
                );
                breakdowns.push(timing_json(
                    "1024 GPUs (32 stragglers, B=1024)",
                    &outcome.timing,
                ));
                println!(
                    "1024-GPU plan: DP {} | max TP {} | estimated {:.2} s/step | {} standby GPUs",
                    outcome.dp,
                    outcome.chosen_tp,
                    outcome.estimated_step_time,
                    outcome.plan.removed_gpus.len()
                );
            }
            Err(e) => println!("1024-GPU planning failed: {e}"),
        }
    }

    println!();
    table.print();
    println!("\n(The planner runs on background CPU processes and is overlapped with one training step, §5.3.)");

    // ---- Scenario matrix: serial oracle vs parallel candidate fan-out ----
    let mut matrix_records = Vec::new();
    if !smoke {
        let workers = Parallelism::Auto.workers();
        println!(
            "\nScenario matrix: serial vs parallel planning wall-clock ({workers} workers at auto)"
        );
        let mut table = Table::new([
            "scenario",
            "serial (s)",
            "parallel (s)",
            "speedup",
            "plans identical",
        ]);
        for scenario in &ScenarioMatrix::large_scale().scenarios {
            let snapshot = scenario.snapshot();
            let serial_planner = scenario.planner(Parallelism::Fixed(1));
            let t0 = Instant::now();
            let serial = serial_planner.plan(&snapshot);
            let serial_secs = t0.elapsed().as_secs_f64();

            let parallel_planner = scenario.planner(Parallelism::Auto);
            let t0 = Instant::now();
            let parallel = parallel_planner.plan(&snapshot);
            let parallel_secs = t0.elapsed().as_secs_f64();

            let identical = match (&serial, &parallel) {
                (Ok(a), Ok(b)) => {
                    a.plan == b.plan
                        && a.estimated_step_time.to_bits() == b.estimated_step_time.to_bits()
                }
                (Err(_), Err(_)) => true,
                _ => false,
            };
            table.row([
                scenario.label.to_string(),
                format!("{serial_secs:.2}"),
                format!("{parallel_secs:.2}"),
                format!("{:.2}x", serial_secs / parallel_secs.max(1e-9)),
                identical.to_string(),
            ]);
            matrix_records.push(JsonValue::obj(vec![
                ("scenario", JsonValue::str(scenario.label)),
                ("serial_secs", JsonValue::Num(serial_secs)),
                ("parallel_secs", JsonValue::Num(parallel_secs)),
                ("identical", JsonValue::Bool(identical)),
            ]));
            if let Ok(outcome) = &parallel {
                println!(
                    "{}: DP {} | max TP {} | estimated {:.2} s/step | {} standby GPUs",
                    scenario.label,
                    outcome.dp,
                    outcome.chosen_tp,
                    outcome.estimated_step_time,
                    outcome.plan.removed_gpus.len()
                );
            }
        }
        println!();
        table.print();
        println!("\n(Speedups require a multi-core host; at auto=1 worker both columns run the serial path.)");
    }

    // ---- Division micro-breakdown: frozen seed reference vs scratch-arena solver ----
    // Runs in both modes: the pipeline-division phase dominates planning time on
    // straggler-heavy fleets, so this is where the solver rework must pay off.
    // Every optimized plan is asserted byte-identical to the seed reference, and
    // the best speedup over the division-dominated instances must clear 5x.
    let division_iters = if smoke { 3 } else { 7 };
    let division_cases: Vec<(&str, DivisionProblem)> = vec![
        (
            "dp8_ms4_fast24 (4k candidates)",
            DivisionProblem::new(8, 24, 1.0, vec![2.0, 3.0, 2.5, 4.0], 256),
        ),
        (
            "dp16_ms4_fast48 (65k candidates)",
            DivisionProblem::new(16, 48, 1.0, vec![2.0, 2.5, 3.0, 3.5], 512),
        ),
    ];
    println!("\nDivision micro-breakdown: seed reference vs scratch-arena solver (best of {division_iters})");
    let mut division_table = Table::new([
        "instance",
        "seed ref (ms)",
        "optimized (ms)",
        "speedup",
        "identical",
    ]);
    let mut division_records = Vec::new();
    let mut best_division_speedup = 0.0f64;
    for (label, problem) in &division_cases {
        let (ref_secs, ref_d) = best_division_secs(division_iters, || {
            divide_pipelines_reference(problem).expect("reference division")
        });
        let (opt_secs, opt_d) = best_division_secs(division_iters, || {
            divide_pipelines(problem).expect("optimized division")
        });
        assert_division_bitwise_equal(&opt_d, &ref_d, label);
        let speedup = ref_secs / opt_secs.max(1e-12);
        best_division_speedup = best_division_speedup.max(speedup);
        division_table.row([
            label.to_string(),
            format!("{:.2}", ref_secs * 1e3),
            format!("{:.2}", opt_secs * 1e3),
            format!("{speedup:.2}x"),
            "true".to_string(),
        ]);
        division_records.push(JsonValue::obj(vec![
            ("instance", JsonValue::str(*label)),
            ("reference_secs", JsonValue::Num(ref_secs)),
            ("optimized_secs", JsonValue::Num(opt_secs)),
            ("speedup", JsonValue::Num(speedup)),
            ("identical", JsonValue::Bool(true)),
        ]));
    }
    division_table.print();
    println!(
        "\nBest division speedup vs seed: {best_division_speedup:.2}x (gate: >= 5x on division-dominated instances)"
    );
    assert!(
        best_division_speedup >= 5.0,
        "division solver speedup regressed: best {best_division_speedup:.2}x < 5x vs seed reference"
    );

    let artifact = JsonValue::obj(vec![
        ("experiment", JsonValue::str("planning_scalability")),
        ("smoke", JsonValue::Bool(smoke)),
        ("breakdowns", JsonValue::Arr(breakdowns)),
        ("scenario_matrix", JsonValue::Arr(matrix_records)),
        ("division", JsonValue::Arr(division_records)),
        (
            "division_speedup_vs_seed",
            JsonValue::Num(best_division_speedup),
        ),
    ]);
    match write_json("BENCH_planning.json", &artifact) {
        Ok(()) => println!("\nWrote BENCH_planning.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_planning.json: {e}"),
    }
}
