//! Figure 9: ablation of the four non-uniform partitioning dimensions.
//!
//! Three straggler scenarios of increasing dispersion are evaluated on the
//! 110B model: three stragglers (x = 2.57, 5.42, 12.53) on one node, on two
//! nodes and on three nodes.  For each scenario the harness reports the
//! simulated step time of Megatron-LM, of Malleus restricted to non-uniform
//! layers only, layers+data, layers+data+devices, the full planner
//! (+ non-uniform stages), and the theoretic optimum — together with the gap
//! `1 − T_opt / T_actual` annotated in the paper's figure.
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_ablation
//! ```

use malleus_baselines::{theoretic_optimal_time, MegatronPlanner};
use malleus_bench::paper_workloads;
use malleus_bench::table::Table;
use malleus_cluster::{Cluster, GpuId};
use malleus_core::{Planner, PlannerConfig};
use malleus_sim::TrainingSimulator;

fn main() {
    println!("Experiment: effectiveness of non-uniform partitioning (Figure 9)");
    let workload = &paper_workloads()[2]; // 110B on 64 GPUs
    let coeffs = workload.coeffs();
    let simulator = TrainingSimulator::new(coeffs.clone());
    let all_gpus: Vec<GpuId> = (0..workload.num_gpus() as u32).map(GpuId).collect();

    // Healthy reference for the theoretic optimum.
    let healthy = workload.cluster().snapshot();
    let healthy_outcome = workload.planner().plan(&healthy).expect("healthy plan");
    let healthy_time = simulator
        .step(&healthy_outcome.plan, &healthy)
        .expect("healthy step")
        .step_time;

    // Megatron reference configuration (tuned on the healthy cluster).
    let megatron = MegatronPlanner::new(coeffs.clone(), workload.global_batch_size, 8);
    let (mega_config, mega_plan, _) = megatron.search(&all_gpus).expect("megatron cfg");

    // The three scenarios: stragglers with rates 2.57 / 5.42 / 12.53 placed on
    // 1, 2 and 3 distinct nodes respectively (as in Figure 9).
    let scenarios: Vec<(&str, Vec<(u32, f64)>)> = vec![
        (
            "all on node 0 (x0=2.57, x2=5.42, x4=12.53)",
            vec![(0, 2.57), (2, 5.42), (4, 12.53)],
        ),
        (
            "two nodes (x0=2.57, x2=5.42, x8=12.53)",
            vec![(0, 2.57), (2, 5.42), (8, 12.53)],
        ),
        (
            "three nodes (x0=2.57, x8=5.42, x16=12.53)",
            vec![(0, 2.57), (8, 5.42), (16, 12.53)],
        ),
    ];

    let variants: Vec<(&str, PlannerConfig)> = vec![
        (
            "w/ Layer",
            PlannerConfig::ablation(true, false, false, false),
        ),
        (
            "w/ Layer & Data",
            PlannerConfig::ablation(true, true, false, false),
        ),
        (
            "w/ Layer & Data & Device",
            PlannerConfig::ablation(true, true, true, false),
        ),
        (
            "w/ Layer & Data & Device & Stage",
            PlannerConfig::ablation(true, true, true, true),
        ),
    ];

    for (label, rates) in scenarios {
        let mut cluster = Cluster::homogeneous(workload.num_nodes, 8);
        for &(gpu, rate) in &rates {
            cluster.set_rate(GpuId(gpu), rate);
        }
        let snapshot = cluster.snapshot();
        let optimum = theoretic_optimal_time(healthy_time, &snapshot);
        println!("\n=== scenario: {label} ===");
        println!("theoretic optimum: {optimum:.2} s/step (healthy {healthy_time:.2} s)");

        let mut table = Table::new(["configuration", "step (s)", "gap to optimum"]);
        let mega_time = megatron
            .simulate_step(&mega_plan, &snapshot, mega_config.activation_checkpointing)
            .unwrap_or(f64::NAN);
        table.row([
            "Megatron-LM".to_string(),
            format!("{mega_time:.2}"),
            format!("{:.1}%", (1.0 - optimum / mega_time) * 100.0),
        ]);
        for (name, config) in &variants {
            let planner = Planner::new(
                coeffs.clone(),
                PlannerConfig {
                    global_batch_size: workload.global_batch_size,
                    ..config.clone()
                },
            );
            let cell = planner
                .plan(&snapshot)
                .ok()
                .and_then(|o| simulator.step(&o.plan, &snapshot).ok())
                .map(|r| r.step_time);
            match cell {
                Some(t) => table.row([
                    name.to_string(),
                    format!("{t:.2}"),
                    format!("{:.1}%", (1.0 - optimum / t) * 100.0),
                ]),
                None => table.row([name.to_string(), "infeasible".to_string(), "-".to_string()]),
            };
        }
        table.print();
    }
}
