//! Online backend arena: every planning system behind the one
//! [`malleus_core::PlanBackend`] trait, replayed over identical cluster-event
//! sequences.
//!
//! Each backend — Malleus, Megatron-LM, DeepSpeed, Oobleck, and the two
//! restart remediations — starts from the healthy cluster and receives the
//! same S1–S6 event stream (20 iterations per phase).  Transitions are
//! replayed through `replan_overlapped_backend`, so each system pays its own
//! adaptation costs: Malleus migrates, the restart families checkpoint and
//! restart, plain Megatron-LM/DeepSpeed grind on with the stale plan.  The
//! table reports per-situation step times plus the aggregate wall-clock,
//! goodput, replan stall and gap from `theoretic_optimal_time`.
//!
//! The run is self-asserting: Malleus must achieve at least every baseline's
//! aggregate goodput on each workload, and the service route
//! (`PlanService::plan_backend`) must be byte-identical to driving a backend
//! directly.  Results land in `BENCH_arena.json`.
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_backend_arena            # full
//! cargo run --release -p malleus-bench --bin exp_backend_arena -- --smoke # 32B only
//! ```

use malleus_baselines::{baseline_constructors, gap_from_optimum, theoretic_optimal_time};
use malleus_bench::{paper_workloads, write_json, JsonValue, PaperWorkload, ScenarioMatrix, Table};
use malleus_cluster::{ClusterSnapshot, PaperSituation};
use malleus_core::{BackendId, PlanBackend, Planner, PlannerConfig};
use malleus_model::ProfiledCoefficients;
use malleus_runtime::replan_overlapped_backend;
use malleus_service::{PlanRequest, PlanService, ServiceConfig};

/// Iterations trained in each phase of the event stream.
const ITERS_PER_PHASE: f64 = 20.0;

const SITUATIONS: [PaperSituation; 7] = [
    PaperSituation::Normal,
    PaperSituation::S1,
    PaperSituation::S2,
    PaperSituation::S3,
    PaperSituation::S4,
    PaperSituation::S5,
    PaperSituation::S6,
];

/// One backend's result for one phase of the stream.
struct PhaseResult {
    situation: String,
    step_time: f64,
    transition: f64,
    stall: f64,
}

/// One backend's full replay (or the typed error that ended it).
struct ArenaRun {
    backend: BackendId,
    phases: Vec<PhaseResult>,
    error: Option<String>,
}

impl ArenaRun {
    fn total_time(&self) -> Option<f64> {
        if self.error.is_some() {
            return None;
        }
        Some(
            self.phases
                .iter()
                .map(|p| p.step_time * ITERS_PER_PHASE + p.transition + p.stall)
                .sum(),
        )
    }

    fn total_stall(&self) -> f64 {
        self.phases.iter().map(|p| p.stall).sum()
    }

    fn total_transition(&self) -> f64 {
        self.phases.iter().map(|p| p.transition).sum()
    }

    fn goodput(&self) -> Option<f64> {
        let total = self.total_time()?;
        (total > 0.0).then(|| self.phases.len() as f64 * ITERS_PER_PHASE / total)
    }
}

/// Every registered backend, instantiated for one (coefficients, config) pair:
/// Malleus first, then the five baselines.
fn arena_backends(
    coeffs: &ProfiledCoefficients,
    config: &PlannerConfig,
) -> Vec<Box<dyn PlanBackend>> {
    let mut backends: Vec<Box<dyn PlanBackend>> =
        vec![Box::new(Planner::new(coeffs.clone(), config.clone()))];
    for (_, ctor) in baseline_constructors(8) {
        backends.push(ctor(coeffs, config));
    }
    backends
}

/// Replay the event stream through one backend.  A typed planning error ends
/// the replay (that backend forfeits the workload — e.g. a baseline that
/// cannot fit the model at all).
fn replay(
    backend: &dyn PlanBackend,
    stream: &[(String, ClusterSnapshot)],
    config: &PlannerConfig,
) -> ArenaRun {
    let mut phases = Vec::with_capacity(stream.len());
    let mut previous = None;
    for (name, snapshot) in stream {
        let step = match &previous {
            None => match backend.plan(snapshot, config) {
                Ok(outcome) => {
                    phases.push(PhaseResult {
                        situation: name.clone(),
                        step_time: outcome.estimated_step_time,
                        transition: outcome.transition_cost,
                        stall: 0.0,
                    });
                    previous = Some(outcome);
                    continue;
                }
                Err(e) => Err(e),
            },
            Some(prev) => {
                let prev_step = prev.estimated_step_time;
                replan_overlapped_backend(backend, snapshot, prev, prev_step).map(|replan| {
                    phases.push(PhaseResult {
                        situation: name.clone(),
                        step_time: replan.outcome.estimated_step_time,
                        transition: replan.outcome.transition_cost,
                        stall: replan.stall_time,
                    });
                    previous = Some(replan.outcome);
                })
            }
        };
        if let Err(e) = step {
            return ArenaRun {
                backend: backend.id(),
                phases,
                error: Some(e.to_string()),
            };
        }
    }
    ArenaRun {
        backend: backend.id(),
        phases,
        error: None,
    }
}

fn fmt_gap(gap: f64) -> String {
    if gap.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.1}%", gap * 100.0)
    }
}

/// Replay one paper workload across all backends; returns the JSON record.
fn run_workload(workload: &PaperWorkload) -> JsonValue {
    println!(
        "\n=== {} ({} GPUs) ===",
        workload.label,
        workload.num_gpus()
    );
    let coeffs = workload.coeffs();
    let config = PlannerConfig {
        global_batch_size: workload.global_batch_size,
        ..PlannerConfig::default()
    };
    let stream: Vec<(String, ClusterSnapshot)> = SITUATIONS
        .iter()
        .map(|s| (format!("{s:?}"), workload.snapshot_for(*s)))
        .collect();

    let backends = arena_backends(&coeffs, &config);
    let runs: Vec<ArenaRun> = backends
        .iter()
        .map(|b| replay(b.as_ref(), &stream, &config))
        .collect();

    // The yardstick: Malleus's healthy step time stretched by the theoretic
    // optimal ratio of each situation (§2.3) — the best any system could do.
    let malleus_healthy = runs[0]
        .phases
        .first()
        .map(|p| p.step_time)
        .unwrap_or(f64::NAN);
    let optimal_total: f64 = stream
        .iter()
        .map(|(_, snapshot)| theoretic_optimal_time(malleus_healthy, snapshot) * ITERS_PER_PHASE)
        .sum();

    let mut header = vec!["situation".to_string()];
    header.extend(runs.iter().map(|r| r.backend.name().to_string()));
    let mut per_phase = Table::new(header);
    for (i, (name, _)) in stream.iter().enumerate() {
        let mut row = vec![name.clone()];
        for run in &runs {
            row.push(match run.phases.get(i) {
                Some(p) => format!("{:.2}", p.step_time),
                None => "n/a".to_string(),
            });
        }
        per_phase.row(row);
    }
    per_phase.print();

    let mut aggregate = Table::new([
        "backend",
        "total (s)",
        "goodput (steps/s)",
        "stall (s)",
        "transitions (s)",
        "gap vs optimum",
    ]);
    for run in &runs {
        let cells = match run.total_time() {
            Some(total) => [
                run.backend.name().to_string(),
                format!("{total:.1}"),
                format!("{:.4}", run.goodput().unwrap_or(f64::NAN)),
                format!("{:.1}", run.total_stall()),
                format!("{:.1}", run.total_transition()),
                fmt_gap(gap_from_optimum(total, optimal_total)),
            ],
            None => [
                run.backend.name().to_string(),
                "n/a".to_string(),
                "n/a".to_string(),
                "n/a".to_string(),
                "n/a".to_string(),
                run.error.clone().unwrap_or_default(),
            ],
        };
        aggregate.row(cells);
    }
    println!();
    aggregate.print();

    // Self-assertion: Malleus must not lose to any baseline on aggregate
    // goodput over the identical event stream.
    let malleus_total = runs[0]
        .total_time()
        .expect("Malleus must survive the full event stream");
    for run in &runs[1..] {
        if let Some(total) = run.total_time() {
            assert!(
                malleus_total <= total * 1.0001,
                "{}: Malleus total {malleus_total:.1}s must beat {} total {total:.1}s",
                workload.label,
                run.backend.name()
            );
        }
    }
    println!(
        "\nSELF-CHECK OK: Malleus aggregate {malleus_total:.1}s beats every baseline on {}",
        workload.label
    );

    JsonValue::obj(vec![
        ("label", JsonValue::str(workload.label)),
        ("num_gpus", JsonValue::Num(workload.num_gpus() as f64)),
        ("optimal_total", JsonValue::Num(optimal_total)),
        (
            "backends",
            JsonValue::Arr(
                runs.iter()
                    .map(|run| {
                        JsonValue::obj(vec![
                            ("backend", JsonValue::str(run.backend.name())),
                            (
                                "phases",
                                JsonValue::Arr(
                                    run.phases
                                        .iter()
                                        .map(|p| {
                                            JsonValue::obj(vec![
                                                ("situation", JsonValue::str(&*p.situation)),
                                                ("step_time", JsonValue::Num(p.step_time)),
                                                ("transition", JsonValue::Num(p.transition)),
                                                ("stall", JsonValue::Num(p.stall)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            (
                                "total",
                                run.total_time()
                                    .map(JsonValue::Num)
                                    .unwrap_or(JsonValue::Null),
                            ),
                            (
                                "goodput",
                                run.goodput().map(JsonValue::Num).unwrap_or(JsonValue::Null),
                            ),
                            (
                                "gap",
                                run.total_time()
                                    .map(|t| JsonValue::Num(gap_from_optimum(t, optimal_total)))
                                    .unwrap_or(JsonValue::Null),
                            ),
                            (
                                "error",
                                run.error
                                    .as_deref()
                                    .map(JsonValue::str)
                                    .unwrap_or(JsonValue::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Every backend planned once against each large-scale synthetic scenario
/// (single-snapshot comparison; full mode only — 110B planning at 512 GPUs is
/// minutes of work).
fn run_scenario_matrix() -> JsonValue {
    println!("\n=== Scenario matrix (110B, synthetic large scale) ===");
    let mut records = Vec::new();
    for scenario in &ScenarioMatrix::large_scale().scenarios {
        println!("\n--- {} ---", scenario.label);
        let coeffs = ProfiledCoefficients::derive(
            scenario.spec.clone(),
            malleus_model::HardwareParams::a800_cluster(),
        );
        let config = scenario.planner_config();
        let degraded = scenario.snapshot();
        let healthy = malleus_cluster::Cluster::homogeneous(scenario.num_nodes, 8).snapshot();

        let backends = arena_backends(&coeffs, &config);
        let malleus_healthy = backends[0]
            .plan(&healthy, &config)
            .expect("Malleus healthy plan")
            .estimated_step_time;
        let optimum = theoretic_optimal_time(malleus_healthy, &degraded);

        let mut table = Table::new(["backend", "step time (s)", "gap vs optimum"]);
        let mut rows = Vec::new();
        for backend in &backends {
            let (cell, gap, step) = match backend.plan(&degraded, &config) {
                Ok(outcome) => {
                    let gap = gap_from_optimum(outcome.estimated_step_time, optimum);
                    (
                        format!("{:.2}", outcome.estimated_step_time),
                        gap,
                        Some(outcome.estimated_step_time),
                    )
                }
                Err(e) => (format!("n/a ({e})"), f64::NAN, None),
            };
            table.row([backend.id().name().to_string(), cell, fmt_gap(gap)]);
            rows.push(JsonValue::obj(vec![
                ("backend", JsonValue::str(backend.id().name())),
                (
                    "step_time",
                    step.map(JsonValue::Num).unwrap_or(JsonValue::Null),
                ),
                ("gap", JsonValue::Num(gap)),
            ]));
        }
        table.print();
        records.push(JsonValue::obj(vec![
            ("label", JsonValue::str(scenario.label)),
            ("optimum", JsonValue::Num(optimum)),
            ("backends", JsonValue::Arr(rows)),
        ]));
    }
    JsonValue::Arr(records)
}

/// The service route must be invisible: `plan_backend` through a shared
/// [`PlanService`] byte-identical to driving the backend instance directly.
fn check_service_route() {
    println!("\n=== Service route (plan_backend) byte-identity ===");
    let workload = &paper_workloads()[0]; // 32B
    let coeffs = workload.coeffs();
    let config = PlannerConfig {
        global_batch_size: workload.global_batch_size,
        ..PlannerConfig::default()
    };
    let service = PlanService::new(ServiceConfig::default());
    for (id, ctor) in baseline_constructors(8) {
        service.register_backend(id, ctor);
    }
    let snapshot = workload.snapshot_for(PaperSituation::S3);
    let request = PlanRequest::new(coeffs.clone(), snapshot.clone(), config.clone());
    for backend in arena_backends(&coeffs, &config) {
        let direct = backend.plan(&snapshot, &config);
        let routed = service.plan_backend(backend.id(), &request);
        match (direct, routed) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.plan, b.plan, "{}: plans diverge", backend.id());
                assert_eq!(
                    a.estimated_step_time.to_bits(),
                    b.estimated_step_time.to_bits(),
                    "{}: estimates diverge",
                    backend.id()
                );
                // Second request: must be served from the cache.
                let again = service
                    .plan_backend(backend.id(), &request)
                    .expect("cached");
                assert_eq!(
                    again.estimated_step_time.to_bits(),
                    b.estimated_step_time.to_bits()
                );
            }
            (Err(a), Err(b)) => assert_eq!(
                format!("planning failed: {a}"),
                b.to_string(),
                "{}: errors diverge",
                backend.id()
            ),
            (a, b) => panic!(
                "{}: direct {:?} vs routed {:?} disagree on success",
                backend.id(),
                a.map(|o| o.estimated_step_time),
                b.map(|o| o.estimated_step_time)
            ),
        }
    }
    let metrics = service.metrics();
    let mut table = Table::new(["backend", "requests", "hits", "planner invocations"]);
    for m in &metrics.per_backend {
        table.row([
            m.backend.name().to_string(),
            m.requests.to_string(),
            m.hits.to_string(),
            m.planner_invocations.to_string(),
        ]);
    }
    table.print();
    println!(
        "SELF-CHECK OK: service route byte-identical for all {} backends",
        metrics.per_backend.len()
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "Experiment: online backend arena over the S1-S6 event stream{}",
        if smoke { " (smoke: 32B only)" } else { "" }
    );

    let workloads = paper_workloads();
    let selected: Vec<&PaperWorkload> = if smoke {
        workloads.iter().take(1).collect()
    } else {
        workloads.iter().collect()
    };

    let mut workload_records = Vec::new();
    for workload in selected {
        workload_records.push(run_workload(workload));
    }

    check_service_route();

    let matrix = if smoke {
        JsonValue::Arr(Vec::new())
    } else {
        run_scenario_matrix()
    };

    let artifact = JsonValue::obj(vec![
        ("experiment", JsonValue::str("backend_arena")),
        ("smoke", JsonValue::Bool(smoke)),
        ("iters_per_phase", JsonValue::Num(ITERS_PER_PHASE)),
        ("workloads", JsonValue::Arr(workload_records)),
        ("scenario_matrix", matrix),
    ]);
    match write_json("BENCH_arena.json", &artifact) {
        Ok(()) => println!("\nWrote BENCH_arena.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_arena.json: {e}"),
    }
}
