//! Service-throughput experiment: closed-loop load over the planning service.
//!
//! Simulates many elastic training sessions asking for plans against
//! *overlapping* cluster snapshots: `CLIENTS` concurrent closed-loop clients
//! each issue `REQUESTS_PER_CLIENT` requests over a small set of distinct
//! snapshots derived from a `ScenarioMatrix` cluster.  For each client count
//! the harness reports plans/sec, cache hit rate, coalesced count and p50/p99
//! latencies, and compares against the serial-planner baseline (direct
//! `Planner::plan`, one tenant, no cache).
//!
//! With `--socket` the same closed loop additionally runs against a
//! standalone plan daemon (`PlanServer` on an ephemeral TCP port): every
//! tenant holds its own `PlanClient` whose per-tenant L1 cache sits in front
//! of the daemon's shared L2, and the local and socket paths are reported
//! side by side — L1 hit rate, L2 hit rate, and client-observed latencies.
//! Each socket tenant is pinned to one snapshot variant (its "live cluster"),
//! matching how real sessions use the daemon; a final heavy-drift request per
//! tenant exercises the drift-based L1 invalidation.
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_service_throughput                       # full: 1/4/16/64 clients, 128-GPU 110B scenario
//! cargo run --release -p malleus-bench --bin exp_service_throughput -- --smoke            # CI: 16-GPU 7B cluster, 1/4 clients
//! cargo run --release -p malleus-bench --bin exp_service_throughput -- --smoke --socket   # CI: + daemon path, writes BENCH_service.json
//! ```
//!
//! The harness asserts its own acceptance criteria (service throughput at
//! every client count ≥ the serial baseline on both paths; hit rate > 0 on
//! repeated snapshots; byte-identical plans straight from the planner, the
//! in-process service, and over the socket), so CI can run it in smoke mode
//! as a regression gate.  Results land in `BENCH_service.json`.

use malleus_bench::report::{write_json, JsonValue};
use malleus_bench::{ScenarioMatrix, Table};
use malleus_cluster::{Cluster, ClusterSnapshot, GpuId, StragglerLevel};
use malleus_core::{Planner, PlannerConfig};
use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};
use malleus_service::{
    ClientConfig, PlanClient, PlanRequest, PlanServer, PlanService, ServerConfig, ServiceConfig,
};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One workload: distinct planning problems the clients cycle over.
struct Workload {
    label: String,
    requests: Vec<PlanRequest>,
}

impl Workload {
    /// Derive `variants` distinct snapshots from a base cluster by straggling
    /// one additional healthy GPU per variant (deterministic).
    fn from_cluster(
        label: &str,
        cluster: &Cluster,
        coeffs: ProfiledCoefficients,
        config: PlannerConfig,
        variants: usize,
    ) -> Self {
        let base = cluster.snapshot();
        let healthy: Vec<GpuId> = (0..base.num_gpus() as u32)
            .map(GpuId)
            .filter(|&g| base.rate(g) == 1.0)
            .collect();
        let mut snapshots: Vec<ClusterSnapshot> = vec![base.clone()];
        for v in 1..variants {
            let gpu = healthy[(v * 7) % healthy.len()];
            snapshots.push(base.with_rate(gpu, StragglerLevel::Level2.rate()));
        }
        Self {
            label: label.to_string(),
            requests: snapshots
                .into_iter()
                .map(|s| PlanRequest::new(coeffs.clone(), s, config.clone()))
                .collect(),
        }
    }
}

/// Serial baseline: one tenant, direct `Planner::plan`, no cache — the floor
/// the service must beat even at a single client.  The baseline planner runs
/// at the *same per-plan worker width* the service grants its invocations,
/// so the comparison (and the acceptance assert) measures what the service
/// adds — caching and coalescing — rather than a thread-count mismatch that
/// would flip with the host's core count.
fn serial_baseline(workload: &Workload) -> (f64, Vec<malleus_core::PlanOutcome>) {
    let per_plan = ServiceConfig::default().per_plan_parallelism();
    let t0 = Instant::now();
    let outcomes: Vec<_> = workload
        .requests
        .iter()
        .map(|r| {
            Planner::new(r.coeffs.clone(), r.config.clone())
                .with_parallelism(per_plan)
                .plan(&r.snapshot)
                .expect("serial baseline plan")
        })
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    (workload.requests.len() as f64 / secs.max(1e-9), outcomes)
}

/// Nearest-rank percentile over unsorted client-observed latencies (seconds).
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = (q * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Closed-loop run over the in-process service: `clients` threads each issue
/// `per_client` requests round-robin over the workload (offset by client
/// index so the first wave hits distinct keys and later waves coalesce/hit).
/// Returns (plans/sec, client-observed per-request latencies).
fn run_closed_loop(
    service: &Arc<PlanService>,
    workload: &Workload,
    clients: usize,
    per_client: usize,
) -> (f64, Vec<f64>) {
    let latencies = Mutex::new(Vec::with_capacity(clients * per_client));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = Arc::clone(service);
            let requests = &workload.requests;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let request = &requests[(client + i) % requests.len()];
                    let r0 = Instant::now();
                    service.plan(request).expect("service plan");
                    mine.push(r0.elapsed().as_secs_f64());
                }
                latencies.lock().unwrap().extend(mine);
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let rate = (clients * per_client) as f64 / secs.max(1e-9);
    (rate, latencies.into_inner().unwrap())
}

/// Aggregated L1 counters across all socket tenants of one run.
#[derive(Debug, Default, Clone, Copy)]
struct L1Aggregate {
    requests: u64,
    hits: u64,
    drift_evicted: u64,
}

impl L1Aggregate {
    fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Closed-loop run over the socket: every tenant dials its own `PlanClient`
/// and is pinned to one snapshot variant (its live cluster) — repeated
/// requests are L1 hits, distinct tenants on the same variant share the
/// daemon's L2.  A final >5%-drift request per tenant exercises the L1
/// drift invalidation.
fn run_closed_loop_socket(
    addr: std::net::SocketAddr,
    workload: &Workload,
    clients: usize,
    per_client: usize,
) -> (f64, Vec<f64>, L1Aggregate) {
    let latencies = Mutex::new(Vec::with_capacity(clients * per_client));
    let aggregate = Mutex::new(L1Aggregate::default());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let requests = &workload.requests;
            let latencies = &latencies;
            let aggregate = &aggregate;
            scope.spawn(move || {
                let tenant =
                    PlanClient::connect_tcp(addr, ClientConfig::default()).expect("connect tenant");
                let request = &requests[client % requests.len()];
                let mut mine = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let r0 = Instant::now();
                    tenant.plan(request).expect("socket plan");
                    mine.push(r0.elapsed().as_secs_f64());
                }
                // The tenant's cluster drifts 20% past the threshold: the L1
                // entry for the stale snapshot must be invalidated.
                let drifted = PlanRequest::new(
                    request.coeffs.clone(),
                    request.snapshot.with_rate(GpuId(0), 1.2),
                    request.config.clone(),
                );
                tenant.plan(&drifted).expect("drifted socket plan");
                latencies.lock().unwrap().extend(mine);
                let stats = tenant.l1_stats();
                let mut agg = aggregate.lock().unwrap();
                agg.requests += stats.requests;
                agg.hits += stats.hits;
                agg.drift_evicted += stats.drift_evicted;
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    // The drift request is measured work too, but the headline rate counts
    // the pinned-loop requests only (comparable with the local path).
    let rate = (clients * per_client) as f64 / secs.max(1e-9);
    (
        rate,
        latencies.into_inner().unwrap(),
        aggregate.into_inner().unwrap(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let socket = args.iter().any(|a| a == "--socket");
    let (workload, client_counts, per_client) = if smoke {
        // CI smoke: a 16-GPU 7B cluster with one straggler, 4 clients max.
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(5), StragglerLevel::Level1.rate());
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_7b(), HardwareParams::a800_cluster());
        let config = PlannerConfig {
            global_batch_size: 16,
            ..PlannerConfig::default()
        };
        let workload = Workload::from_cluster("16-GPU 7B (smoke)", &cluster, coeffs, config, 2);
        (workload, vec![1usize, 4], 4usize)
    } else {
        // Full: the 128-GPU 110B synthetic scenario from the scenario matrix.
        let scenario = ScenarioMatrix::large_scale()
            .get("128-GPU")
            .cloned()
            .expect("128-GPU scenario");
        let coeffs =
            ProfiledCoefficients::derive(scenario.spec.clone(), HardwareParams::a800_cluster());
        let workload = Workload::from_cluster(
            "128-GPU 110B (scenario matrix)",
            &scenario.cluster(),
            coeffs,
            scenario.planner_config(),
            3,
        );
        (workload, vec![1usize, 4, 16, 64], 8usize)
    };

    println!("Experiment: multi-tenant planning-service throughput");
    println!(
        "workload: {} | {} distinct planning problems | {} requests/client | socket path: {}\n",
        workload.label,
        workload.requests.len(),
        per_client,
        if socket { "on" } else { "off" }
    );

    let (serial_rate, serial_outcomes) = serial_baseline(&workload);
    println!(
        "serial-planner baseline: {serial_rate:.2} plans/sec (direct Planner::plan, no cache, \
         matched per-plan worker width)\n"
    );

    let mut table = Table::new([
        "path",
        "clients",
        "plans/sec",
        "vs serial",
        "L1 hit",
        "L2 hit",
        "coalesced",
        "planner runs",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    let mut local_rows = Vec::new();
    let mut socket_rows = Vec::new();
    for &clients in &client_counts {
        // --- Local (in-process) path: no L1, the service's cache IS the L2.
        let service = Arc::new(PlanService::new(ServiceConfig::default()));
        let (rate, mut latencies) = run_closed_loop(&service, &workload, clients, per_client);
        let metrics = service.metrics();
        let (p50, p99) = (
            percentile(&mut latencies, 0.50),
            percentile(&mut latencies, 0.99),
        );

        // Acceptance: cached/coalesced service throughput must dominate the
        // serial baseline, repeated snapshots must hit the cache, and the
        // service must return byte-identical plans.
        assert!(
            rate >= serial_rate,
            "{clients} clients: {rate:.2} plans/sec below serial baseline {serial_rate:.2}"
        );
        assert!(
            metrics.hit_rate() > 0.0,
            "{clients} clients: no cache hits on repeated snapshots"
        );
        for (request, expected) in workload.requests.iter().zip(&serial_outcomes) {
            let served = service.plan(request).expect("verification plan");
            assert_eq!(served.plan, expected.plan, "service plan diverges");
            assert_eq!(
                served.estimated_step_time.to_bits(),
                expected.estimated_step_time.to_bits()
            );
        }

        table.row([
            "local".to_string(),
            clients.to_string(),
            format!("{rate:.2}"),
            format!("{:.1}x", rate / serial_rate.max(1e-9)),
            "-".to_string(),
            format!("{:.0}%", metrics.hit_rate() * 100.0),
            metrics.coalesced.to_string(),
            metrics.planner_invocations.to_string(),
            format!("{:.1}", p50 * 1e3),
            format!("{:.1}", p99 * 1e3),
        ]);
        local_rows.push(JsonValue::obj(vec![
            ("clients", JsonValue::Num(clients as f64)),
            ("plans_per_sec", JsonValue::Num(rate)),
            ("l2_hit_rate", JsonValue::Num(metrics.hit_rate())),
            ("coalesced", JsonValue::Num(metrics.coalesced as f64)),
            (
                "planner_runs",
                JsonValue::Num(metrics.planner_invocations as f64),
            ),
            ("p50_ms", JsonValue::Num(p50 * 1e3)),
            ("p99_ms", JsonValue::Num(p99 * 1e3)),
        ]));

        if !socket {
            continue;
        }

        // --- Socket path: a standalone daemon on an ephemeral port; every
        // tenant holds its own PlanClient (per-tenant L1 over shared L2).
        let daemon_service = Arc::new(PlanService::new(ServiceConfig::default()));
        let server = PlanServer::bind_tcp(
            Arc::clone(&daemon_service),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind daemon");
        let addr = server.tcp_addr().expect("tcp endpoint");
        let (socket_rate, mut socket_latencies, l1) =
            run_closed_loop_socket(addr, &workload, clients, per_client);
        let daemon_metrics = daemon_service.metrics();
        let (socket_p50, socket_p99) = (
            percentile(&mut socket_latencies, 0.50),
            percentile(&mut socket_latencies, 0.99),
        );

        // Acceptance on the socket path: the daemon must still beat the
        // serial baseline (L1 absorbs the repeats entirely), the L1 must
        // actually hit, drift invalidation must have fired, and plans over
        // the wire must be byte-identical to the direct planner.
        assert!(
            socket_rate >= serial_rate,
            "{clients} socket clients: {socket_rate:.2} plans/sec below serial \
             baseline {serial_rate:.2}"
        );
        assert!(
            l1.hit_rate() > 0.0,
            "{clients} socket clients: no L1 hits on a pinned snapshot"
        );
        assert!(
            l1.drift_evicted >= clients as u64,
            "each tenant's drifted cluster must invalidate its stale L1 entry"
        );
        let verifier =
            PlanClient::connect_tcp(addr, ClientConfig::default()).expect("verifier client");
        for (request, expected) in workload.requests.iter().zip(&serial_outcomes) {
            let served = verifier.plan(request).expect("socket verification plan");
            assert_eq!(served.plan, expected.plan, "socket plan diverges");
            assert_eq!(
                served.estimated_step_time.to_bits(),
                expected.estimated_step_time.to_bits()
            );
        }

        table.row([
            "socket".to_string(),
            clients.to_string(),
            format!("{socket_rate:.2}"),
            format!("{:.1}x", socket_rate / serial_rate.max(1e-9)),
            format!("{:.0}%", l1.hit_rate() * 100.0),
            format!("{:.0}%", daemon_metrics.hit_rate() * 100.0),
            daemon_metrics.coalesced.to_string(),
            daemon_metrics.planner_invocations.to_string(),
            format!("{:.1}", socket_p50 * 1e3),
            format!("{:.1}", socket_p99 * 1e3),
        ]);
        socket_rows.push(JsonValue::obj(vec![
            ("clients", JsonValue::Num(clients as f64)),
            ("plans_per_sec", JsonValue::Num(socket_rate)),
            ("l1_hit_rate", JsonValue::Num(l1.hit_rate())),
            ("l1_drift_evicted", JsonValue::Num(l1.drift_evicted as f64)),
            ("l2_hit_rate", JsonValue::Num(daemon_metrics.hit_rate())),
            (
                "planner_runs",
                JsonValue::Num(daemon_metrics.planner_invocations as f64),
            ),
            ("p50_ms", JsonValue::Num(socket_p50 * 1e3)),
            ("p99_ms", JsonValue::Num(socket_p99 * 1e3)),
        ]));
    }
    table.print();
    println!(
        "\n(Each client count uses a fresh service/daemon; 'planner runs' counts actual \
         Planner::plan invocations — everything else was served from a cache tier or coalesced \
         onto an in-flight computation. 'L1 hit' is the tenant-side client cache (socket path \
         only), 'L2 hit' the shared service cache. Plans are byte-identical to the direct \
         planner on both paths; verified above.)"
    );

    let artifact = JsonValue::obj(vec![
        ("experiment", JsonValue::str("service_throughput")),
        ("workload", JsonValue::str(workload.label.clone())),
        ("smoke", JsonValue::Bool(smoke)),
        ("socket", JsonValue::Bool(socket)),
        ("requests_per_client", JsonValue::Num(per_client as f64)),
        ("serial_plans_per_sec", JsonValue::Num(serial_rate)),
        ("local", JsonValue::Arr(local_rows)),
        ("socket_path", JsonValue::Arr(socket_rows)),
    ]);
    write_json("BENCH_service.json", &artifact).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");
    println!("service throughput acceptance checks passed");
}
