//! Service-throughput experiment: closed-loop load over the planning service.
//!
//! Simulates many elastic training sessions asking for plans against
//! *overlapping* cluster snapshots: `CLIENTS` concurrent closed-loop clients
//! each issue `REQUESTS_PER_CLIENT` requests, cycling (with per-client phase
//! offsets) over a small set of distinct snapshots derived from a
//! `ScenarioMatrix` cluster.  For each client count the harness reports
//! plans/sec, cache hit rate, coalesced count and p50/p99 service times, and
//! compares against the serial-planner baseline (direct `Planner::plan`, one
//! tenant, no cache).
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_service_throughput            # full: 1/4/16/64 clients, 128-GPU 110B scenario
//! cargo run --release -p malleus-bench --bin exp_service_throughput -- --smoke # CI: 16-GPU 7B cluster, 1/4 clients
//! ```
//!
//! The harness asserts its own acceptance criteria (service throughput at
//! every client count ≥ the serial baseline; hit rate > 0 on repeated
//! snapshots; byte-identical plans), so CI can run it in smoke mode as a
//! regression gate.

use malleus_bench::{ScenarioMatrix, Table};
use malleus_cluster::{Cluster, ClusterSnapshot, GpuId, StragglerLevel};
use malleus_core::{Planner, PlannerConfig};
use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};
use malleus_service::{PlanRequest, PlanService, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

/// One workload: distinct planning problems the clients cycle over.
struct Workload {
    label: String,
    requests: Vec<PlanRequest>,
}

impl Workload {
    /// Derive `variants` distinct snapshots from a base cluster by straggling
    /// one additional healthy GPU per variant (deterministic).
    fn from_cluster(
        label: &str,
        cluster: &Cluster,
        coeffs: ProfiledCoefficients,
        config: PlannerConfig,
        variants: usize,
    ) -> Self {
        let base = cluster.snapshot();
        let healthy: Vec<GpuId> = (0..base.num_gpus() as u32)
            .map(GpuId)
            .filter(|&g| base.rate(g) == 1.0)
            .collect();
        let mut snapshots: Vec<ClusterSnapshot> = vec![base.clone()];
        for v in 1..variants {
            let gpu = healthy[(v * 7) % healthy.len()];
            snapshots.push(base.with_rate(gpu, StragglerLevel::Level2.rate()));
        }
        Self {
            label: label.to_string(),
            requests: snapshots
                .into_iter()
                .map(|s| PlanRequest::new(coeffs.clone(), s, config.clone()))
                .collect(),
        }
    }
}

/// Serial baseline: one tenant, direct `Planner::plan`, no cache — the floor
/// the service must beat even at a single client.  The baseline planner runs
/// at the *same per-plan worker width* the service grants its invocations,
/// so the comparison (and the acceptance assert) measures what the service
/// adds — caching and coalescing — rather than a thread-count mismatch that
/// would flip with the host's core count.
fn serial_baseline(workload: &Workload) -> (f64, Vec<malleus_core::PlanOutcome>) {
    let per_plan = ServiceConfig::default().per_plan_parallelism();
    let t0 = Instant::now();
    let outcomes: Vec<_> = workload
        .requests
        .iter()
        .map(|r| {
            Planner::new(r.coeffs.clone(), r.config.clone())
                .with_parallelism(per_plan)
                .plan(&r.snapshot)
                .expect("serial baseline plan")
        })
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    (workload.requests.len() as f64 / secs.max(1e-9), outcomes)
}

/// Closed-loop run: `clients` threads each issue `per_client` requests
/// round-robin over the workload (offset by client index so the first wave
/// hits distinct keys and later waves coalesce/hit).
fn run_closed_loop(
    service: &Arc<PlanService>,
    workload: &Workload,
    clients: usize,
    per_client: usize,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = Arc::clone(service);
            let requests = &workload.requests;
            scope.spawn(move || {
                for i in 0..per_client {
                    let request = &requests[(client + i) % requests.len()];
                    service.plan(request).expect("service plan");
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    (clients * per_client) as f64 / secs.max(1e-9)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (workload, client_counts, per_client) = if smoke {
        // CI smoke: a 16-GPU 7B cluster with one straggler, 4 clients max.
        let mut cluster = Cluster::homogeneous(2, 8);
        cluster.set_rate(GpuId(5), StragglerLevel::Level1.rate());
        let coeffs =
            ProfiledCoefficients::derive(ModelSpec::llama2_7b(), HardwareParams::a800_cluster());
        let config = PlannerConfig {
            global_batch_size: 16,
            ..PlannerConfig::default()
        };
        let workload = Workload::from_cluster("16-GPU 7B (smoke)", &cluster, coeffs, config, 2);
        (workload, vec![1usize, 4], 4usize)
    } else {
        // Full: the 128-GPU 110B synthetic scenario from the scenario matrix.
        let scenario = ScenarioMatrix::large_scale()
            .get("128-GPU")
            .cloned()
            .expect("128-GPU scenario");
        let coeffs =
            ProfiledCoefficients::derive(scenario.spec.clone(), HardwareParams::a800_cluster());
        let workload = Workload::from_cluster(
            "128-GPU 110B (scenario matrix)",
            &scenario.cluster(),
            coeffs,
            scenario.planner_config(),
            3,
        );
        (workload, vec![1usize, 4, 16, 64], 8usize)
    };

    println!("Experiment: multi-tenant planning-service throughput");
    println!(
        "workload: {} | {} distinct planning problems | {} requests/client\n",
        workload.label,
        workload.requests.len(),
        per_client
    );

    let (serial_rate, serial_outcomes) = serial_baseline(&workload);
    println!(
        "serial-planner baseline: {serial_rate:.2} plans/sec (direct Planner::plan, no cache, \
         matched per-plan worker width)\n"
    );

    let mut table = Table::new([
        "clients",
        "plans/sec",
        "vs serial",
        "hit rate",
        "coalesced",
        "planner runs",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    for &clients in &client_counts {
        let service = Arc::new(PlanService::new(ServiceConfig::default()));
        let rate = run_closed_loop(&service, &workload, clients, per_client);
        let metrics = service.metrics();

        // Acceptance: cached/coalesced service throughput must dominate the
        // serial baseline, repeated snapshots must hit the cache, and the
        // service must return byte-identical plans.
        assert!(
            rate >= serial_rate,
            "{clients} clients: {rate:.2} plans/sec below serial baseline {serial_rate:.2}"
        );
        assert!(
            metrics.hit_rate() > 0.0,
            "{clients} clients: no cache hits on repeated snapshots"
        );
        for (request, expected) in workload.requests.iter().zip(&serial_outcomes) {
            let served = service.plan(request).expect("verification plan");
            assert_eq!(served.plan, expected.plan, "service plan diverges");
            assert_eq!(
                served.estimated_step_time.to_bits(),
                expected.estimated_step_time.to_bits()
            );
        }

        table.row([
            clients.to_string(),
            format!("{rate:.2}"),
            format!("{:.1}x", rate / serial_rate.max(1e-9)),
            format!("{:.0}%", metrics.hit_rate() * 100.0),
            metrics.coalesced.to_string(),
            metrics.planner_invocations.to_string(),
            format!("{:.1}", metrics.p50_service_time * 1e3),
            format!("{:.1}", metrics.p99_service_time * 1e3),
        ]);
    }
    table.print();
    println!(
        "\n(Each client count uses a fresh service; 'planner runs' counts actual Planner::plan \
         invocations — everything else was served from the sharded cache or coalesced onto an \
         in-flight computation. Plans are byte-identical to the direct planner; verified above.)"
    );
    println!("service throughput acceptance checks passed");
}
