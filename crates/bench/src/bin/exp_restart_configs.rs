//! Tables 6–7 (Appendix A.3): tuned configurations for the restart baselines.
//!
//! For every model and every number of excluded nodes (0–3) the harness runs
//! the same configuration search an engineer would perform after excluding
//! straggling nodes and restarting Megatron-LM or DeepSpeed, and prints the
//! winning configuration — reproducing the shape of the paper's Tables 6 and 7
//! and illustrating why manual re-tuning at every straggler transition is
//! impractical.
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_restart_configs
//! ```

use malleus_baselines::{restart::RestartFamily, RestartPlanner};
use malleus_bench::paper_workloads;
use malleus_bench::table::Table;
use malleus_cluster::PaperSituation;

fn main() {
    println!("Experiment: tuned restart configurations (Tables 6-7, Appendix A.3)");
    for (family, label) in [
        (RestartFamily::Megatron, "Megatron-LM w/ Restart (Table 6)"),
        (RestartFamily::DeepSpeed, "DeepSpeed w/ Restart (Table 7)"),
    ] {
        println!("\n=== {label} ===");
        let mut table = Table::new([
            "model",
            "Normal (0 nodes removed)",
            "S1/S2/S6 (1 node)",
            "S3/S5 (2 nodes)",
            "S4 (3 nodes)",
        ]);
        for workload in paper_workloads() {
            let planner =
                RestartPlanner::new(family, workload.coeffs(), workload.global_batch_size, 8);
            let snapshot = workload.snapshot_for(PaperSituation::Normal);
            let configs = planner.config_table(&snapshot, &[0, 1, 2, 3]);
            let mut cells = vec![workload.label.to_string()];
            cells.extend(configs.into_iter().map(|(_, c)| c));
            table.row(cells);
        }
        table.print();
    }
}
