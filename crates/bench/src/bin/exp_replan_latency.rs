//! Incremental (delta) replanning latency vs full enumeration.
//!
//! A 256-GPU cluster whose stragglers flap between discrete severity levels
//! is the worst case the paper's §5.3 overlap has to hide: every drift
//! re-triggers planning.  The warm-start delta replanner persists the scored
//! candidate lattice with each outcome and memoizes candidate evaluations, so
//! a *recurrent* drift state replans from memo hits instead of re-evaluating
//! the lattice.  This harness is self-asserting:
//!
//! * every event — drift or structural — must produce a plan **byte-identical**
//!   to the full-enumeration (`incremental = false`) reference;
//! * on the warm flap cycle every delta replan must be fully memoized
//!   (`evaluated == 0`) and, in full mode, at least **10x** faster in
//!   aggregate than the full-enumeration reference;
//! * structural events (GPU failure, rejoin) must fall back to full
//!   enumeration (`lattice.delta == false`).
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_replan_latency            # 256-GPU, asserts ≥10x
//! cargo run --release -p malleus-bench --bin exp_replan_latency -- --smoke # 128-GPU, identity/reuse only
//! ```
//!
//! `--smoke` keeps the run CI-cheap (smaller cluster) and skips only the
//! wall-clock ratio assertion — timing on shared runners is noisy, while the
//! byte-identity and full-reuse assertions are deterministic.  The
//! `BENCH_replan.json` artifact is written in both modes.

use malleus_bench::table::Table;
use malleus_bench::{write_json, JsonValue, ScenarioMatrix};
use malleus_cluster::{GpuId, StragglerLevel};
use malleus_core::{Parallelism, PlanOutcome};
use std::time::Instant;

fn assert_identical(delta: &PlanOutcome, full: &PlanOutcome, label: &str) {
    assert_eq!(delta.plan, full.plan, "{label}: plans diverge");
    assert_eq!(
        delta.chosen_tp, full.chosen_tp,
        "{label}: chosen TP diverges"
    );
    assert_eq!(delta.dp, full.dp, "{label}: DP diverges");
    assert_eq!(
        delta.estimated_step_time.to_bits(),
        full.estimated_step_time.to_bits(),
        "{label}: exact estimates diverge"
    );
    assert_eq!(
        delta.estimated_step_time_simplified.to_bits(),
        full.estimated_step_time_simplified.to_bits(),
        "{label}: simplified estimates diverge"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let label = if smoke { "128-GPU" } else { "256-GPU" };
    println!(
        "Experiment: incremental replanning latency ({label}{})",
        if smoke { ", smoke" } else { "" }
    );
    let scenario = ScenarioMatrix::large_scale()
        .get(label)
        .cloned()
        .unwrap_or_else(|| panic!("no {label} scenario"));
    let base = scenario.snapshot();

    // Delta side: incremental replanning (the default).  Full side: the same
    // planner with the flag off — every replan re-enumerates the lattice.
    let delta_planner = scenario.planner(Parallelism::Fixed(1));
    assert!(
        delta_planner.config.incremental,
        "incremental replanning must default on"
    );
    let mut full_planner = scenario.planner(Parallelism::Fixed(1));
    full_planner.config.incremental = false;

    let mut delta_prev = delta_planner.plan(&base).expect("initial delta plan");
    let mut full_prev = full_planner.plan(&base).expect("initial full plan");
    assert_identical(&delta_prev, &full_prev, "initial plan");
    assert!(
        delta_prev.lattice.is_some(),
        "incremental planner must attach the scored lattice"
    );
    assert!(
        full_prev.lattice.is_none(),
        "non-incremental planner must not attach a lattice"
    );

    // The flapping straggler: one of the scenario's baked-in stragglers
    // cycles through two foreign severity levels and back to its base rate.
    let straggler = base
        .rates
        .iter()
        .position(|r| r.is_finite() && *r > 1.05)
        .expect("scenario has stragglers");
    let gpu = GpuId(straggler as u32);
    let original = base.rates[straggler];
    let mut flaps: Vec<f64> = [
        StragglerLevel::Level1,
        StragglerLevel::Level2,
        StragglerLevel::Level3,
        StragglerLevel::Level8,
    ]
    .iter()
    .map(|l| l.rate())
    .filter(|r| r.to_bits() != original.to_bits())
    .take(2)
    .collect();
    flaps.push(original);

    let mut table = Table::new([
        "event",
        "phase",
        "delta (ms)",
        "full (ms)",
        "reused",
        "evaluated",
    ]);
    let mut events = Vec::new();
    let mut warm_delta = 0.0;
    let mut warm_full = 0.0;
    let cycles = 2;
    for cycle in 0..cycles {
        // Last cycle replays rate states the memo has already seen.
        let phase = if cycle + 1 == cycles { "warm" } else { "cold" };
        for &rate in &flaps {
            let snapshot = base.with_rate(gpu, rate);
            let event = format!("drift gpu{} -> {rate:.2}", gpu.0);
            let t0 = Instant::now();
            let delta_out = delta_planner
                .replan_delta(&snapshot, &delta_prev)
                .unwrap_or_else(|e| panic!("{event}: delta replan: {e}"));
            let delta_secs = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let full_out = full_planner
                .replan(&snapshot, &full_prev.plan)
                .unwrap_or_else(|e| panic!("{event}: full replan: {e}"));
            let full_secs = t0.elapsed().as_secs_f64();

            assert_identical(&delta_out, &full_out, &event);
            let lattice = delta_out.lattice.clone().expect("delta lattice");
            assert!(
                lattice.delta,
                "{event}: drift-only event must take the delta route"
            );
            if phase == "warm" {
                assert_eq!(
                    lattice.evaluated, 0,
                    "{event}: recurrent drift state must be fully memoized"
                );
                assert_eq!(lattice.reused, lattice.entries.len());
                warm_delta += delta_secs;
                warm_full += full_secs;
            }
            table.row([
                event.clone(),
                phase.to_string(),
                format!("{:.2}", delta_secs * 1e3),
                format!("{:.2}", full_secs * 1e3),
                lattice.reused.to_string(),
                lattice.evaluated.to_string(),
            ]);
            events.push(JsonValue::obj(vec![
                ("event", JsonValue::str(event)),
                ("phase", JsonValue::str(phase)),
                ("delta_secs", JsonValue::Num(delta_secs)),
                ("full_secs", JsonValue::Num(full_secs)),
                ("reused", JsonValue::Num(lattice.reused as f64)),
                ("evaluated", JsonValue::Num(lattice.evaluated as f64)),
                ("delta_route", JsonValue::Bool(lattice.delta)),
            ]));
            delta_prev = delta_out;
            full_prev = full_out;
        }
    }

    // Structural events: the flapping GPU fails outright, then rejoins.
    // Both must bypass the memo and fall back to full enumeration — and stay
    // byte-identical to the reference while doing so.
    let failed = base.with_rate(gpu, f64::INFINITY);
    let rejoined = failed.with_rate(gpu, StragglerLevel::Level1.rate());
    for (event, snapshot) in [
        (format!("failure gpu{}", gpu.0), failed.clone()),
        (format!("rejoin gpu{} -> Level1", gpu.0), rejoined),
    ] {
        let t0 = Instant::now();
        let delta_out = delta_planner
            .replan_delta(&snapshot, &delta_prev)
            .unwrap_or_else(|e| panic!("{event}: delta replan: {e}"));
        let delta_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let full_out = full_planner
            .replan(&snapshot, &full_prev.plan)
            .unwrap_or_else(|e| panic!("{event}: full replan: {e}"));
        let full_secs = t0.elapsed().as_secs_f64();
        assert_identical(&delta_out, &full_out, &event);
        let lattice = delta_out.lattice.clone().expect("delta lattice");
        assert!(
            !lattice.delta,
            "{event}: structural event must fall back to full enumeration"
        );
        table.row([
            event.clone(),
            "structural".to_string(),
            format!("{:.2}", delta_secs * 1e3),
            format!("{:.2}", full_secs * 1e3),
            lattice.reused.to_string(),
            lattice.evaluated.to_string(),
        ]);
        events.push(JsonValue::obj(vec![
            ("event", JsonValue::str(event)),
            ("phase", JsonValue::str("structural")),
            ("delta_secs", JsonValue::Num(delta_secs)),
            ("full_secs", JsonValue::Num(full_secs)),
            ("reused", JsonValue::Num(lattice.reused as f64)),
            ("evaluated", JsonValue::Num(lattice.evaluated as f64)),
            ("delta_route", JsonValue::Bool(lattice.delta)),
        ]));
        delta_prev = delta_out;
        full_prev = full_out;
    }

    println!();
    table.print();
    let speedup = warm_full / warm_delta.max(1e-9);
    println!(
        "\nWarm flap cycle: delta {:.2} ms vs full {:.2} ms -> {speedup:.1}x",
        warm_delta * 1e3,
        warm_full * 1e3
    );
    println!("(Every event above was byte-identical to full enumeration.)");
    if !smoke {
        assert!(
            speedup >= 10.0,
            "warm drift-only replans must be at least 10x faster than full \
             enumeration at {label} (got {speedup:.1}x)"
        );
    }

    let artifact = JsonValue::obj(vec![
        ("experiment", JsonValue::str("replan_latency")),
        ("smoke", JsonValue::Bool(smoke)),
        ("scenario", JsonValue::str(label)),
        ("num_gpus", JsonValue::Num(scenario.num_gpus() as f64)),
        ("warm_delta_secs", JsonValue::Num(warm_delta)),
        ("warm_full_secs", JsonValue::Num(warm_full)),
        ("warm_speedup", JsonValue::Num(speedup)),
        ("events", JsonValue::Arr(events)),
    ]);
    match write_json("BENCH_replan.json", &artifact) {
        Ok(()) => println!("\nWrote BENCH_replan.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_replan.json: {e}"),
    }
}
