//! Table 3: accuracy of the cost model and distance from the theoretic optimum.
//!
//! For every model and straggler situation this harness reports
//!
//! * `R_actual` — simulated step time with stragglers divided by the healthy
//!   step time,
//! * `R_opt`    — the theoretic-optimal ratio `N / ((N−n) + Σ 1/x_i)`,
//! * `R_est`    — the ratio predicted by the planner's cost model,
//!
//! together with the gaps `1 − R_opt/R_actual` and `1 − R_est/R_actual` that
//! Table 3 tabulates.
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_cost_model_accuracy
//! ```

use malleus_bench::table::Table;
use malleus_bench::{paper_workloads, PaperWorkload};
use malleus_cluster::PaperSituation;
use malleus_core::CostModel;
use malleus_sim::TrainingSimulator;

fn run_workload(workload: &PaperWorkload) {
    println!("\n##### {} model #####", workload.label);
    let planner = workload.planner();
    let simulator = TrainingSimulator::new(workload.coeffs());

    let healthy = workload.snapshot_for(PaperSituation::Normal);
    let normal_outcome = planner.plan(&healthy).expect("normal plan");
    let normal_actual = simulator
        .step(&normal_outcome.plan, &healthy)
        .expect("normal step")
        .step_time;
    let normal_estimated = normal_outcome.estimated_step_time;

    let mut table = Table::new([
        "situation",
        "R_actual",
        "R_opt",
        "1-R_opt/R_actual",
        "R_est",
        "1-R_est/R_actual",
    ]);
    for situation in [
        PaperSituation::S1,
        PaperSituation::S2,
        PaperSituation::S3,
        PaperSituation::S4,
        PaperSituation::S5,
        PaperSituation::S6,
    ] {
        let snapshot = workload.snapshot_for(situation);
        let outcome = planner
            .replan(&snapshot, &normal_outcome.plan)
            .expect("straggled plan");
        let actual = simulator
            .step(&outcome.plan, &snapshot)
            .expect("straggled step")
            .step_time;
        let r_actual = actual / normal_actual;
        let r_opt = CostModel::theoretic_optimal_ratio(&snapshot);
        let r_est = outcome.estimated_step_time / normal_estimated;
        table.row([
            situation.name().to_string(),
            format!("{r_actual:.2}"),
            format!("{r_opt:.2}"),
            format!("{:.2}%", (1.0 - r_opt / r_actual) * 100.0),
            format!("{r_est:.2}"),
            format!("{:.2}%", (1.0 - r_est / r_actual) * 100.0),
        ]);
    }
    table.print();
}

fn main() {
    println!("Experiment: cost-model accuracy and distance from the theoretic optimum (Table 3)");
    for workload in paper_workloads() {
        run_workload(&workload);
    }
}
