//! Figure 8: comparison with the fault-tolerant baseline Oobleck on the 32B
//! model.
//!
//! Oobleck treats stragglers as faults: it excludes their nodes, reconfigures
//! only when a precomputed pipeline template covers the new node count, and
//! restarts otherwise.  The harness reports, for every situation of the trace,
//! both systems' step times, the ratio between them, and the transition cost
//! (Malleus migration vs. Oobleck migration or restart).
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_oobleck
//! ```

use malleus_baselines::{OobleckPlanner, OobleckTransition};
use malleus_bench::paper_workloads;
use malleus_bench::table::Table;
use malleus_cluster::{PaperSituation, Trace};
use malleus_core::PlannerConfig;
use malleus_runtime::TrainingSession;

fn main() {
    println!("Experiment: comparison with Oobleck, 32B model (Figure 8)");
    let workload = &paper_workloads()[0];
    let coeffs = workload.coeffs();

    // ---- Malleus session over the trace ----
    let cluster = workload.cluster();
    let trace = Trace::paper_trace(&cluster, 20);
    let mut session = TrainingSession::new(
        coeffs.clone(),
        PlannerConfig {
            global_batch_size: workload.global_batch_size,
            ..PlannerConfig::default()
        },
        cluster,
    );
    let malleus = session.run(&trace).expect("Malleus session");

    // ---- Oobleck over the same sequence of situations ----
    let oobleck = OobleckPlanner::new(coeffs, workload.global_batch_size, 8);
    let situations = [
        PaperSituation::Normal,
        PaperSituation::S1,
        PaperSituation::S2,
        PaperSituation::S3,
        PaperSituation::S4,
        PaperSituation::S5,
        PaperSituation::S6,
        PaperSituation::Normal,
    ];
    let initial_nodes = workload.num_nodes as usize;
    let mut prev_nodes: Vec<u32> = (0..workload.num_nodes).collect();

    let mut table = Table::new([
        "phase",
        "Oobleck (s)",
        "Malleus (s)",
        "ratio",
        "Oobleck transition",
        "Malleus migration (s)",
    ]);
    for (i, situation) in situations.iter().enumerate() {
        let snapshot = workload.snapshot_for(*situation);
        let outcome = oobleck
            .handle_situation(&snapshot, &prev_nodes, initial_nodes)
            .expect("Oobleck outcome");
        let malleus_phase = &malleus.phases[i];
        let transition = match outcome.transition {
            OobleckTransition::NoChange => "-".to_string(),
            OobleckTransition::Migrated => format!("migrate {:.1}s", outcome.transition_cost),
            OobleckTransition::Restarted => format!("RESTART {:.0}s", outcome.transition_cost),
        };
        table.row([
            situation.name().to_string(),
            format!("{:.2}", outcome.step_time),
            format!("{:.2}", malleus_phase.step_time),
            format!("{:.2}x", outcome.step_time / malleus_phase.step_time),
            transition,
            format!("{:.1}", malleus_phase.migration_time),
        ]);
        prev_nodes = outcome.nodes_used;
    }
    table.print();
}
