//! Table 4: case studies of the parallelization plans Malleus discovers.
//!
//! * the 110B model under S4 (one level-1, level-2 and level-3 straggler on
//!   three different nodes), and
//! * the 32B model under S5 (eight level-1 stragglers on one node plus a
//!   level-2 straggler on another node),
//!
//! printing the per-pipeline stages, TP groups, layer counts and micro-batch
//! counts in the same shape as the paper's Table 4.
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_case_studies
//! ```

use malleus_bench::paper_workloads;
use malleus_cluster::PaperSituation;

fn main() {
    println!("Experiment: case studies of parallelization plans (Table 4)");
    let workloads = paper_workloads();
    let cases = [
        (&workloads[2], PaperSituation::S4, "110B under S4"),
        (&workloads[0], PaperSituation::S5, "32B under S5"),
    ];
    for (workload, situation, label) in cases {
        let snapshot = workload.snapshot_for(situation);
        let stragglers: Vec<String> = snapshot
            .stragglers(1.05)
            .into_iter()
            .map(|g| format!("x{}={:.2}", g.0, snapshot.rate(g)))
            .collect();
        println!("\n=== {label} (stragglers: {}) ===", stragglers.join(", "));
        let planner = workload.planner();
        match planner.plan(&snapshot) {
            Ok(outcome) => {
                println!(
                    "chosen max TP degree {} | DP {} | estimated {:.2} s/step",
                    outcome.chosen_tp, outcome.dp, outcome.estimated_step_time
                );
                print!("{}", outcome.plan.describe(&snapshot));
            }
            Err(e) => println!("planning failed: {e}"),
        }
    }
}
