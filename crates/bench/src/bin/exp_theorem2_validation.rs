//! Figure 5 + Figure 11 (Appendix B.7): group splitting candidates and the
//! Theorem 2 ranking.
//!
//! One node of the 110B workload hosts three stragglers (x = 2.57, 5.42,
//! 12.53).  After isolating the heaviest straggler, the remaining seven GPUs
//! can be re-grouped into {4, 2, 1}-sized consecutive runs in several ways
//! (Appendix B.7).  For each grouping possibility the harness reports the
//! Theorem 2 estimate (relative, from the harmonic capacity) and the
//! end-to-end simulated step time of the full plan built on top of it,
//! verifying that the constant-time estimate ranks the candidates in the same
//! order as the expensive end-to-end evaluation.
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_theorem2_validation
//! ```

use malleus_bench::paper_workloads;
use malleus_bench::table::Table;
use malleus_cluster::{Cluster, GpuId};
use malleus_core::{
    assignment::assign_data, grouping::GroupingResult, orchestration, CostModel,
    ParallelizationPlan, PipelinePlan, TpGroup,
};
use malleus_sim::TrainingSimulator;
use malleus_solver::harmonic_capacity;
use std::collections::BTreeSet;

/// Build a full plan from a fixed grouping result by running the orchestration
/// and lower-level assignment stages of the planner.
fn plan_from_grouping(
    cost: &CostModel,
    grouping: &GroupingResult,
    snapshot: &malleus_cluster::ClusterSnapshot,
    dp: usize,
    global_batch: u64,
    num_layers: u64,
) -> Option<ParallelizationPlan> {
    let division =
        orchestration::divide_groups(cost, grouping, snapshot, dp, global_batch, 1, true, 1)
            .ok()?;
    let mut assignments = Vec::new();
    for groups in &division.pipelines {
        assignments.push(orchestration::order_and_assign_layers(
            cost, groups, snapshot, num_layers, 1, dp as u32, false,
        )?);
    }
    let objectives: Vec<f64> = assignments.iter().map(|a| a.objective).collect();
    let micro_batches = assign_data(&objectives, global_batch, false)?;
    let pipelines: Vec<PipelinePlan> = assignments
        .iter()
        .zip(micro_batches.iter())
        .map(|(a, &m)| PipelinePlan {
            stages: a.stages.clone(),
            num_micro_batches: m,
        })
        .collect();
    let active: BTreeSet<GpuId> = pipelines.iter().flat_map(|p| p.gpus()).collect();
    let removed = (0..snapshot.num_gpus() as u32)
        .map(GpuId)
        .filter(|g| !active.contains(g))
        .collect();
    Some(ParallelizationPlan {
        pipelines,
        micro_batch_size: 1,
        removed_gpus: removed,
    })
}

fn main() {
    println!("Experiment: Theorem 2 ranking of group-splitting candidates (Figures 5 and 11)");
    let workload = &paper_workloads()[2]; // 110B on 64 GPUs
    let coeffs = workload.coeffs();
    let cost = CostModel::new(coeffs.clone());
    let simulator = TrainingSimulator::new(coeffs.clone());

    let mut cluster = Cluster::homogeneous(workload.num_nodes, 8);
    cluster.set_rate(GpuId(0), 12.53);
    cluster.set_rate(GpuId(1), 5.42);
    cluster.set_rate(GpuId(2), 2.57);
    let snapshot = cluster.snapshot();

    // The heavy straggler (GPU 0) is isolated; the remaining 7 GPUs of node 0
    // are re-grouped into {4, 2, 1} in three representative orders (Figure 5).
    // GPUs of node 0 sorted by descending rate: 1 (5.42), 2 (2.57), 3..7 (1.0).
    let sorted: Vec<GpuId> = vec![1, 2, 3, 4, 5, 6, 7].into_iter().map(GpuId).collect();
    let candidates: Vec<(&str, Vec<usize>)> = vec![
        ("sizes [2,4,1]", vec![2, 4, 1]),
        ("sizes [2,1,4]", vec![2, 1, 4]),
        ("sizes [1,2,4]", vec![1, 2, 4]),
        ("sizes [4,2,1]", vec![4, 2, 1]),
    ];

    let mut table = Table::new([
        "grouping possibility",
        "Σ 1/y (node 0)",
        "Theorem 2 est. (rel)",
        "simulated step (s)",
    ]);
    let mut results: Vec<(f64, f64)> = Vec::new();
    for (label, sizes) in &candidates {
        // Build node 0's groups: the isolated heavy straggler + consecutive runs.
        let mut groups = vec![TpGroup::new(vec![GpuId(0)])];
        let mut offset = 0usize;
        for &size in sizes {
            groups.push(TpGroup::new(sorted[offset..offset + size].to_vec()));
            offset += size;
        }
        // Other nodes stay as full TP-8 groups.
        for node in 1..workload.num_nodes {
            groups.push(TpGroup::new((node * 8..node * 8 + 8).map(GpuId).collect()));
        }
        let grouping = GroupingResult { max_tp: 8, groups };
        let rates = grouping.group_rates(&snapshot, &coeffs, 1);
        let node0_capacity = harmonic_capacity(&rates[..sizes.len() + 1]);
        let total_capacity = harmonic_capacity(&rates);
        let theorem2_estimate = 1.0 / total_capacity;

        let simulated = plan_from_grouping(&cost, &grouping, &snapshot, 2, 64, 80)
            .and_then(|plan| simulator.step(&plan, &snapshot).ok())
            .map(|r| r.step_time)
            .unwrap_or(f64::NAN);
        results.push((theorem2_estimate, simulated));
        table.row([
            label.to_string(),
            format!("{node0_capacity:.3}"),
            format!("{theorem2_estimate:.4}"),
            format!("{simulated:.2}"),
        ]);
    }
    table.print();

    // Check rank agreement between the Theorem 2 estimate and the simulation.
    let best_by_estimate = results
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
        .map(|(i, _)| i)
        .unwrap();
    let best_by_simulation = results
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "\nTheorem 2 picks candidate #{best_by_estimate}, end-to-end simulation picks #{best_by_simulation} ({})",
        if best_by_estimate == best_by_simulation {
            "agreement"
        } else {
            "disagreement — see EXPERIMENTS.md discussion"
        }
    );
}
