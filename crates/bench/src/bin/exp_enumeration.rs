//! Figure 10 (Appendix A.1): brute-force enumeration of layer and data
//! partitioning around a single straggler, validating that the cost model's
//! optimum coincides with the end-to-end optimum.
//!
//! Setup (as in the paper): the 32B model with a fixed DP4 × PP2 × TP2 layout,
//! sequence length reduced to 1K to lift the memory constraints, global batch
//! 512, micro-batch 1, one level-1 straggler.  First every possible layer split
//! of the straggler's pipeline is enumerated (the three healthy pipelines stay
//! at 30/30); then, with the best layer split fixed, every possible number of
//! micro-batches for the straggler's pipeline is enumerated.
//!
//! ```bash
//! cargo run --release -p malleus-bench --bin exp_enumeration
//! ```

use malleus_bench::table::Table;
use malleus_cluster::{Cluster, GpuId};
use malleus_core::{CostModel, ParallelizationPlan, PipelinePlan, StagePlan, TpGroup};
use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};
use malleus_sim::TrainingSimulator;

const GLOBAL_BATCH: u64 = 512;
const LAYERS: u32 = 60;

/// Build the fixed DP4×PP2×TP2 plan with the given straggler-pipeline layer
/// split and micro-batch count (remaining micro-batches spread evenly over the
/// three healthy pipelines).
fn build_plan(straggler_layers: u32, straggler_micro_batches: u64) -> ParallelizationPlan {
    let mut pipelines = Vec::new();
    let remaining = GLOBAL_BATCH - straggler_micro_batches;
    for dp_rank in 0..4u32 {
        let base = dp_rank * 4;
        let stage = |offset: u32, layers: u32| StagePlan {
            group: TpGroup::new(vec![GpuId(base + offset), GpuId(base + offset + 1)]),
            layers,
        };
        let (l0, l1, m) = if dp_rank == 0 {
            (
                straggler_layers,
                LAYERS - straggler_layers,
                straggler_micro_batches,
            )
        } else {
            let share = remaining / 3
                + if (dp_rank as u64 - 1) < remaining % 3 {
                    1
                } else {
                    0
                };
            (LAYERS / 2, LAYERS / 2, share)
        };
        pipelines.push(PipelinePlan {
            stages: vec![stage(0, l0), stage(2, l1)],
            num_micro_batches: m,
        });
    }
    ParallelizationPlan {
        pipelines,
        micro_batch_size: 1,
        removed_gpus: (16..32).map(GpuId).collect(),
    }
}

fn main() {
    println!("Experiment: enumeration of layer and data partitioning (Figure 10, Appendix A.1)");
    // 32B model with a 1K context so memory constraints never bind.
    let mut spec = ModelSpec::llama2_32b();
    spec.seq_len = 1024;
    let coeffs = ProfiledCoefficients::derive(spec, HardwareParams::a800_cluster());
    let cost = CostModel::new(coeffs.clone());
    let simulator = TrainingSimulator::new(coeffs);

    let mut cluster = Cluster::homogeneous(4, 8);
    cluster.set_rate(GpuId(0), 2.57); // level-1 straggler in pipeline 0, stage 0
    let snapshot = cluster.snapshot();

    // ---- sweep the straggler stage's layer count ----
    println!("\nLayer enumeration (straggler pipeline keeps 128 micro-batches):");
    let mut table = Table::new(["straggler layers", "estimated (s)", "simulated (s)"]);
    let mut best_est: Option<(u32, f64)> = None;
    let mut best_actual: Option<(u32, f64)> = None;
    for l in 3..=30u32 {
        let plan = build_plan(l, 128);
        // Very skewed splits put too many layers on the non-straggling stage
        // and exceed its memory budget; those points are reported as OOM and
        // excluded from the optimum search (the paper's testbed hits the same
        // wall, which is why it reduces the sequence length).
        let Ok(report) = simulator.step(&plan, &snapshot) else {
            if l % 3 == 0 || l <= 6 {
                table.row([l.to_string(), "OOM".to_string(), "OOM".to_string()]);
            }
            continue;
        };
        let estimated = cost.step_time(&plan, &snapshot);
        let simulated = report.step_time;
        if best_est.map(|(_, t)| estimated < t).unwrap_or(true) {
            best_est = Some((l, estimated));
        }
        if best_actual.map(|(_, t)| simulated < t).unwrap_or(true) {
            best_actual = Some((l, simulated));
        }
        if l % 3 == 0 || l <= 6 {
            table.row([
                l.to_string(),
                format!("{estimated:.2}"),
                format!("{simulated:.2}"),
            ]);
        }
    }
    table.print();
    let (l_est, _) = best_est.unwrap();
    let (l_act, _) = best_actual.unwrap();
    println!("optimal layer split: estimated {l_est} layers, end-to-end {l_act} layers");

    // ---- sweep the straggler pipeline's micro-batch count ----
    println!("\nData enumeration (straggler stage fixed at {l_est} layers):");
    let mut table = Table::new(["straggler micro-batches", "estimated (s)", "simulated (s)"]);
    let mut best_est_m: Option<(u64, f64)> = None;
    let mut best_actual_m: Option<(u64, f64)> = None;
    for m in (2..=128u64).step_by(2) {
        let plan = build_plan(l_est, m);
        let estimated = cost.step_time(&plan, &snapshot);
        let simulated = simulator.step(&plan, &snapshot).expect("step").step_time;
        if best_est_m.map(|(_, t)| estimated < t).unwrap_or(true) {
            best_est_m = Some((m, estimated));
        }
        if best_actual_m.map(|(_, t)| simulated < t).unwrap_or(true) {
            best_actual_m = Some((m, simulated));
        }
        if m % 12 == 2 || m >= 120 {
            table.row([
                m.to_string(),
                format!("{estimated:.2}"),
                format!("{simulated:.2}"),
            ]);
        }
    }
    table.print();
    let (m_est, _) = best_est_m.unwrap();
    let (m_act, _) = best_actual_m.unwrap();
    println!(
        "optimal data split: estimated {m_est} micro-batches, end-to-end {m_act} micro-batches"
    );
    println!(
        "cost-model optimum and end-to-end optimum agree within {} layers / {} micro-batches",
        (l_est as i64 - l_act as i64).abs(),
        (m_est as i64 - m_act as i64).abs()
    );
}
