//! `malleus-bench` — experiment harnesses and benchmarks.
//!
//! Every table and figure in the paper's evaluation (§7 and Appendices A–B)
//! has a corresponding binary under `src/bin/` that regenerates it on the
//! simulated substrate; `EXPERIMENTS.md` at the repository root records the
//! paper-reported values next to the reproduced ones.  The criterion benches
//! under `benches/` cover the planner, solver and simulator hot paths.
//!
//! This library holds the shared pieces: canonical workload setups
//! ([`scenarios`]), minimal text-table rendering ([`table`]), and a
//! hand-rolled JSON writer for the machine-readable `BENCH_*.json` artifacts
//! CI uploads ([`report`]).

pub mod report;
pub mod scenarios;
pub mod table;

pub use report::{write_json, JsonValue};
pub use scenarios::{paper_workloads, PaperWorkload, ScenarioMatrix, SyntheticScenario};
pub use table::Table;
