//! Canonical experiment workloads (§7.1).
//!
//! The paper trains three LLaMA-2-architecture models: the 32B model on 32
//! GPUs (4 nodes) and the 70B / 110B models on 64 GPUs (8 nodes), with a
//! global batch of 64 sequences of 4K tokens.

use malleus_cluster::{Cluster, ClusterSnapshot, PaperSituation};
use malleus_core::{Planner, PlannerConfig};
use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};

/// One of the paper's three end-to-end workloads.
#[derive(Debug, Clone)]
pub struct PaperWorkload {
    /// Short label (`"32B"`, `"70B"`, `"110B"`).
    pub label: &'static str,
    /// Model architecture.
    pub spec: ModelSpec,
    /// Number of 8-GPU nodes used for this workload.
    pub num_nodes: u32,
    /// Global batch size.
    pub global_batch_size: u64,
}

impl PaperWorkload {
    /// The simulated cluster for this workload (all GPUs healthy).
    pub fn cluster(&self) -> Cluster {
        Cluster::homogeneous(self.num_nodes, 8)
    }

    /// Profiled coefficients on A800-class hardware.
    pub fn coeffs(&self) -> ProfiledCoefficients {
        ProfiledCoefficients::derive(self.spec.clone(), HardwareParams::a800_cluster())
    }

    /// A Malleus planner with the default configuration for this workload.
    pub fn planner(&self) -> Planner {
        Planner::new(
            self.coeffs(),
            PlannerConfig {
                global_batch_size: self.global_batch_size,
                ..PlannerConfig::default()
            },
        )
    }

    /// Snapshot of the cluster under one of the paper's situations.
    pub fn snapshot_for(&self, situation: PaperSituation) -> ClusterSnapshot {
        let mut cluster = self.cluster();
        let sit = situation.situation(&cluster);
        cluster.apply_situation(&sit.rates);
        cluster.snapshot()
    }

    /// Total number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.num_nodes as usize * 8
    }
}

/// The three end-to-end workloads of §7.1.
pub fn paper_workloads() -> Vec<PaperWorkload> {
    vec![
        PaperWorkload {
            label: "32B",
            spec: ModelSpec::llama2_32b(),
            num_nodes: 4,
            global_batch_size: 64,
        },
        PaperWorkload {
            label: "70B",
            spec: ModelSpec::llama2_70b(),
            num_nodes: 8,
            global_batch_size: 64,
        },
        PaperWorkload {
            label: "110B",
            spec: ModelSpec::llama2_110b(),
            num_nodes: 8,
            global_batch_size: 64,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_match_the_paper_setup() {
        let w = paper_workloads();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].num_gpus(), 32);
        assert_eq!(w[1].num_gpus(), 64);
        assert_eq!(w[2].num_gpus(), 64);
        assert!(w.iter().all(|w| w.global_batch_size == 64));
    }

    #[test]
    fn snapshots_apply_situations() {
        let w = &paper_workloads()[0];
        let s = w.snapshot_for(PaperSituation::S4);
        assert_eq!(s.stragglers(1.05).len(), 3);
    }
}
