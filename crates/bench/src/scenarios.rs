//! Canonical experiment workloads (§7.1) and synthetic large-scale scenarios.
//!
//! The paper trains three LLaMA-2-architecture models: the 32B model on 32
//! GPUs (4 nodes) and the 70B / 110B models on 64 GPUs (8 nodes), with a
//! global batch of 64 sequences of 4K tokens.  Beyond the paper's testbed,
//! [`ScenarioMatrix`] generates deterministic 128/256/512-GPU clusters with
//! mixed straggler levels and whole-node failures, used by the
//! planning-scalability experiment and the parallel-planner benchmarks.

use malleus_cluster::{Cluster, ClusterSnapshot, GpuId, PaperSituation, StragglerLevel};
use malleus_core::{Parallelism, Planner, PlannerConfig};
use malleus_model::{HardwareParams, ModelSpec, ProfiledCoefficients};
use rand::prelude::*;
use rand::rngs::StdRng;

/// One of the paper's three end-to-end workloads.
#[derive(Debug, Clone)]
pub struct PaperWorkload {
    /// Short label (`"32B"`, `"70B"`, `"110B"`).
    pub label: &'static str,
    /// Model architecture.
    pub spec: ModelSpec,
    /// Number of 8-GPU nodes used for this workload.
    pub num_nodes: u32,
    /// Global batch size.
    pub global_batch_size: u64,
}

impl PaperWorkload {
    /// The simulated cluster for this workload (all GPUs healthy).
    pub fn cluster(&self) -> Cluster {
        Cluster::homogeneous(self.num_nodes, 8)
    }

    /// Profiled coefficients on A800-class hardware.
    pub fn coeffs(&self) -> ProfiledCoefficients {
        ProfiledCoefficients::derive(self.spec.clone(), HardwareParams::a800_cluster())
    }

    /// A Malleus planner with the default configuration for this workload.
    pub fn planner(&self) -> Planner {
        Planner::new(
            self.coeffs(),
            PlannerConfig {
                global_batch_size: self.global_batch_size,
                ..PlannerConfig::default()
            },
        )
    }

    /// Snapshot of the cluster under one of the paper's situations.
    pub fn snapshot_for(&self, situation: PaperSituation) -> ClusterSnapshot {
        let mut cluster = self.cluster();
        let sit = situation.situation(&cluster);
        cluster.apply_situation(&sit.rates);
        cluster.snapshot()
    }

    /// Total number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.num_nodes as usize * 8
    }
}

/// The three end-to-end workloads of §7.1.
pub fn paper_workloads() -> Vec<PaperWorkload> {
    vec![
        PaperWorkload {
            label: "32B",
            spec: ModelSpec::llama2_32b(),
            num_nodes: 4,
            global_batch_size: 64,
        },
        PaperWorkload {
            label: "70B",
            spec: ModelSpec::llama2_70b(),
            num_nodes: 8,
            global_batch_size: 64,
        },
        PaperWorkload {
            label: "110B",
            spec: ModelSpec::llama2_110b(),
            num_nodes: 8,
            global_batch_size: 64,
        },
    ]
}

/// A synthetic straggler scenario at a scale the paper never ran: a
/// homogeneous cluster with some whole nodes failed and a mix of level-1/2/3/8
/// stragglers scattered across the survivors, all derived deterministically
/// from a seed.
#[derive(Debug, Clone)]
pub struct SyntheticScenario {
    /// Short label (`"128-GPU"`, `"256-GPU"`, `"512-GPU"`).
    pub label: &'static str,
    /// Model architecture planned on this cluster.
    pub spec: ModelSpec,
    /// Number of 8-GPU nodes.
    pub num_nodes: u32,
    /// Whole nodes taken down (all 8 GPUs failed).
    pub failed_nodes: usize,
    /// Stragglers injected on surviving GPUs, cycling through levels
    /// 1 → 2 → 3 → 8.
    pub straggler_count: usize,
    /// Global batch size (scaled with the cluster, as in Appendix A.2).
    pub global_batch_size: u64,
    /// RNG seed; the same seed always yields the same cluster.
    pub seed: u64,
}

impl SyntheticScenario {
    /// Total number of GPUs (including failed ones).
    pub fn num_gpus(&self) -> usize {
        self.num_nodes as usize * 8
    }

    /// Build the degraded cluster for this scenario.
    pub fn cluster(&self) -> Cluster {
        let mut cluster = Cluster::homogeneous(self.num_nodes, 8);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut nodes: Vec<u32> = (0..self.num_nodes).collect();
        nodes.shuffle(&mut rng);
        for &node in nodes.iter().take(self.failed_nodes) {
            for gpu in cluster.gpus_on_node(node).to_vec() {
                cluster.set_rate(gpu, f64::INFINITY);
            }
        }
        let mut survivors: Vec<GpuId> = cluster
            .gpus()
            .iter()
            .map(|g| g.id)
            .filter(|&g| !cluster.is_failed(g))
            .collect();
        survivors.shuffle(&mut rng);
        for (i, gpu) in survivors.into_iter().take(self.straggler_count).enumerate() {
            let level = match i % 4 {
                0 => StragglerLevel::Level1,
                1 => StragglerLevel::Level2,
                2 => StragglerLevel::Level3,
                _ => StragglerLevel::Level8,
            };
            cluster.set_rate(gpu, level.rate());
        }
        cluster
    }

    /// Snapshot of the degraded cluster.
    pub fn snapshot(&self) -> ClusterSnapshot {
        self.cluster().snapshot()
    }

    /// Planner configuration: the Appendix A.2 scaling methodology (global
    /// batch grows linearly with the cluster), enumerating DP degrees around
    /// the maintained ZeRO-1 degree of 8 and micro-batches {1, 2} — a
    /// candidate lattice wide enough to exercise the parallel fan-out.
    pub fn planner_config(&self) -> PlannerConfig {
        PlannerConfig {
            global_batch_size: self.global_batch_size,
            candidate_micro_batch_sizes: vec![1, 2],
            candidate_dp: Some(vec![4, 8, 16]),
            ..PlannerConfig::default()
        }
    }

    /// A planner for this scenario with the given worker-count knob.
    pub fn planner(&self, parallelism: Parallelism) -> Planner {
        let coeffs =
            ProfiledCoefficients::derive(self.spec.clone(), HardwareParams::a800_cluster());
        Planner::new(coeffs, self.planner_config()).with_parallelism(parallelism)
    }
}

/// The matrix of synthetic large-scale scenarios exercised by
/// `exp_planning_scalability` and `planner_bench`.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// The scenarios, ordered by cluster size.
    pub scenarios: Vec<SyntheticScenario>,
}

impl ScenarioMatrix {
    /// 128/256/512-GPU clusters on the 110B model with mixed straggler levels
    /// and node failures.
    pub fn large_scale() -> Self {
        let spec = ModelSpec::llama2_110b();
        Self {
            scenarios: vec![
                SyntheticScenario {
                    label: "128-GPU",
                    spec: spec.clone(),
                    num_nodes: 16,
                    failed_nodes: 1,
                    straggler_count: 8,
                    global_batch_size: 128,
                    seed: 128,
                },
                SyntheticScenario {
                    label: "256-GPU",
                    spec: spec.clone(),
                    num_nodes: 32,
                    failed_nodes: 2,
                    straggler_count: 16,
                    global_batch_size: 256,
                    seed: 256,
                },
                SyntheticScenario {
                    label: "512-GPU",
                    spec,
                    num_nodes: 64,
                    failed_nodes: 3,
                    straggler_count: 24,
                    global_batch_size: 512,
                    seed: 512,
                },
            ],
        }
    }

    /// Look up a scenario by label.
    pub fn get(&self, label: &str) -> Option<&SyntheticScenario> {
        self.scenarios.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_match_the_paper_setup() {
        let w = paper_workloads();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].num_gpus(), 32);
        assert_eq!(w[1].num_gpus(), 64);
        assert_eq!(w[2].num_gpus(), 64);
        assert!(w.iter().all(|w| w.global_batch_size == 64));
    }

    #[test]
    fn snapshots_apply_situations() {
        let w = &paper_workloads()[0];
        let s = w.snapshot_for(PaperSituation::S4);
        assert_eq!(s.stragglers(1.05).len(), 3);
    }

    #[test]
    fn scenario_matrix_covers_the_advertised_scales() {
        let matrix = ScenarioMatrix::large_scale();
        let sizes: Vec<usize> = matrix.scenarios.iter().map(|s| s.num_gpus()).collect();
        assert_eq!(sizes, vec![128, 256, 512]);
        assert!(matrix.get("256-GPU").is_some());
        assert!(matrix.get("1024-GPU").is_none());
    }

    #[test]
    fn synthetic_scenarios_are_deterministic_per_seed() {
        let matrix = ScenarioMatrix::large_scale();
        for scenario in &matrix.scenarios {
            let a = scenario.snapshot();
            let b = scenario.snapshot();
            assert_eq!(a, b, "{} must be reproducible", scenario.label);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn synthetic_scenarios_inject_failures_and_mixed_stragglers() {
        let scenario = ScenarioMatrix::large_scale()
            .get("256-GPU")
            .cloned()
            .expect("256-GPU scenario");
        let snapshot = scenario.snapshot();
        let failed = snapshot.rates.iter().filter(|r| r.is_infinite()).count();
        assert_eq!(failed, scenario.failed_nodes * 8);
        let finite_stragglers = snapshot
            .rates
            .iter()
            .filter(|r| r.is_finite() && **r > 1.05)
            .count();
        assert_eq!(finite_stragglers, scenario.straggler_count);
        // Mixed severities: at least three distinct straggling rates.
        let mut rates: Vec<u64> = snapshot
            .rates
            .iter()
            .filter(|r| r.is_finite() && **r > 1.05)
            .map(|r| r.to_bits())
            .collect();
        rates.sort_unstable();
        rates.dedup();
        assert!(rates.len() >= 3, "straggler mix too uniform: {rates:?}");
    }
}
