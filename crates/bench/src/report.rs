//! Minimal JSON rendering for the `BENCH_*.json` artifacts.
//!
//! The workspace's offline `serde` shim is a no-op marker (no derive-based
//! serialization exists), so machine-readable experiment output is hand-rolled
//! here: a tiny JSON value tree plus a renderer.  Non-finite numbers render as
//! `null` — JSON has no NaN/∞, and a partially-degenerate experiment must
//! still produce a parseable artifact.

use std::io::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a fraction so counters stay
                    // readable; everything else keeps full precision.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(key.clone()).render_into(out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Write a JSON artifact to `path` (trailing newline included).
pub fn write_json(path: &str, value: &JsonValue) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(value.render().as_bytes())?;
    file.write_all(b"\n")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_arrays_and_objects() {
        let v = JsonValue::obj(vec![
            ("name", JsonValue::str("arena")),
            ("smoke", JsonValue::Bool(true)),
            ("count", JsonValue::Num(3.0)),
            ("ratio", JsonValue::Num(0.5)),
            (
                "items",
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Null]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"arena","smoke":true,"count":3,"ratio":0.5,"items":[1,null]}"#
        );
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::Num(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let v = JsonValue::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }
}
