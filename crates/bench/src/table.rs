//! Minimal aligned text-table rendering for the experiment harnesses.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with empty cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as an aligned string.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}"));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with two decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio as `N.NNx`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1.00"]);
        t.row(["a-much-longer-name", "123.45"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("123.45"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(times(2.5), "2.50x");
        assert_eq!(pct(0.123), "12.3%");
    }
}
