//! `malleus-solver` — small exact optimizers used by the Malleus planner.
//!
//! The Malleus paper (SIGMOD 2025) formulates its parallelization planning as a
//! bi-level optimization problem whose lower level decomposes into integer
//! linear programs (Eq. (2) layer assignment, Eq. (3) data assignment) and whose
//! upper level contains a small mixed-integer non-linear program (Eq. (4),
//! pipeline division).  The original implementation relies on PuLP and Pyomo;
//! this crate provides self-contained exact solvers tailored to those problem
//! shapes so the reproduction has no external solver dependency.
//!
//! The three problem families are:
//!
//! * **Min-max allocation** ([`minmax::solve_minmax_allocation`]): distribute an
//!   integer `total` across weighted slots, minimizing the largest
//!   `weight * amount`, subject to per-slot capacities.  Both the layer ILP and
//!   the data ILP are instances of this problem.
//! * **Pipeline division** ([`division::divide_pipelines`]): split a pool of
//!   "fast" and "slow" tensor-parallel groups across `DP` pipelines together
//!   with the micro-batch counts, minimizing the slowest pipeline.
//! * **Continuous relaxations** ([`relax`]): the harmonic-capacity estimates
//!   used by Theorem 2 to rank grouping results in constant time.
//!
//! The division search is the planner's hot path and is implemented
//! allocation-free over a reusable scratch arena with incremental enumeration,
//! bound pruning, and optional intra-candidate parallelism
//! ([`division::divide_pipelines_parallel`]).  The [`reference`] module keeps
//! the original straightforward implementations frozen as the byte-identity
//! oracle for those optimizations.

pub mod division;
pub mod minmax;
pub mod reference;
pub mod relax;

pub use division::{divide_pipelines, divide_pipelines_parallel, Division, DivisionProblem};
pub use minmax::{
    solve_minmax_allocation, solve_minmax_allocation_into, AllocationError, AllocationResult,
};
pub use relax::{harmonic_capacity, relaxed_minmax_objective, theorem2_ratio};

/// Counting global allocator for the crate's unit tests: verifies that the
/// steady-state division search performs zero per-candidate heap allocations.
/// Only compiled into the test binary.
#[cfg(test)]
pub(crate) mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    pub struct CountingAllocator;

    // The thread-locals are const-initialized so reading them never allocates
    // (a lazily-initialized TLS slot would recurse into the allocator).
    // `try_with` guards against access during thread teardown.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let _ = ENABLED.try_with(|e| {
                if e.get() {
                    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
                }
            });
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let _ = ENABLED.try_with(|e| {
                if e.get() {
                    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
                }
            });
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Run `f` with allocation counting enabled on this thread; returns the
    /// number of heap allocations (including reallocations) it performed.
    pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
        ALLOCS.with(|c| c.set(0));
        ENABLED.with(|e| e.set(true));
        let result = f();
        ENABLED.with(|e| e.set(false));
        let allocs = ALLOCS.with(|c| c.get());
        (allocs, result)
    }
}
