//! `malleus-solver` — small exact optimizers used by the Malleus planner.
//!
//! The Malleus paper (SIGMOD 2025) formulates its parallelization planning as a
//! bi-level optimization problem whose lower level decomposes into integer
//! linear programs (Eq. (2) layer assignment, Eq. (3) data assignment) and whose
//! upper level contains a small mixed-integer non-linear program (Eq. (4),
//! pipeline division).  The original implementation relies on PuLP and Pyomo;
//! this crate provides self-contained exact solvers tailored to those problem
//! shapes so the reproduction has no external solver dependency.
//!
//! The three problem families are:
//!
//! * **Min-max allocation** ([`minmax::solve_minmax_allocation`]): distribute an
//!   integer `total` across weighted slots, minimizing the largest
//!   `weight * amount`, subject to per-slot capacities.  Both the layer ILP and
//!   the data ILP are instances of this problem.
//! * **Pipeline division** ([`division::divide_pipelines`]): split a pool of
//!   "fast" and "slow" tensor-parallel groups across `DP` pipelines together
//!   with the micro-batch counts, minimizing the slowest pipeline.
//! * **Continuous relaxations** ([`relax`]): the harmonic-capacity estimates
//!   used by Theorem 2 to rank grouping results in constant time.

pub mod division;
pub mod minmax;
pub mod relax;

pub use division::{divide_pipelines, Division, DivisionProblem};
pub use minmax::{solve_minmax_allocation, AllocationError, AllocationResult};
pub use relax::{harmonic_capacity, relaxed_minmax_objective, theorem2_ratio};
