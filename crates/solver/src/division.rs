//! Pipeline-division solver (Eq. (4) of the paper).
//!
//! After GPU grouping, the planner must split the tensor-parallel groups across
//! `DP` training pipelines and decide how many micro-batches each pipeline
//! receives.  Most groups share the majority straggling rate `ŷ` ("fast"
//! groups) while a handful of groups are slower ("slow" groups).  The paper
//! formulates the division as a MINLP over
//!
//! * `h_i ∈ ℕ` — number of fast groups in pipeline `i`,
//! * `q_{i,k} ∈ {0,1}` — whether slow group `k` lands in pipeline `i`,
//! * `m_i ∈ ℕ` — micro-batches of pipeline `i`,
//!
//! minimizing `max_i m_i / W_i` where `W_i = h_i / ŷ + Σ_k q_{i,k} / y_k` is the
//! relaxed per-pipeline throughput (harmonic capacity of its groups).
//!
//! The solver enumerates slow-group assignments exactly when the search space
//! is small (the common case: at most a handful of slow groups) and falls back
//! to a deterministic local search otherwise (used by the 1024-GPU scalability
//! experiment of Appendix A.2).  Fast groups are then distributed greedily to
//! balance the capacities, and micro-batches are split with the exact min-max
//! allocator.

use crate::minmax::solve_minmax_allocation;
use crate::relax::harmonic_capacity;
use serde::{Deserialize, Serialize};

/// Input description of a pipeline-division problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivisionProblem {
    /// Number of pipelines (the data-parallel degree).
    pub dp: usize,
    /// Number of "fast" (majority-rate) groups available.
    pub fast_count: usize,
    /// The majority group straggling rate `ŷ`.
    pub fast_rate: f64,
    /// Straggling rates of the slow groups.
    pub slow_rates: Vec<f64>,
    /// Total number of micro-batches to distribute (`B / b`).
    pub num_micro_batches: u64,
    /// Minimum number of groups each pipeline must receive (each pipeline needs
    /// at least one stage; memory considerations can raise this bound).
    pub min_groups_per_pipeline: usize,
    /// Upper bound on enumeration work before switching to local search.
    pub exact_enumeration_limit: u64,
}

impl DivisionProblem {
    /// Convenience constructor with sensible defaults for the enumeration limit
    /// and the one-group-per-pipeline lower bound.
    pub fn new(
        dp: usize,
        fast_count: usize,
        fast_rate: f64,
        slow_rates: Vec<f64>,
        num_micro_batches: u64,
    ) -> Self {
        Self {
            dp,
            fast_count,
            fast_rate,
            slow_rates,
            num_micro_batches,
            min_groups_per_pipeline: 1,
            exact_enumeration_limit: 200_000,
        }
    }

    fn total_groups(&self) -> usize {
        self.fast_count + self.slow_rates.len()
    }
}

/// A solution to the pipeline-division problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Division {
    /// Number of fast groups assigned to each pipeline.
    pub fast_per_pipeline: Vec<usize>,
    /// For each slow group, the index of the pipeline it is assigned to.
    pub slow_assignment: Vec<usize>,
    /// Micro-batches assigned to each pipeline.
    pub micro_batches: Vec<u64>,
    /// Relaxed per-pipeline capacities `W_i` (for diagnostics).
    pub capacities: Vec<f64>,
    /// Objective value `max_i m_i / W_i` (relative units; multiply by
    /// `L * τ(b)` outside to obtain a time).
    pub objective: f64,
}

impl Division {
    /// Groups (fast + slow counts) per pipeline.
    pub fn groups_per_pipeline(&self) -> Vec<usize> {
        let mut counts = self.fast_per_pipeline.clone();
        for &p in &self.slow_assignment {
            counts[p] += 1;
        }
        counts
    }
}

/// Errors from the division solver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivisionError {
    /// `dp` was zero.
    ZeroPipelines,
    /// There are fewer groups than `dp * min_groups_per_pipeline`.
    NotEnoughGroups { groups: usize, required: usize },
}

impl std::fmt::Display for DivisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivisionError::ZeroPipelines => write!(f, "cannot divide groups into zero pipelines"),
            DivisionError::NotEnoughGroups { groups, required } => write!(
                f,
                "only {groups} groups available but {required} are required"
            ),
        }
    }
}

impl std::error::Error for DivisionError {}

/// Distribute the fast groups to balance per-pipeline capacities.
///
/// Given the capacity contributed by the already-assigned slow groups, hand out
/// the `fast_count` identical fast groups one at a time to the pipeline with
/// the smallest current capacity, respecting the minimum-groups constraint
/// first.
fn distribute_fast_groups(
    dp: usize,
    fast_count: usize,
    fast_rate: f64,
    slow_capacity: &[f64],
    slow_counts: &[usize],
    min_groups: usize,
) -> Option<Vec<usize>> {
    let mut fast = vec![0usize; dp];
    let mut remaining = fast_count;
    // First satisfy the minimum group count per pipeline.
    for i in 0..dp {
        let need = min_groups.saturating_sub(slow_counts[i]);
        if need > remaining {
            return None;
        }
        fast[i] = need;
        remaining -= need;
    }
    let unit = if fast_rate > 0.0 && fast_rate.is_finite() {
        1.0 / fast_rate
    } else {
        0.0
    };
    let mut capacity: Vec<f64> = (0..dp)
        .map(|i| slow_capacity[i] + fast[i] as f64 * unit)
        .collect();
    for _ in 0..remaining {
        let (imin, _) = capacity
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        fast[imin] += 1;
        capacity[imin] += unit;
    }
    Some(fast)
}

/// Evaluate a full division: compute capacities, split micro-batches exactly and
/// return the objective.
fn evaluate(
    problem: &DivisionProblem,
    fast_per_pipeline: &[usize],
    slow_assignment: &[usize],
) -> Option<Division> {
    let dp = problem.dp;
    let mut rates_per_pipeline: Vec<Vec<f64>> = vec![Vec::new(); dp];
    for (i, &count) in fast_per_pipeline.iter().enumerate() {
        for _ in 0..count {
            rates_per_pipeline[i].push(problem.fast_rate);
        }
    }
    for (k, &p) in slow_assignment.iter().enumerate() {
        rates_per_pipeline[p].push(problem.slow_rates[k]);
    }
    let capacities: Vec<f64> = rates_per_pipeline
        .iter()
        .map(|r| harmonic_capacity(r))
        .collect();
    // Any pipeline with zero capacity (all groups failed or none assigned)
    // cannot train a replica.
    if capacities.iter().any(|&c| c <= 0.0) {
        return None;
    }
    // Micro-batch weights: time per micro-batch ∝ 1 / W_i.
    let weights: Vec<f64> = capacities.iter().map(|&c| 1.0 / c).collect();
    let alloc = solve_minmax_allocation(&weights, problem.num_micro_batches, &[]).ok()?;
    Some(Division {
        fast_per_pipeline: fast_per_pipeline.to_vec(),
        slow_assignment: slow_assignment.to_vec(),
        micro_batches: alloc.amounts,
        capacities,
        objective: alloc.objective,
    })
}

/// Solve the pipeline-division problem.
pub fn divide_pipelines(problem: &DivisionProblem) -> Result<Division, DivisionError> {
    let dp = problem.dp;
    if dp == 0 {
        return Err(DivisionError::ZeroPipelines);
    }
    let required = dp * problem.min_groups_per_pipeline.max(1);
    if problem.total_groups() < required {
        return Err(DivisionError::NotEnoughGroups {
            groups: problem.total_groups(),
            required,
        });
    }

    let ms = problem.slow_rates.len();
    let search_space = (dp as u64).checked_pow(ms as u32).unwrap_or(u64::MAX);

    let mut best: Option<Division> = None;
    let consider = |assignment: &[usize], best: &mut Option<Division>| {
        let mut slow_counts = vec![0usize; dp];
        let mut slow_capacity = vec![0.0f64; dp];
        for (k, &p) in assignment.iter().enumerate() {
            slow_counts[p] += 1;
            let y = problem.slow_rates[k];
            if y.is_finite() && y > 0.0 {
                slow_capacity[p] += 1.0 / y;
            }
        }
        if let Some(fast) = distribute_fast_groups(
            dp,
            problem.fast_count,
            problem.fast_rate,
            &slow_capacity,
            &slow_counts,
            problem.min_groups_per_pipeline.max(1),
        ) {
            if let Some(candidate) = evaluate(problem, &fast, assignment) {
                if best
                    .as_ref()
                    .map(|b| candidate.objective < b.objective - 1e-12)
                    .unwrap_or(true)
                {
                    *best = Some(candidate);
                }
            }
        }
    };

    if search_space <= problem.exact_enumeration_limit {
        // Exact enumeration of all slow-group assignments.
        let mut assignment = vec![0usize; ms];
        loop {
            consider(&assignment, &mut best);
            // Advance the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == ms {
                    break;
                }
                assignment[pos] += 1;
                if assignment[pos] < dp {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
            if pos == ms {
                break;
            }
            if ms == 0 {
                break;
            }
        }
        if ms == 0 {
            consider(&[], &mut best);
        }
    } else {
        // Deterministic local search: greedy seeding (heaviest slow group to the
        // pipeline with the largest remaining deficit) followed by single-move
        // hill climbing.
        let mut order: Vec<usize> = (0..ms).collect();
        order.sort_by(|&a, &b| problem.slow_rates[b].total_cmp(&problem.slow_rates[a]));
        let mut assignment = vec![0usize; ms];
        let mut counts = vec![0usize; dp];
        for &k in &order {
            // Round-robin over pipelines with the fewest slow groups so slow
            // groups spread out (they then attract fewer fast groups).
            let (p, _) = counts.iter().enumerate().min_by_key(|(_, &c)| c).unwrap();
            assignment[k] = p;
            counts[p] += 1;
        }
        consider(&assignment, &mut best);
        // Hill climbing over single reassignments.
        let mut improved = true;
        let mut rounds = 0usize;
        while improved && rounds < 64 {
            improved = false;
            rounds += 1;
            for k in 0..ms {
                let original = assignment[k];
                for p in 0..dp {
                    if p == original {
                        continue;
                    }
                    assignment[k] = p;
                    let before = best.as_ref().map(|b| b.objective).unwrap_or(f64::INFINITY);
                    consider(&assignment, &mut best);
                    let after = best.as_ref().map(|b| b.objective).unwrap_or(f64::INFINITY);
                    if after < before - 1e-12 {
                        improved = true;
                    } else {
                        assignment[k] = original;
                    }
                }
            }
        }
    }

    best.ok_or(DivisionError::NotEnoughGroups {
        groups: problem.total_groups(),
        required,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_groups_split_evenly() {
        let p = DivisionProblem::new(4, 16, 1.0, vec![], 64);
        let d = divide_pipelines(&p).unwrap();
        assert_eq!(d.fast_per_pipeline, vec![4, 4, 4, 4]);
        assert_eq!(d.micro_batches, vec![16, 16, 16, 16]);
        assert!((d.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn slow_group_attracts_fewer_micro_batches() {
        // 2 pipelines, 7 fast groups + 1 group 4x slower.
        let p = DivisionProblem::new(2, 7, 1.0, vec![4.0], 64);
        let d = divide_pipelines(&p).unwrap();
        let slow_pipeline = d.slow_assignment[0];
        let fast_pipeline = 1 - slow_pipeline;
        assert!(d.micro_batches[slow_pipeline] <= d.micro_batches[fast_pipeline]);
        assert_eq!(d.micro_batches.iter().sum::<u64>(), 64);
    }

    #[test]
    fn capacities_are_balanced_by_fast_groups() {
        // Pipeline receiving the slow group should receive more fast groups so
        // its overall capacity stays close to its peer.
        let p = DivisionProblem::new(2, 6, 1.0, vec![3.0, 3.0], 64);
        let d = divide_pipelines(&p).unwrap();
        let spread = (d.capacities[0] - d.capacities[1]).abs();
        assert!(spread <= 1.0 + 1e-9, "capacities should be nearly balanced");
    }

    #[test]
    fn min_groups_constraint_is_enforced() {
        let mut p = DivisionProblem::new(2, 2, 1.0, vec![2.0, 2.0], 16);
        p.min_groups_per_pipeline = 2;
        let d = divide_pipelines(&p).unwrap();
        for count in d.groups_per_pipeline() {
            assert!(count >= 2);
        }
    }

    #[test]
    fn errors_on_impossible_instances() {
        let p = DivisionProblem::new(0, 4, 1.0, vec![], 16);
        assert!(matches!(
            divide_pipelines(&p),
            Err(DivisionError::ZeroPipelines)
        ));
        let p = DivisionProblem::new(8, 2, 1.0, vec![], 16);
        assert!(matches!(
            divide_pipelines(&p),
            Err(DivisionError::NotEnoughGroups { .. })
        ));
    }

    #[test]
    fn local_search_path_matches_exact_on_small_instance() {
        let mut exact = DivisionProblem::new(3, 6, 1.0, vec![2.0, 3.0, 5.0], 48);
        let mut heuristic = exact.clone();
        exact.exact_enumeration_limit = 1_000_000;
        heuristic.exact_enumeration_limit = 1; // force local search
        let de = divide_pipelines(&exact).unwrap();
        let dh = divide_pipelines(&heuristic).unwrap();
        // Local search must be within a few percent of the exact optimum here.
        assert!(dh.objective <= de.objective * 1.10 + 1e-9);
    }

    #[test]
    fn many_slow_groups_large_instance_completes() {
        // 1024-GPU style instance: 128 fast groups, 16 slow groups, DP 8.
        let slow: Vec<f64> = (0..16).map(|i| 2.0 + (i as f64) * 0.25).collect();
        let p = DivisionProblem::new(8, 120, 1.0, slow, 1024);
        let d = divide_pipelines(&p).unwrap();
        assert_eq!(d.micro_batches.iter().sum::<u64>(), 1024);
        assert_eq!(d.slow_assignment.len(), 16);
    }
}
