//! Pipeline-division solver (Eq. (4) of the paper).
//!
//! After GPU grouping, the planner must split the tensor-parallel groups across
//! `DP` training pipelines and decide how many micro-batches each pipeline
//! receives.  Most groups share the majority straggling rate `ŷ` ("fast"
//! groups) while a handful of groups are slower ("slow" groups).  The paper
//! formulates the division as a MINLP over
//!
//! * `h_i ∈ ℕ` — number of fast groups in pipeline `i`,
//! * `q_{i,k} ∈ {0,1}` — whether slow group `k` lands in pipeline `i`,
//! * `m_i ∈ ℕ` — micro-batches of pipeline `i`,
//!
//! minimizing `max_i m_i / W_i` where `W_i = h_i / ŷ + Σ_k q_{i,k} / y_k` is the
//! relaxed per-pipeline throughput (harmonic capacity of its groups).
//!
//! The solver enumerates slow-group assignments exactly when the search space
//! is small (the common case: at most a handful of slow groups) and falls back
//! to a deterministic local search otherwise (used by the 1024-GPU scalability
//! experiment of Appendix A.2).  Fast groups are then distributed greedily to
//! balance the capacities, and micro-batches are split with the exact min-max
//! allocator.
//!
//! # Hot-path structure
//!
//! This is where the planner spends essentially all of its time (the smoke
//! profile attributes >99% of planning to this search), so the inner loop is
//! engineered around three ideas, each proven byte-identical to the frozen
//! seed implementation in [`crate::reference`]:
//!
//! * **Scratch arena** ([`DivisionScratch`]): every buffer the per-candidate
//!   scoring needs (counts, capacities, weights, micro-batch amounts) lives in
//!   flat reusable vectors sized by `dp`/`ms`, so the steady-state loop
//!   performs zero heap allocations.
//! * **Incremental enumeration**: advancing the mixed-radix assignment counter
//!   updates `slow_counts` exactly (±1) and recomputes the slow capacity of
//!   only the touched pipelines — by re-folding their `1/y_k` contributions in
//!   ascending-`k` order, which reproduces the seed's per-slot summation order
//!   bit for bit.
//! * **Bound pruning and intra-candidate parallelism**: the relaxed optimum
//!   `M / Σ_i W_i` is an assignment-invariant lower bound; once the incumbent
//!   objective reaches it (modulo a margin strictly larger than the float
//!   noise), no remaining candidate can pass the strict-improvement test, so
//!   enumeration stops early.  Large searches are split across scoped worker
//!   threads which record each candidate's objective bits into an index-ordered
//!   array; a serial index-order fold then reproduces the exact tie-breaking of
//!   the sequential loop at any worker count (the PR 2 reduction discipline).
//!   Workers prune only on their *own* fold — sharing an incumbent across
//!   ranges could skip a candidate that the serial fold would have accepted.

use crate::minmax::solve_minmax_allocation_into;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Input description of a pipeline-division problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivisionProblem {
    /// Number of pipelines (the data-parallel degree).
    pub dp: usize,
    /// Number of "fast" (majority-rate) groups available.
    pub fast_count: usize,
    /// The majority group straggling rate `ŷ`.
    pub fast_rate: f64,
    /// Straggling rates of the slow groups.
    pub slow_rates: Vec<f64>,
    /// Total number of micro-batches to distribute (`B / b`).
    pub num_micro_batches: u64,
    /// Minimum number of groups each pipeline must receive (each pipeline needs
    /// at least one stage; memory considerations can raise this bound).
    pub min_groups_per_pipeline: usize,
    /// Upper bound on enumeration work before switching to local search.
    pub exact_enumeration_limit: u64,
}

impl DivisionProblem {
    /// Convenience constructor with sensible defaults for the enumeration limit
    /// and the one-group-per-pipeline lower bound.
    pub fn new(
        dp: usize,
        fast_count: usize,
        fast_rate: f64,
        slow_rates: Vec<f64>,
        num_micro_batches: u64,
    ) -> Self {
        Self {
            dp,
            fast_count,
            fast_rate,
            slow_rates,
            num_micro_batches,
            min_groups_per_pipeline: 1,
            exact_enumeration_limit: 200_000,
        }
    }

    fn total_groups(&self) -> usize {
        self.fast_count + self.slow_rates.len()
    }
}

/// A solution to the pipeline-division problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Division {
    /// Number of fast groups assigned to each pipeline.
    pub fast_per_pipeline: Vec<usize>,
    /// For each slow group, the index of the pipeline it is assigned to.
    pub slow_assignment: Vec<usize>,
    /// Micro-batches assigned to each pipeline.
    pub micro_batches: Vec<u64>,
    /// Relaxed per-pipeline capacities `W_i` (for diagnostics).
    pub capacities: Vec<f64>,
    /// Objective value `max_i m_i / W_i` (relative units; multiply by
    /// `L * τ(b)` outside to obtain a time).
    pub objective: f64,
}

impl Division {
    /// Groups (fast + slow counts) per pipeline.
    pub fn groups_per_pipeline(&self) -> Vec<usize> {
        let mut counts = self.fast_per_pipeline.clone();
        for &p in &self.slow_assignment {
            counts[p] += 1;
        }
        counts
    }
}

/// Errors from the division solver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivisionError {
    /// `dp` was zero.
    ZeroPipelines,
    /// There are fewer groups than `dp * min_groups_per_pipeline`.
    NotEnoughGroups { groups: usize, required: usize },
}

impl std::fmt::Display for DivisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivisionError::ZeroPipelines => write!(f, "cannot divide groups into zero pipelines"),
            DivisionError::NotEnoughGroups { groups, required } => write!(
                f,
                "only {groups} groups available but {required} are required"
            ),
        }
    }
}

impl std::error::Error for DivisionError {}

/// Parallel enumeration only pays off when there is enough work per thread.
const PARALLEL_MIN_SEARCH: u64 = 4096;
/// Cap on the index-ordered objective array the parallel reduction fills
/// (8 bytes per candidate; the exact-enumeration limit keeps us under this
/// in practice, the constant is a second belt).
const PARALLEL_MAX_SEARCH: u64 = 1 << 20;

/// Reusable flat buffers for the division search.
///
/// All vectors are sized by `dp`, `ms` (= number of slow groups) or
/// `fast_count` in [`DivisionScratch::prepare`]; after a warm-up call on a
/// thread, scoring a candidate touches no heap at all.
#[derive(Debug, Default)]
struct DivisionScratch {
    /// Current slow-group assignment (the mixed-radix counter), length `ms`.
    assignment: Vec<usize>,
    /// Best assignment found so far, length `ms`.
    best_assignment: Vec<usize>,
    /// Slow groups per pipeline for `assignment`, length `dp`.
    slow_counts: Vec<usize>,
    /// Σ 1/y_k of the slow groups in each pipeline (seed summation order),
    /// length `dp`.
    slow_capacity: Vec<f64>,
    /// Fast groups per pipeline for the current candidate, length `dp`.
    fast: Vec<usize>,
    /// Working capacities for the greedy fast-group distribution, length `dp`.
    greedy_capacity: Vec<f64>,
    /// Final harmonic capacities `W_i` of the current candidate, length `dp`.
    capacities: Vec<f64>,
    /// Micro-batch weights `1/W_i`, length `dp`.
    weights: Vec<f64>,
    /// Micro-batch amounts from the min-max allocator, length `dp`.
    amounts: Vec<u64>,
    /// `fast_prefix[h]` = harmonic capacity of `h` fast groups, computed by the
    /// same repeated addition as `harmonic_capacity`, length `fast_count + 1`.
    fast_prefix: Vec<f64>,
    /// `slow_units[k]` = `1/y_k` when `y_k` is finite and positive, else `0.0`
    /// (adding `+0.0` is bit-identical to the seed's skip), length `ms`.
    slow_units: Vec<f64>,
    /// `1/ŷ` under the greedy distribution's validity test, else `0.0`.
    fast_unit: f64,
    /// Pipelines whose slow capacity must be re-folded after a counter step.
    touched: Vec<usize>,
    /// Dense membership mask for `touched`, length `dp`.
    touched_mask: Vec<bool>,
    /// Slow-group visit order for the local-search seeding, length `ms`.
    order: Vec<usize>,
}

thread_local! {
    static SCRATCH: RefCell<DivisionScratch> = RefCell::new(DivisionScratch::default());
}

impl DivisionScratch {
    /// Size every buffer for `problem` and precompute the per-group capacity
    /// contributions.  Existing heap capacity is reused.
    fn prepare(&mut self, problem: &DivisionProblem) {
        let dp = problem.dp;
        let ms = problem.slow_rates.len();
        self.assignment.clear();
        self.assignment.resize(ms, 0);
        self.best_assignment.clear();
        self.best_assignment.resize(ms, 0);
        self.slow_counts.clear();
        self.slow_counts.resize(dp, 0);
        self.slow_capacity.clear();
        self.slow_capacity.resize(dp, 0.0);
        self.fast.clear();
        self.fast.resize(dp, 0);
        self.greedy_capacity.clear();
        self.greedy_capacity.resize(dp, 0.0);
        self.capacities.clear();
        self.capacities.resize(dp, 0.0);
        self.weights.clear();
        self.weights.resize(dp, 0.0);
        self.touched.clear();
        self.touched.reserve(dp);
        self.touched_mask.clear();
        self.touched_mask.resize(dp, false);
        self.order.clear();

        self.fast_unit = if problem.fast_rate > 0.0 && problem.fast_rate.is_finite() {
            1.0 / problem.fast_rate
        } else {
            0.0
        };
        // `harmonic_capacity` filters on `is_finite && > 0` and left-folds the
        // reciprocals; `fast_prefix[h]` reproduces that fold for `h` copies of
        // the fast rate by the same repeated addition.
        let fast_contrib = if problem.fast_rate.is_finite() && problem.fast_rate > 0.0 {
            1.0 / problem.fast_rate
        } else {
            0.0
        };
        self.fast_prefix.clear();
        self.fast_prefix.reserve(problem.fast_count + 1);
        let mut acc = 0.0_f64;
        self.fast_prefix.push(acc);
        for _ in 0..problem.fast_count {
            acc += fast_contrib;
            self.fast_prefix.push(acc);
        }
        self.slow_units.clear();
        self.slow_units.extend(problem.slow_rates.iter().map(|&y| {
            if y.is_finite() && y > 0.0 {
                1.0 / y
            } else {
                0.0
            }
        }));
    }

    /// Assignment-invariant lower bound on the objective: the total capacity
    /// `Σ_i W_i` does not depend on where the groups land, so no candidate can
    /// beat `M / Σ_i W_i` (the relaxed optimum).  Shrunk by a relative margin
    /// far above the float noise of any per-candidate fold so pruning on it can
    /// never reject a candidate the exact fold would have accepted.
    fn lower_bound(&self, problem: &DivisionProblem) -> f64 {
        let total_capacity =
            self.fast_prefix[problem.fast_count] + self.slow_units.iter().sum::<f64>();
        if !(total_capacity.is_finite() && total_capacity > 0.0) {
            return f64::NEG_INFINITY;
        }
        let lb = problem.num_micro_batches as f64 / total_capacity;
        if !lb.is_finite() {
            return f64::NEG_INFINITY;
        }
        lb * (1.0 - 1e-9)
    }

    /// Derive `slow_counts`/`slow_capacity` from `assignment` from scratch
    /// (ascending-`k` fold, the seed's summation order).
    fn init_slots(&mut self) {
        self.slow_counts.fill(0);
        self.slow_capacity.fill(0.0);
        for (&p, &u) in self.assignment.iter().zip(self.slow_units.iter()) {
            self.slow_counts[p] += 1;
            self.slow_capacity[p] += u;
        }
    }

    /// Overwrite `assignment` with the mixed-radix decoding of `idx`
    /// (digit `k` is the least significant after `k` divisions, matching the
    /// enumeration counter which increments position 0 first).
    fn set_counter(&mut self, mut idx: u64, dp: usize) {
        let radix = dp as u64;
        for slot in self.assignment.iter_mut() {
            *slot = (idx % radix) as usize;
            idx /= radix;
        }
    }

    /// Decode `idx` straight into `best_assignment` (used by the parallel
    /// reduction, whose winner is identified by candidate index).
    fn decode_best(&mut self, mut idx: u64, dp: usize) {
        let radix = dp as u64;
        for slot in self.best_assignment.iter_mut() {
            *slot = (idx % radix) as usize;
            idx /= radix;
        }
    }

    fn mark_touched(&mut self, p: usize) {
        if !self.touched_mask[p] {
            self.touched_mask[p] = true;
            self.touched.push(p);
        }
    }

    /// Re-fold the slow capacities of the touched pipelines in ascending-`k`
    /// order — bit-identical to rebuilding them from scratch — then clear the
    /// touched set.
    fn recompute_touched_capacities(&mut self) {
        for &t in &self.touched {
            self.slow_capacity[t] = 0.0;
        }
        for (&p, &u) in self.assignment.iter().zip(self.slow_units.iter()) {
            if self.touched_mask[p] {
                self.slow_capacity[p] += u;
            }
        }
        for &t in &self.touched {
            self.touched_mask[t] = false;
        }
        self.touched.clear();
    }

    /// Advance the mixed-radix counter by one, incrementally maintaining
    /// `slow_counts` and `slow_capacity`.  Returns `false` when the counter
    /// wraps (enumeration exhausted).
    fn advance(&mut self, dp: usize) -> bool {
        let ms = self.assignment.len();
        let mut pos = 0;
        loop {
            if pos == ms {
                break;
            }
            let old = self.assignment[pos];
            self.mark_touched(old);
            let next = old + 1;
            if next < dp {
                self.assignment[pos] = next;
                self.mark_touched(next);
                self.slow_counts[old] -= 1;
                self.slow_counts[next] += 1;
                break;
            }
            self.assignment[pos] = 0;
            self.mark_touched(0);
            self.slow_counts[old] -= 1;
            self.slow_counts[0] += 1;
            pos += 1;
        }
        if pos == ms {
            for &t in &self.touched {
                self.touched_mask[t] = false;
            }
            self.touched.clear();
            return false;
        }
        self.recompute_touched_capacities();
        true
    }

    /// Reassign slow group `k` to pipeline `p` (local-search move),
    /// incrementally maintaining the slot state.
    fn move_digit(&mut self, k: usize, p: usize) {
        let old = self.assignment[k];
        if old == p {
            return;
        }
        self.assignment[k] = p;
        self.slow_counts[old] -= 1;
        self.slow_counts[p] += 1;
        self.mark_touched(old);
        self.mark_touched(p);
        self.recompute_touched_capacities();
    }

    /// Score the current assignment: distribute the fast groups greedily,
    /// derive the harmonic capacities, and split the micro-batches exactly.
    ///
    /// Returns the objective, or NaN when the candidate is infeasible (cannot
    /// satisfy the minimum-groups bound, has a zero-capacity pipeline, or the
    /// allocator rejects it).  Every arithmetic step replicates the seed's
    /// expressions so the returned bits are identical.
    fn score_current(&mut self, problem: &DivisionProblem, min_groups: usize) -> f64 {
        let dp = problem.dp;
        // Minimum-groups fill (seed: `distribute_fast_groups` preamble).
        let mut remaining = problem.fast_count;
        for (f, &have_slow) in self.fast.iter_mut().zip(self.slow_counts.iter()) {
            let need = min_groups.saturating_sub(have_slow);
            if need > remaining {
                return f64::NAN;
            }
            *f = need;
            remaining -= need;
        }
        // Greedy balancing on the seed's working capacity expression.
        let unit = self.fast_unit;
        for ((g, &s), &f) in self
            .greedy_capacity
            .iter_mut()
            .zip(self.slow_capacity.iter())
            .zip(self.fast.iter())
        {
            *g = s + f as f64 * unit;
        }
        // The seed re-scanned all `dp` slots for every fast group.  The argmin
        // (`min_by(total_cmp)`, first among ties) is the lexicographic minimum
        // of `(level, slot)`; assigning a unit only changes the winner's level,
        // so the winner keeps winning — no rescan — until its updated `(level,
        // slot)` pair stops comparing below the runner-up from the last scan.
        while remaining > 0 {
            let mut imin = 0usize;
            let mut min_lvl = self.greedy_capacity[0];
            let mut isec = usize::MAX;
            let mut sec_lvl = f64::INFINITY;
            for (i, &l) in self.greedy_capacity.iter().enumerate().skip(1) {
                if l.total_cmp(&min_lvl) == std::cmp::Ordering::Less {
                    isec = imin;
                    sec_lvl = min_lvl;
                    imin = i;
                    min_lvl = l;
                } else if l.total_cmp(&sec_lvl) == std::cmp::Ordering::Less {
                    isec = i;
                    sec_lvl = l;
                }
            }
            loop {
                self.fast[imin] += 1;
                self.greedy_capacity[imin] += unit;
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
                let l = self.greedy_capacity[imin];
                let still_winner = match l.total_cmp(&sec_lvl) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => imin < isec,
                    std::cmp::Ordering::Greater => false,
                };
                if !still_winner {
                    break;
                }
            }
        }
        // Canonical capacities in the seed's `evaluate` fold order: all fast
        // contributions first (prefix table), then slow groups ascending in k.
        for (c, &f) in self.capacities.iter_mut().zip(self.fast.iter()) {
            *c = self.fast_prefix[f];
        }
        for (&p, &u) in self.assignment.iter().zip(self.slow_units.iter()) {
            self.capacities[p] += u;
        }
        for (w, &c) in self.weights.iter_mut().zip(self.capacities.iter()) {
            if c <= 0.0 {
                return f64::NAN;
            }
            *w = 1.0 / c;
        }
        debug_assert_eq!(self.weights.len(), dp);
        solve_minmax_allocation_into(
            &self.weights,
            problem.num_micro_batches,
            &[],
            &mut self.amounts,
        )
        .unwrap_or(f64::NAN)
    }

    /// Materialize the winning candidate: restore `best_assignment`, rescore it
    /// (deterministic, so the bits match the accepted evaluation) and clone the
    /// arena buffers into an owned [`Division`].
    fn rebuild(&mut self, problem: &DivisionProblem, min_groups: usize) -> Division {
        self.assignment.copy_from_slice(&self.best_assignment);
        self.init_slots();
        let objective = self.score_current(problem, min_groups);
        debug_assert!(
            !objective.is_nan(),
            "the accepted best assignment must rescore as feasible"
        );
        Division {
            fast_per_pipeline: self.fast.clone(),
            slow_assignment: self.best_assignment.clone(),
            micro_batches: self.amounts.clone(),
            capacities: self.capacities.clone(),
            objective,
        }
    }
}

/// Sequential exact enumeration with incremental counter maintenance and
/// lower-bound early exit.  Expects `prepare` + `init_slots` to have run.
/// Returns whether any feasible candidate was found; the winner is left in
/// `scratch.best_assignment`.
fn enumerate_serial(
    scratch: &mut DivisionScratch,
    problem: &DivisionProblem,
    min_groups: usize,
    lb: f64,
) -> bool {
    let mut have = false;
    let mut best = 0.0_f64;
    loop {
        // Once the incumbent touches the relaxed optimum no candidate can pass
        // `obj < best - 1e-12` (every objective is >= the margined bound), so
        // the holes this break leaves behind cannot change the fold result.
        if have && best <= lb {
            break;
        }
        let obj = scratch.score_current(problem, min_groups);
        if !obj.is_nan() && (!have || obj < best - 1e-12) {
            have = true;
            best = obj;
            scratch.best_assignment.copy_from_slice(&scratch.assignment);
        }
        if !scratch.advance(problem.dp) {
            break;
        }
    }
    have
}

/// Parallel exact enumeration: the counter range is split into contiguous
/// chunks, each worker records its candidates' objective bits into an
/// index-ordered array (NaN = infeasible or locally pruned), and a serial
/// index-order fold picks the winner with the exact tie-breaking of the
/// sequential loop.  Workers prune only on their own local incumbent, which is
/// safe for the same reason the serial early-exit is.
fn enumerate_parallel(
    problem: &DivisionProblem,
    min_groups: usize,
    lb: f64,
    search_space: u64,
    workers: usize,
) -> Option<u64> {
    let n = search_space as usize;
    let mut bits = vec![f64::NAN.to_bits(); n];
    let workers_eff = workers.min(n).max(1);
    let base = n / workers_eff;
    let rem = n % workers_eff;
    std::thread::scope(|s| {
        let mut rest: &mut [u64] = &mut bits;
        let mut start = 0_usize;
        for w in 0..workers_eff {
            let len = base + usize::from(w < rem);
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let chunk_start = start;
            start += len;
            s.spawn(move || {
                let mut scratch = DivisionScratch::default();
                scratch.prepare(problem);
                scratch.set_counter(chunk_start as u64, problem.dp);
                scratch.init_slots();
                let mut have = false;
                let mut local_best = 0.0_f64;
                for out in chunk.iter_mut() {
                    if have && local_best <= lb {
                        break;
                    }
                    let obj = scratch.score_current(problem, min_groups);
                    if !obj.is_nan() {
                        *out = obj.to_bits();
                        if !have || obj < local_best - 1e-12 {
                            have = true;
                            local_best = obj;
                        }
                    }
                    if !scratch.advance(problem.dp) {
                        break;
                    }
                }
            });
        }
    });
    let mut best: Option<(u64, f64)> = None;
    for (idx, &b) in bits.iter().enumerate() {
        let obj = f64::from_bits(b);
        if obj.is_nan() {
            continue;
        }
        let accept = match best {
            Some((_, incumbent)) => obj < incumbent - 1e-12,
            None => true,
        };
        if accept {
            best = Some((idx as u64, obj));
        }
    }
    best.map(|(idx, _)| idx)
}

/// Deterministic local search for oversized search spaces: greedy seeding
/// (heaviest slow group to the emptiest pipeline) followed by single-move hill
/// climbing, replicating the seed's move acceptance (including its
/// revert-to-round-start-value behavior) exactly.
fn local_search(
    scratch: &mut DivisionScratch,
    problem: &DivisionProblem,
    min_groups: usize,
    lb: f64,
) -> bool {
    let dp = problem.dp;
    let ms = problem.slow_rates.len();
    // Greedy seeding: visit slow groups from slowest to fastest (stable order
    // on ties), round-robin over the pipelines with the fewest slow groups.
    scratch.order.clear();
    scratch.order.extend(0..ms);
    let rates = &problem.slow_rates;
    scratch
        .order
        .sort_by(|&a, &b| rates[b].total_cmp(&rates[a]));
    scratch.slow_counts.fill(0);
    for &k in scratch.order.iter() {
        let (p, _) = scratch
            .slow_counts
            .iter()
            .enumerate()
            .min_by_key(|&(_, &c)| c)
            .expect("dp >= 1 is validated at entry");
        scratch.assignment[k] = p;
        scratch.slow_counts[p] += 1;
    }
    scratch.init_slots();
    let mut have = false;
    let mut best = 0.0_f64;
    let obj = scratch.score_current(problem, min_groups);
    if !obj.is_nan() {
        have = true;
        best = obj;
        scratch.best_assignment.copy_from_slice(&scratch.assignment);
    }
    // Hill climbing over single reassignments.
    let mut improved = true;
    let mut rounds = 0_usize;
    'outer: while improved && rounds < 64 {
        improved = false;
        rounds += 1;
        for k in 0..ms {
            let original = scratch.assignment[k];
            for p in 0..dp {
                if p == original {
                    continue;
                }
                // At the bound no further move can be accepted, so skipping
                // them leaves `best_assignment` (the result) unchanged.
                if have && best <= lb {
                    break 'outer;
                }
                scratch.move_digit(k, p);
                let before = if have { best } else { f64::INFINITY };
                let obj = scratch.score_current(problem, min_groups);
                if !obj.is_nan() && (!have || obj < best - 1e-12) {
                    have = true;
                    best = obj;
                    scratch.best_assignment.copy_from_slice(&scratch.assignment);
                }
                let after = if have { best } else { f64::INFINITY };
                if after < before - 1e-12 {
                    improved = true;
                } else {
                    // The seed reverts to the value `assignment[k]` held at the
                    // start of the k-loop, even if an earlier p was accepted.
                    scratch.move_digit(k, original);
                }
            }
        }
    }
    have
}

/// Solve the pipeline-division problem (sequential search).
pub fn divide_pipelines(problem: &DivisionProblem) -> Result<Division, DivisionError> {
    divide_pipelines_parallel(problem, 1)
}

/// Solve the pipeline-division problem, splitting large exact enumerations
/// across up to `workers` threads.  The result is byte-identical to
/// [`divide_pipelines`] at any worker count.
pub fn divide_pipelines_parallel(
    problem: &DivisionProblem,
    workers: usize,
) -> Result<Division, DivisionError> {
    let dp = problem.dp;
    if dp == 0 {
        return Err(DivisionError::ZeroPipelines);
    }
    let min_groups = problem.min_groups_per_pipeline.max(1);
    let required = dp * min_groups;
    if problem.total_groups() < required {
        return Err(DivisionError::NotEnoughGroups {
            groups: problem.total_groups(),
            required,
        });
    }

    let ms = problem.slow_rates.len();
    let search_space = (dp as u64).checked_pow(ms as u32).unwrap_or(u64::MAX);

    SCRATCH.with(|cell| {
        let mut borrow = cell.borrow_mut();
        let scratch = &mut *borrow;
        scratch.prepare(problem);
        let lb = scratch.lower_bound(problem);
        let found = if search_space <= problem.exact_enumeration_limit {
            if workers > 1 && (PARALLEL_MIN_SEARCH..=PARALLEL_MAX_SEARCH).contains(&search_space) {
                match enumerate_parallel(problem, min_groups, lb, search_space, workers) {
                    Some(best_idx) => {
                        scratch.decode_best(best_idx, dp);
                        true
                    }
                    None => false,
                }
            } else {
                scratch.init_slots();
                enumerate_serial(scratch, problem, min_groups, lb)
            }
        } else {
            local_search(scratch, problem, min_groups, lb)
        };
        if !found {
            return Err(DivisionError::NotEnoughGroups {
                groups: problem.total_groups(),
                required,
            });
        }
        Ok(scratch.rebuild(problem, min_groups))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::divide_pipelines_reference;
    use proptest::prelude::*;

    #[test]
    fn homogeneous_groups_split_evenly() {
        let p = DivisionProblem::new(4, 16, 1.0, vec![], 64);
        let d = divide_pipelines(&p).unwrap();
        assert_eq!(d.fast_per_pipeline, vec![4, 4, 4, 4]);
        assert_eq!(d.micro_batches, vec![16, 16, 16, 16]);
        assert!((d.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn slow_group_attracts_fewer_micro_batches() {
        // 2 pipelines, 7 fast groups + 1 group 4x slower.
        let p = DivisionProblem::new(2, 7, 1.0, vec![4.0], 64);
        let d = divide_pipelines(&p).unwrap();
        let slow_pipeline = d.slow_assignment[0];
        let fast_pipeline = 1 - slow_pipeline;
        assert!(d.micro_batches[slow_pipeline] <= d.micro_batches[fast_pipeline]);
        assert_eq!(d.micro_batches.iter().sum::<u64>(), 64);
    }

    #[test]
    fn capacities_are_balanced_by_fast_groups() {
        // Pipeline receiving the slow group should receive more fast groups so
        // its overall capacity stays close to its peer.
        let p = DivisionProblem::new(2, 6, 1.0, vec![3.0, 3.0], 64);
        let d = divide_pipelines(&p).unwrap();
        let spread = (d.capacities[0] - d.capacities[1]).abs();
        assert!(spread <= 1.0 + 1e-9, "capacities should be nearly balanced");
    }

    #[test]
    fn min_groups_constraint_is_enforced() {
        let mut p = DivisionProblem::new(2, 2, 1.0, vec![2.0, 2.0], 16);
        p.min_groups_per_pipeline = 2;
        let d = divide_pipelines(&p).unwrap();
        for count in d.groups_per_pipeline() {
            assert!(count >= 2);
        }
    }

    #[test]
    fn errors_on_impossible_instances() {
        let p = DivisionProblem::new(0, 4, 1.0, vec![], 16);
        assert!(matches!(
            divide_pipelines(&p),
            Err(DivisionError::ZeroPipelines)
        ));
        let p = DivisionProblem::new(8, 2, 1.0, vec![], 16);
        assert!(matches!(
            divide_pipelines(&p),
            Err(DivisionError::NotEnoughGroups { .. })
        ));
    }

    #[test]
    fn local_search_path_matches_exact_on_small_instance() {
        let mut exact = DivisionProblem::new(3, 6, 1.0, vec![2.0, 3.0, 5.0], 48);
        let mut heuristic = exact.clone();
        exact.exact_enumeration_limit = 1_000_000;
        heuristic.exact_enumeration_limit = 1; // force local search
        let de = divide_pipelines(&exact).unwrap();
        let dh = divide_pipelines(&heuristic).unwrap();
        // Local search must be within a few percent of the exact optimum here.
        assert!(dh.objective <= de.objective * 1.10 + 1e-9);
    }

    #[test]
    fn many_slow_groups_large_instance_completes() {
        // 1024-GPU style instance: 128 fast groups, 16 slow groups, DP 8.
        let slow: Vec<f64> = (0..16).map(|i| 2.0 + (i as f64) * 0.25).collect();
        let p = DivisionProblem::new(8, 120, 1.0, slow, 1024);
        let d = divide_pipelines(&p).unwrap();
        assert_eq!(d.micro_batches.iter().sum::<u64>(), 1024);
        assert_eq!(d.slow_assignment.len(), 16);
    }

    fn assert_bitwise_equal(a: &Division, b: &Division, ctx: &str) {
        assert_eq!(a.fast_per_pipeline, b.fast_per_pipeline, "{ctx}");
        assert_eq!(a.slow_assignment, b.slow_assignment, "{ctx}");
        assert_eq!(a.micro_batches, b.micro_batches, "{ctx}");
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "{ctx}: objective {} vs {}",
            a.objective,
            b.objective
        );
        let ca: Vec<u64> = a.capacities.iter().map(|c| c.to_bits()).collect();
        let cb: Vec<u64> = b.capacities.iter().map(|c| c.to_bits()).collect();
        assert_eq!(ca, cb, "{ctx}");
    }

    #[test]
    fn parallel_division_is_bitwise_identical_to_serial_at_any_worker_count() {
        let instances = vec![
            // 8^4 = 4096 and 4^6 = 4096: right at the parallel threshold.
            DivisionProblem::new(8, 24, 1.0, vec![2.0, 3.0, 2.5, 4.0], 256),
            DivisionProblem::new(4, 10, 1.25, vec![2.0, 2.0, 3.5, 5.0, 2.25, 4.0], 192),
            // 8^5 = 32768 with ties in the rates.
            DivisionProblem::new(8, 40, 0.5, vec![1.5, 1.5, 2.5, 3.0, 3.5], 512),
        ];
        for p in instances {
            let serial = divide_pipelines(&p).unwrap();
            for workers in [1usize, 2, 3, 4, 8] {
                let par = divide_pipelines_parallel(&p, workers).unwrap();
                assert_bitwise_equal(&par, &serial, &format!("workers={workers} problem={p:?}"));
            }
        }
    }

    fn assert_matches_reference(p: &DivisionProblem, workers: usize) {
        let new = divide_pipelines_parallel(p, workers);
        let old = divide_pipelines_reference(p);
        match (new, old) {
            (Ok(a), Ok(b)) => assert_bitwise_equal(&a, &b, &format!("workers={workers} {p:?}")),
            (Err(a), Err(b)) => assert_eq!(a, b, "{p:?}"),
            (a, b) => panic!("divergent outcomes for {p:?}: new={a:?} reference={b:?}"),
        }
    }

    #[test]
    fn optimized_division_is_bitwise_equal_to_seed_reference_on_fixed_cases() {
        let mut cases: Vec<DivisionProblem> = vec![
            DivisionProblem::new(4, 16, 1.0, vec![], 64),
            DivisionProblem::new(2, 7, 1.0, vec![4.0], 64),
            DivisionProblem::new(3, 6, 1.0, vec![2.0, 3.0, 5.0], 48),
            DivisionProblem::new(1, 3, 2.0, vec![1.0, 9.0], 17),
            DivisionProblem::new(5, 0, 1.0, vec![1.0, 2.0, 3.0, 4.0, 5.0], 100),
            // Degenerate rates: infinite fast rate (fast groups contribute no
            // capacity) and an infinite slow rate (skipped by the harmonic sum).
            DivisionProblem::new(2, 2, f64::INFINITY, vec![2.0, 2.0], 16),
            DivisionProblem::new(3, 4, 1.0, vec![f64::INFINITY, 2.0], 32),
            // Zero micro-batches: the bound prune fires immediately (lb = 0).
            DivisionProblem::new(4, 4, 1.0, vec![2.0], 0),
            // Equal rates everywhere: maximal 1e-12 tie pressure on the fold.
            DivisionProblem::new(4, 8, 1.0, vec![1.0, 1.0, 1.0], 96),
        ];
        let mut min2 = DivisionProblem::new(2, 2, 1.0, vec![2.0, 2.0], 16);
        min2.min_groups_per_pipeline = 2;
        cases.push(min2);
        let mut ls = DivisionProblem::new(3, 6, 1.0, vec![2.0, 3.0, 5.0, 1.5], 48);
        ls.exact_enumeration_limit = 4; // force the local-search path
        cases.push(ls);
        for p in &cases {
            assert_matches_reference(p, 1);
            assert_matches_reference(p, 4);
        }
    }

    #[test]
    fn optimized_division_matches_reference_on_pseudorandom_sweep() {
        // Deterministic xorshift sweep for breadth beyond the fixed cases.
        let mut state = 0x243f_6a88_85a3_08d3_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..80 {
            let dp = 1 + (next() % 4) as usize;
            let fast_count = (next() % 12) as usize;
            let ms = (next() % 5) as usize;
            let fast_rate = ((next() % 380) + 20) as f64 / 100.0;
            let slow: Vec<f64> = (0..ms)
                .map(|_| ((next() % 900) + 100) as f64 / 100.0)
                .collect();
            let total = next() % 256;
            let mut p = DivisionProblem::new(dp, fast_count, fast_rate, slow, total);
            if next() % 4 == 0 {
                p.min_groups_per_pipeline = 1 + (next() % 2) as usize;
            }
            if next() % 5 == 0 {
                p.exact_enumeration_limit = 2; // exercise local search
            }
            assert_matches_reference(&p, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The bound-pruned, incrementally-enumerated search returns a
        /// `Division` bitwise-equal to an unpruned seed-reference run.
        #[test]
        fn pruned_search_is_bitwise_equal_to_unpruned_reference(
            dp in 1usize..5,
            fast_count in 0usize..12,
            fast_rate in 0.2f64..4.0,
            slow in prop::collection::vec(0.5f64..10.0, 0..5),
            total in 1u64..512,
        ) {
            let p = DivisionProblem::new(dp, fast_count, fast_rate, slow, total);
            let new = divide_pipelines(&p);
            let old = divide_pipelines_reference(&p);
            match (new, old) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.fast_per_pipeline, &b.fast_per_pipeline);
                    prop_assert_eq!(&a.slow_assignment, &b.slow_assignment);
                    prop_assert_eq!(&a.micro_batches, &b.micro_batches);
                    prop_assert_eq!(a.objective.to_bits(), b.objective.to_bits());
                    let ca: Vec<u64> = a.capacities.iter().map(|c| c.to_bits()).collect();
                    let cb: Vec<u64> = b.capacities.iter().map(|c| c.to_bits()).collect();
                    prop_assert_eq!(ca, cb);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => panic!("divergent outcomes: new={a:?} reference={b:?}"),
            }
        }
    }

    #[test]
    fn steady_state_enumeration_is_allocation_free() {
        // 8^4 = 4096 enumerated candidates.  After a warm call on this thread,
        // a full search may only allocate O(1) times (the returned Division's
        // four owned vectors and small bookkeeping) — nothing per candidate.
        let p = DivisionProblem::new(8, 24, 1.0, vec![2.0, 2.5, 3.0, 3.5], 256);
        let warm = divide_pipelines(&p).unwrap();
        let (allocs, d) = crate::alloc_counter::count_allocations(|| divide_pipelines(&p));
        let d = d.unwrap();
        assert_eq!(d, warm);
        assert!(
            allocs <= 32,
            "steady-state solve allocated {allocs} times across 4096 candidates"
        );
    }
}
