//! Exact solver for integer min-max allocation problems.
//!
//! Problem: given `n` slots with positive weights `w_j` and optional integer
//! capacities `cap_j`, find non-negative integers `a_j` with `Σ a_j = total`
//! minimizing `max_j (w_j * a_j)`.
//!
//! Both the layer-assignment ILP (Eq. (2) in the paper, weights are group
//! straggling rates, capacities come from the memory model) and the
//! data-assignment ILP (Eq. (3), weights are per-pipeline per-micro-batch
//! costs, no capacity) are instances of this problem.
//!
//! The solver exploits the classic threshold structure: for a target objective
//! `T`, slot `j` can absorb at most `min(cap_j, floor(T / w_j))` units, so
//! feasibility of `T` is monotone.  The optimal objective is therefore the
//! smallest feasible value among the candidate set `{ w_j * k }`, which we find
//! by binary search over the feasibility predicate followed by a local
//! tightening pass that makes the reconstruction exactly optimal.
//!
//! This is the innermost loop of the division MINLP (one call per enumerated
//! slow-group assignment), so the hot entry point is
//! [`solve_minmax_allocation_into`]: it writes into a caller-owned buffer,
//! never clones a dense `caps` vector (the division path always passes `&[]`),
//! and sheds reconstruction surplus in bulk instead of one unit per scan.
//! Every shortcut is bit-for-bit equivalent to the seed implementation kept in
//! [`crate::reference::solve_minmax_allocation_reference`].

use serde::{Deserialize, Serialize};

/// Errors returned by [`solve_minmax_allocation`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationError {
    /// No slots were provided but a positive total must be placed.
    NoSlots,
    /// A weight was negative or NaN.
    InvalidWeight { index: usize },
    /// The sum of capacities is smaller than the requested total.
    Infeasible { total_capacity: u64, requested: u64 },
}

impl std::fmt::Display for AllocationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationError::NoSlots => write!(f, "no slots available for allocation"),
            AllocationError::InvalidWeight { index } => {
                write!(f, "weight at index {index} is negative or NaN")
            }
            AllocationError::Infeasible {
                total_capacity,
                requested,
            } => write!(
                f,
                "total capacity {total_capacity} cannot hold requested {requested} units"
            ),
        }
    }
}

impl std::error::Error for AllocationError {}

/// Result of a min-max allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationResult {
    /// Units assigned to each slot (same order as the input weights).
    pub amounts: Vec<u64>,
    /// The achieved objective `max_j w_j * amounts_j`.
    pub objective: f64,
}

impl AllocationResult {
    /// Index and load of the bottleneck slot (the slot attaining the maximum).
    pub fn bottleneck(&self, weights: &[f64]) -> Option<(usize, f64)> {
        self.amounts
            .iter()
            .enumerate()
            .map(|(j, &a)| (j, weights[j] * a as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Per-slot capacity lookup that treats an empty `caps` slice as "uncapped"
/// without materializing a dense `Vec<Option<u64>>`.
#[inline]
fn cap_of(caps: &[Option<u64>], j: usize) -> Option<u64> {
    caps.get(j).copied().flatten()
}

/// How many units slot `j` may take when the objective must stay `<= threshold`.
fn max_units(weight: f64, cap: Option<u64>, threshold: f64) -> u64 {
    let by_weight = if weight <= 0.0 {
        u64::MAX
    } else if weight.is_infinite() {
        0
    } else {
        // Guard against floating point edge: add a tiny epsilon so that an exact
        // multiple of the weight is counted as feasible.
        let raw = (threshold / weight) * (1.0 + 1e-12) + 1e-9;
        if raw >= u64::MAX as f64 {
            u64::MAX
        } else {
            raw.floor().max(0.0) as u64
        }
    };
    match cap {
        Some(c) => by_weight.min(c),
        None => by_weight,
    }
}

/// One memoized threshold-search result.  A bucket is empty iff `len == 0`
/// (every real key starts with `total` and the class count, so `len >= 2`).
#[derive(Clone, Copy, Default)]
struct CacheSlot {
    hash: u64,
    start: u32,
    len: u32,
    threshold_bits: u64,
}

/// Deterministic open-addressing memo of threshold-search results.
///
/// The binary search's trajectory is a pure function of `(total, class
/// multiset)`: every feasibility predicate it evaluates is an exact `u128`
/// sum of per-class unit counts, so permuting slots (or discovering classes
/// in a different order) cannot change any comparison, and therefore cannot
/// change the final threshold bits.  The division enumeration visits the
/// same capacity multiset over and over (candidates that permute slow groups
/// across slots), so caching by the sorted class signature skips the ~50
/// halvings almost always.  Everything downstream of the threshold (surplus
/// shedding, local improvement) stays per-slot and is NOT cached: exact
/// cross-weight load ties make those loops order-sensitive.
///
/// FNV-1a keyed, linear probing, no entropy: lookups are bit-deterministic
/// and steady-state lookups allocate nothing.
#[derive(Default)]
struct ThresholdCache {
    /// Power-of-two bucket array.
    slots: Vec<CacheSlot>,
    /// Flattened key storage: `[total, classes, (w_bits, mult)...]` runs.
    keys: Vec<u64>,
    entries: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl ThresholdCache {
    fn lookup(&self, hash: u64, key: &[u64]) -> Option<u64> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot.len == 0 {
                return None;
            }
            if slot.hash == hash
                && slot.len as usize == key.len()
                && &self.keys[slot.start as usize..(slot.start + slot.len) as usize] == key
            {
                return Some(slot.threshold_bits);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, hash: u64, key: &[u64], threshold_bits: u64) {
        // Bound the footprint for long-lived threads (e.g. the plan server):
        // the memo only skips recomputation, so clearing is always safe.
        if self.entries >= 1 << 17 {
            self.slots.clear();
            self.keys.clear();
            self.entries = 0;
        }
        if self.entries * 2 >= self.slots.len() {
            let new_cap = (self.slots.len() * 2).max(256);
            let old = std::mem::replace(&mut self.slots, vec![CacheSlot::default(); new_cap]);
            let mask = new_cap - 1;
            for slot in old {
                if slot.len == 0 {
                    continue;
                }
                let mut i = (slot.hash as usize) & mask;
                while self.slots[i].len != 0 {
                    i = (i + 1) & mask;
                }
                self.slots[i] = slot;
            }
        }
        let start = self.keys.len() as u32;
        self.keys.extend_from_slice(key);
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i].len != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = CacheSlot {
            hash,
            start,
            len: key.len() as u32,
            threshold_bits,
        };
        self.entries += 1;
    }
}

/// Reusable buffers for the grouped threshold search.  One instance per
/// thread: the division enumeration calls the solver once per candidate, so
/// the buffers warm up on the first call and steady-state calls perform zero
/// heap allocations.
#[derive(Default)]
struct SearchScratch {
    /// One entry per distinct `(weight bits, capacity)` class.
    w: Vec<f64>,
    cap: Vec<Option<u64>>,
    mult: Vec<u64>,
    /// Unit counts of each class at the current `lo` / `hi` endpoints.
    u_lo: Vec<u64>,
    u_hi: Vec<u64>,
    /// Midpoint unit counts, parallel to `active`.
    u_mid: Vec<u64>,
    /// Classes whose unit count is not yet pinned on `[lo, hi]`.
    active: Vec<usize>,
    /// Class index of each input slot.
    class_of: Vec<usize>,
    /// Sorted class signature `[total, classes, (w_bits, mult)...]`.
    key: Vec<u64>,
    /// Threshold memo for uncapped instances, keyed by `key`.
    cache: ThresholdCache,
}

thread_local! {
    static SEARCH_SCRATCH: std::cell::RefCell<SearchScratch> =
        std::cell::RefCell::new(SearchScratch::default());
}

/// Solve the integer min-max allocation problem exactly.
///
/// * `weights` — positive cost per unit for each slot.  A weight of
///   `f64::INFINITY` forces the slot to receive zero units; a weight of `0.0`
///   means the slot is free (it will greedily absorb surplus units).
/// * `total` — number of units to distribute (`Σ a_j = total`).
/// * `caps` — optional per-slot upper bounds.  Pass `&[]` for "no capacities".
///
/// Returns the allocation and the achieved objective.  When `total == 0` the
/// all-zero allocation with objective `0.0` is returned.
pub fn solve_minmax_allocation(
    weights: &[f64],
    total: u64,
    caps: &[Option<u64>],
) -> Result<AllocationResult, AllocationError> {
    let mut amounts = Vec::new();
    let objective = solve_minmax_allocation_into(weights, total, caps, &mut amounts)?;
    Ok(AllocationResult { amounts, objective })
}

/// Allocation-free variant of [`solve_minmax_allocation`]: writes the amounts
/// into `amounts` (cleared first; its capacity is reused across calls) and
/// returns the objective.  Once `amounts` has been sized by a warm-up call,
/// steady-state invocations perform zero heap allocations.
pub fn solve_minmax_allocation_into(
    weights: &[f64],
    total: u64,
    caps: &[Option<u64>],
    amounts: &mut Vec<u64>,
) -> Result<f64, AllocationError> {
    amounts.clear();
    if weights.is_empty() {
        if total == 0 {
            return Ok(0.0);
        }
        return Err(AllocationError::NoSlots);
    }
    for (j, &w) in weights.iter().enumerate() {
        if w.is_nan() || w < 0.0 {
            return Err(AllocationError::InvalidWeight { index: j });
        }
    }
    if !caps.is_empty() {
        assert_eq!(
            caps.len(),
            weights.len(),
            "caps must be empty or match the number of weights"
        );
    }

    if total == 0 {
        amounts.resize(weights.len(), 0);
        return Ok(0.0);
    }

    // The seed evaluated `capacity_at` — a per-slot saturating fold of
    // `max_units` — on every binary-search iteration.  Two exact identities
    // let us do strictly less arithmetic for the same bits:
    //
    // * Slots with identical `(weight bits, capacity)` have identical
    //   `max_units` at every threshold, so they collapse into one class with a
    //   multiplicity.  A saturating fold of non-negative `u64`s equals
    //   `min(u64::MAX, Σ)` in any summation order, so the grouped `u128` sum
    //   decides `>= total` exactly as the seed's fold does.
    // * `max_units` is weakly monotone in the threshold (float division and
    //   multiplication by positive constants preserve `<=`, as do the `+ 1e-9`
    //   shift, `floor`, and the capacity clamp).  A class whose unit count is
    //   equal at `lo` and `hi` is therefore pinned at that value for every
    //   midpoint the search can still visit and never needs re-evaluation.
    SEARCH_SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        s.w.clear();
        s.cap.clear();
        s.mult.clear();
        s.class_of.clear();
        for (j, &wj) in weights.iter().enumerate() {
            let cj = cap_of(caps, j);
            let class =
                s.w.iter()
                    .zip(s.cap.iter())
                    .position(|(&wg, &cg)| wg.to_bits() == wj.to_bits() && cg == cj);
            match class {
                Some(g) => {
                    s.mult[g] += 1;
                    s.class_of.push(g);
                }
                None => {
                    s.class_of.push(s.w.len());
                    s.w.push(wj);
                    s.cap.push(cj);
                    s.mult.push(1);
                }
            }
        }
        let classes = s.w.len();

        // Quick infeasibility check at an unbounded threshold.  The running
        // sum is monotone non-decreasing, so stopping once it reaches `total`
        // cannot change the comparison; the exact (saturating) capacity is
        // only needed for the error payload, and only when it stays below
        // `total` — in which case the sum fits a `u64` untruncated.
        let mut hard: u128 = 0;
        for g in 0..classes {
            hard += s.mult[g] as u128 * max_units(s.w[g], s.cap[g], f64::MAX) as u128;
            if hard >= total as u128 {
                break;
            }
        }
        if hard < total as u128 {
            return Err(AllocationError::Infeasible {
                total_capacity: hard as u64,
                requested: total,
            });
        }

        // Threshold memo (uncapped instances only — the signature does not
        // encode capacities, and with `caps` empty every class is uniquely
        // identified by its weight bits).  Pairs are insertion-sorted by
        // weight bits so permuted inputs produce the same signature.
        let mut cache_hash = None;
        let mut cache_hit = None;
        if caps.is_empty() {
            s.key.clear();
            s.key.push(total);
            s.key.push(classes as u64);
            for g in 0..classes {
                let (wb, m) = (s.w[g].to_bits(), s.mult[g]);
                let mut i = s.key.len();
                s.key.push(0);
                s.key.push(0);
                while i > 2 && s.key[i - 2] > wb {
                    s.key[i] = s.key[i - 2];
                    s.key[i + 1] = s.key[i - 1];
                    i -= 2;
                }
                s.key[i] = wb;
                s.key[i + 1] = m;
            }
            let hash = fnv1a(&s.key);
            cache_hit = s.cache.lookup(hash, &s.key);
            cache_hash = Some(hash);
        }
        if let Some(bits) = cache_hit {
            // The memoized search ended at this threshold; re-derive each
            // class's unit count there (identical to the `u_hi` state the
            // search would have left behind).
            let threshold = f64::from_bits(bits);
            s.u_hi.clear();
            for g in 0..classes {
                s.u_hi.push(max_units(s.w[g], s.cap[g], threshold));
            }
            amounts.extend(s.class_of.iter().map(|&g| s.u_hi[g]));
            return Ok(());
        }

        // Binary search for the minimal feasible threshold.  (`finite_max_w`
        // is a fold of `f64::max` over positive values seeded with +0.0, so
        // `<= 0.0` is exactly the seed's `== 0.0` check.)
        let finite_max_w = weights
            .iter()
            .copied()
            .filter(|w| w.is_finite() && *w > 0.0)
            .fold(0.0_f64, f64::max);
        let mut lo = 0.0_f64;
        // Upper bound: put everything on the cheapest finite-weight slot.
        let mut hi = if finite_max_w <= 0.0 {
            1.0
        } else {
            finite_max_w * total as f64
        };
        s.u_lo.clear();
        s.u_hi.clear();
        for g in 0..classes {
            s.u_lo.push(max_units(s.w[g], s.cap[g], lo));
            s.u_hi.push(max_units(s.w[g], s.cap[g], hi));
        }
        let cap_lo: u128 = (0..classes)
            .map(|g| s.mult[g] as u128 * s.u_lo[g] as u128)
            .sum();
        if cap_lo >= total as u128 {
            hi = lo;
            s.u_hi.copy_from_slice(&s.u_lo);
        }

        // Classes pinned on the current interval contribute a constant to the
        // feasibility sum; only `active` classes are re-evaluated per halving.
        let mut frozen: u128 = 0;
        s.active.clear();
        for g in 0..classes {
            if s.u_lo[g] == s.u_hi[g] {
                frozen += s.mult[g] as u128 * s.u_lo[g] as u128;
            } else {
                s.active.push(g);
            }
        }
        // The halving budget (200) and the convergence test are shared across
        // the three phases below, which peel work off as classes pin:
        // multi-class phase → single binding class (register-local state, the
        // ~50-iteration steady state) → constant predicate (pure halvings).
        let mut it = 0;
        while it < 200 && s.active.len() > 1 {
            if hi - lo <= f64::EPSILON * hi.max(1.0) {
                break;
            }
            let mid = 0.5 * (lo + hi);
            s.u_mid.clear();
            let mut sum = frozen;
            for &g in &s.active {
                let u = max_units(s.w[g], s.cap[g], mid);
                s.u_mid.push(u);
                sum += s.mult[g] as u128 * u as u128;
            }
            if sum >= total as u128 {
                hi = mid;
                for (i, &g) in s.active.iter().enumerate() {
                    s.u_hi[g] = s.u_mid[i];
                }
            } else {
                lo = mid;
                for (i, &g) in s.active.iter().enumerate() {
                    s.u_lo[g] = s.u_mid[i];
                }
            }
            let mut kept = 0;
            for i in 0..s.active.len() {
                let g = s.active[i];
                if s.u_lo[g] == s.u_hi[g] {
                    frozen += s.mult[g] as u128 * s.u_lo[g] as u128;
                } else {
                    s.active[kept] = g;
                    kept += 1;
                }
            }
            s.active.truncate(kept);
            it += 1;
        }
        if s.active.len() == 1 {
            let g = s.active[0];
            let (wg, cg, mg) = (s.w[g], s.cap[g], s.mult[g] as u128);
            let mut ulo = s.u_lo[g];
            let mut uhi = s.u_hi[g];
            while it < 200 && ulo != uhi {
                if hi - lo <= f64::EPSILON * hi.max(1.0) {
                    break;
                }
                let mid = 0.5 * (lo + hi);
                let u = max_units(wg, cg, mid);
                if frozen + mg * u as u128 >= total as u128 {
                    hi = mid;
                    uhi = u;
                } else {
                    lo = mid;
                    ulo = u;
                }
                it += 1;
            }
            s.u_lo[g] = ulo;
            s.u_hi[g] = uhi;
            if ulo == uhi {
                frozen += mg * ulo as u128;
                s.active.clear();
            }
        }
        if s.active.is_empty() {
            // Every class is pinned, so the feasibility sum — and with it the
            // branch taken — is the same at every midpoint still reachable.
            let feasible = frozen >= total as u128;
            while it < 200 {
                if hi - lo <= f64::EPSILON * hi.max(1.0) {
                    break;
                }
                let mid = 0.5 * (lo + hi);
                if feasible {
                    hi = mid;
                } else {
                    lo = mid;
                }
                it += 1;
            }
        }

        if let Some(hash) = cache_hash {
            s.cache.insert(hash, &s.key, hi.to_bits());
        }

        // Reconstruct: fill each slot to its threshold capacity (`u_hi` holds
        // each class's exact unit count at the final `hi` — refreshed on every
        // `hi` move for active classes, pinned on the remaining interval for
        // frozen ones), then shed surplus from the currently most loaded slots
        // so the maximum only decreases.
        amounts.extend(s.class_of.iter().map(|&g| s.u_hi[g]));
        Ok(())
    })?;
    let mut assigned: u64 = amounts.iter().sum();
    debug_assert!(assigned >= total);
    while assigned > total {
        // The seed removed one unit per scan from the most loaded positive
        // slot (`max_by` keeps the *last* among ties).  Shed in bulk instead:
        // slot `j` keeps being re-selected while its load stays strictly above
        // every later slot's and no lower than every earlier slot's, and its
        // load is strictly decreasing, so the run length of consecutive picks
        // is found by binary search on the exact same float comparisons —
        // bit-for-bit the same amounts as the unit-at-a-time loop.
        let (j, _) = amounts
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > 0)
            .map(|(j, &a)| (j, weights[j] * a as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("assigned > total implies a positive slot exists");
        let surplus = assigned - total;
        let shed = if weights[j] <= 0.0 {
            // Free slot: the seed shed its whole surplus here in one step.
            surplus.min(amounts[j])
        } else {
            let mut max_after = f64::NEG_INFINITY;
            let mut max_before = f64::NEG_INFINITY;
            for (j2, &a2) in amounts.iter().enumerate() {
                if j2 == j || a2 == 0 {
                    continue;
                }
                let load = weights[j2] * a2 as f64;
                if j2 > j {
                    if load > max_after {
                        max_after = load;
                    }
                } else if load > max_before {
                    max_before = load;
                }
            }
            // `still_picked(t)`: after `t` sheds, would the argmax above pick
            // `j` again?  Monotone in `t` (the load only decreases), and
            // `still_picked(0)` holds because `j` was just picked.
            let still_picked = |t: u64| {
                let load = weights[j] * (amounts[j] - t) as f64;
                load > max_after && load >= max_before
            };
            let mut lo = 1u64;
            let mut hi = surplus.min(amounts[j]);
            while lo < hi {
                let mid = lo + (hi - lo).div_ceil(2);
                if still_picked(mid - 1) {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            lo
        };
        amounts[j] -= shed;
        assigned -= shed;
    }

    // Local improvement: move single units away from the bottleneck slot if that
    // strictly lowers the objective.  This turns the (already near-optimal)
    // reconstruction into an exact optimum.  (`cur_obj` is a max over
    // non-negative loads, so `<= 0.0` is exactly the seed's `== 0.0` check.)
    loop {
        let (jmax, cur_obj) = amounts
            .iter()
            .enumerate()
            .map(|(j, &a)| (j, weights[j] * a as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if amounts[jmax] == 0 || cur_obj <= 0.0 {
            break;
        }
        // Find a recipient whose load after +1 stays strictly below cur_obj.
        let mut best: Option<(usize, f64)> = None;
        for (j, &a) in amounts.iter().enumerate() {
            if j == jmax {
                continue;
            }
            if let Some(c) = cap_of(caps, j) {
                if a >= c {
                    continue;
                }
            }
            let new_load = weights[j] * (a + 1) as f64;
            if new_load < cur_obj {
                match best {
                    Some((_, l)) if l <= new_load => {}
                    _ => best = Some((j, new_load)),
                }
            }
        }
        match best {
            Some((j, _)) => {
                amounts[jmax] -= 1;
                amounts[j] += 1;
            }
            None => break,
        }
    }

    let objective = amounts
        .iter()
        .enumerate()
        .map(|(j, &a)| weights[j] * a as f64)
        .fold(0.0_f64, f64::max);
    Ok(objective)
}

/// Exhaustive reference solver used in tests (exponential, tiny inputs only).
pub fn brute_force_minmax(
    weights: &[f64],
    total: u64,
    caps: &[Option<u64>],
) -> Option<(Vec<u64>, f64)> {
    let n = weights.len();
    if n == 0 {
        return if total == 0 {
            Some((Vec::new(), 0.0))
        } else {
            None
        };
    }
    let caps_vec: Vec<u64> = (0..n)
        .map(|j| caps.get(j).copied().flatten().unwrap_or(total).min(total))
        .collect();
    let mut best: Option<(Vec<u64>, f64)> = None;
    let mut current = vec![0u64; n];
    fn recurse(
        j: usize,
        remaining: u64,
        weights: &[f64],
        caps: &[u64],
        current: &mut Vec<u64>,
        best: &mut Option<(Vec<u64>, f64)>,
    ) {
        if j == weights.len() {
            if remaining == 0 {
                let obj = current
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| weights[i] * a as f64)
                    .fold(0.0_f64, f64::max);
                if best.as_ref().map(|(_, b)| obj < *b).unwrap_or(true) {
                    *best = Some((current.clone(), obj));
                }
            }
            return;
        }
        let max_here = caps[j].min(remaining);
        for a in 0..=max_here {
            current[j] = a;
            recurse(j + 1, remaining - a, weights, caps, current, best);
        }
        current[j] = 0;
    }
    recurse(0, total, weights, &caps_vec, &mut current, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::solve_minmax_allocation_reference;

    #[test]
    fn zero_total_yields_zero_allocation() {
        let r = solve_minmax_allocation(&[1.0, 2.0], 0, &[]).unwrap();
        assert_eq!(r.amounts, vec![0, 0]);
        assert_eq!(r.objective, 0.0);
    }

    #[test]
    fn single_slot_takes_everything() {
        let r = solve_minmax_allocation(&[3.0], 7, &[]).unwrap();
        assert_eq!(r.amounts, vec![7]);
        assert!((r.objective - 21.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let r = solve_minmax_allocation(&[1.0, 1.0, 1.0, 1.0], 64, &[]).unwrap();
        assert_eq!(r.amounts.iter().sum::<u64>(), 64);
        assert!((r.objective - 16.0).abs() < 1e-9);
    }

    #[test]
    fn straggler_gets_fewer_units() {
        // One slot is 4x slower: it should receive roughly a quarter of the load.
        let r = solve_minmax_allocation(&[4.0, 1.0, 1.0, 1.0], 65, &[]).unwrap();
        assert_eq!(r.amounts.iter().sum::<u64>(), 65);
        assert!(r.amounts[0] < r.amounts[1]);
        let brute = brute_force_minmax(&[4.0, 1.0, 1.0, 1.0], 65, &[]).unwrap();
        assert!((r.objective - brute.1).abs() < 1e-6);
    }

    #[test]
    fn infinite_weight_forces_zero() {
        let r = solve_minmax_allocation(&[f64::INFINITY, 1.0, 1.0], 10, &[]).unwrap();
        assert_eq!(r.amounts[0], 0);
        assert_eq!(r.amounts.iter().sum::<u64>(), 10);
    }

    #[test]
    fn capacity_is_respected() {
        let caps = [Some(2u64), None, None];
        let r = solve_minmax_allocation(&[1.0, 1.0, 1.0], 12, &caps).unwrap();
        assert!(r.amounts[0] <= 2);
        assert_eq!(r.amounts.iter().sum::<u64>(), 12);
    }

    #[test]
    fn infeasible_when_caps_too_small() {
        let caps = [Some(2u64), Some(3u64)];
        let err = solve_minmax_allocation(&[1.0, 1.0], 12, &caps).unwrap_err();
        assert!(matches!(err, AllocationError::Infeasible { .. }));
    }

    #[test]
    fn heavy_straggler_is_dropped_entirely() {
        // When the rest of the slots can hold the full load under a better
        // objective, the very slow slot should receive zero units (this is how
        // the planner removes heavy stragglers from the training job).
        let r = solve_minmax_allocation(&[50.0, 1.0, 1.0, 1.0, 1.0], 8, &[]).unwrap();
        assert_eq!(r.amounts[0], 0);
        assert!((r.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_assorted_instances() {
        let cases: Vec<(Vec<f64>, u64, Vec<Option<u64>>)> = vec![
            (vec![1.0, 2.0, 3.0], 10, vec![]),
            (vec![2.5, 1.0, 1.0, 4.0], 9, vec![]),
            (vec![1.0, 1.0], 5, vec![Some(1), None]),
            (vec![3.0, 1.5, 1.0], 7, vec![None, Some(3), None]),
            (vec![1.2, 1.2, 5.4, 1.2], 12, vec![]),
            (vec![2.62, 2.62, 1.0, 1.0], 11, vec![]),
            // Large-surplus instances: the threshold reconstruction overshoots
            // badly (free or tied slots), pinning the bulk-shed path.  (At most
            // one uncapped zero-weight slot per instance: a second one pushes
            // the reconstruction sum past u64::MAX, which the seed never
            // supported either.)
            (vec![0.0, 1.0, 1.0], 14, vec![]),
            (vec![0.0, 2.0, 2.0], 13, vec![Some(4), None, None]),
            (vec![1.0, 1.0, 1.0, 1.0, 1.0], 17, vec![]),
            (vec![0.5, 0.5, 0.5, 4.0], 15, vec![]),
            (vec![2.0, 2.0, 2.0], 16, vec![Some(6), Some(6), Some(6)]),
        ];
        for (w, total, caps) in cases {
            let fast = solve_minmax_allocation(&w, total, &caps).unwrap();
            let brute = brute_force_minmax(&w, total, &caps).unwrap();
            assert!(
                (fast.objective - brute.1).abs() < 1e-6,
                "weights={w:?} total={total} fast={} brute={}",
                fast.objective,
                brute.1
            );
            assert_eq!(fast.amounts.iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn bulk_shed_is_bitwise_identical_to_the_seed_unit_shed() {
        // Deterministic sweep over instances with heavy reconstruction
        // surpluses (ties, zero weights, caps): amounts and objective must
        // match the frozen seed solver bit for bit.
        let mut cases: Vec<(Vec<f64>, u64, Vec<Option<u64>>)> = vec![
            (vec![0.0, 1.0], 100, vec![]),
            (vec![0.0, 1.0, 1.0], 257, vec![]),
            (vec![1.0, 1.0, 1.0, 1.0], 1023, vec![]),
            (
                vec![2.0, 2.0, 1.0, 1.0],
                511,
                vec![None, Some(3), None, None],
            ),
            (vec![f64::INFINITY, 1.0, 0.0], 64, vec![]),
        ];
        // A pseudo-random (but fixed-seed) family for breadth.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let n = 1 + (next() % 6) as usize;
            // At most one zero-weight slot (always slot 0 when present): two
            // uncapped free slots overflow the seed's reconstruction sum.
            let mut weights: Vec<f64> = (0..n)
                .map(|_| ((next() % 900) + 100) as f64 / 250.0)
                .collect();
            if next() % 3 == 0 {
                weights[0] = 0.0;
            }
            let caps: Vec<Option<u64>> = if next() % 2 == 0 {
                Vec::new()
            } else {
                (0..n)
                    .map(|_| {
                        if next() % 3 == 0 {
                            Some(next() % 40)
                        } else {
                            None
                        }
                    })
                    .collect()
            };
            let total = next() % 300;
            cases.push((weights, total, caps));
        }
        for (w, total, caps) in cases {
            let new = solve_minmax_allocation(&w, total, &caps);
            let old = solve_minmax_allocation_reference(&w, total, &caps);
            match (new, old) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.amounts, b.amounts, "w={w:?} total={total} caps={caps:?}");
                    assert_eq!(
                        a.objective.to_bits(),
                        b.objective.to_bits(),
                        "w={w:?} total={total} caps={caps:?}"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("divergent outcomes: new={a:?} old={b:?} for w={w:?}"),
            }
        }
    }

    #[test]
    fn threshold_memo_replay_matches_first_solve_and_reference() {
        // The first solve of each signature runs the binary search and
        // populates the memo; permutations and repeats replay the cached
        // threshold.  Both paths must be byte-identical to the frozen seed.
        let cases: Vec<(Vec<f64>, u64)> = vec![
            (vec![0.25, 0.5, 0.25, 0.125], 97),
            (vec![0.5, 0.25, 0.125, 0.25], 97),
            (vec![0.125, 0.25, 0.25, 0.5], 97),
            (vec![1.0 / 3.0, 1.0 / 3.0, 0.2], 41),
            (vec![0.2, 1.0 / 3.0, 1.0 / 3.0], 41),
            (vec![f64::INFINITY, 0.75, 0.75], 29),
            (vec![0.75, f64::INFINITY, 0.75], 29),
        ];
        for (w, total) in cases {
            let first = solve_minmax_allocation(&w, total, &[]).unwrap();
            let replay = solve_minmax_allocation(&w, total, &[]).unwrap();
            assert_eq!(first.amounts, replay.amounts, "w={w:?}");
            assert_eq!(first.objective.to_bits(), replay.objective.to_bits());
            let seed = solve_minmax_allocation_reference(&w, total, &[]).unwrap();
            assert_eq!(first.amounts, seed.amounts, "w={w:?}");
            assert_eq!(first.objective.to_bits(), seed.objective.to_bits());
        }
    }

    #[test]
    fn into_variant_reuses_the_buffer_without_reallocating() {
        let mut buf = Vec::new();
        let obj1 = solve_minmax_allocation_into(&[1.0, 2.0, 3.0], 10, &[], &mut buf).unwrap();
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        let obj2 = solve_minmax_allocation_into(&[1.0, 2.0, 3.0], 10, &[], &mut buf).unwrap();
        assert_eq!(obj1.to_bits(), obj2.to_bits());
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
        assert_eq!(buf.iter().sum::<u64>(), 10);
    }

    #[test]
    fn zero_weight_slot_absorbs_surplus() {
        let r = solve_minmax_allocation(&[0.0, 1.0], 100, &[]).unwrap();
        assert_eq!(r.amounts.iter().sum::<u64>(), 100);
        assert!(r.amounts[0] >= 99);
        assert!(r.objective <= 1.0 + 1e-9);
    }

    #[test]
    fn error_display_is_informative() {
        let e = AllocationError::Infeasible {
            total_capacity: 4,
            requested: 10,
        };
        assert!(e.to_string().contains("capacity"));
        assert!(AllocationError::NoSlots.to_string().contains("no slots"));
        assert!(AllocationError::InvalidWeight { index: 3 }
            .to_string()
            .contains("3"));
    }
}
