//! Exact solver for integer min-max allocation problems.
//!
//! Problem: given `n` slots with positive weights `w_j` and optional integer
//! capacities `cap_j`, find non-negative integers `a_j` with `Σ a_j = total`
//! minimizing `max_j (w_j * a_j)`.
//!
//! Both the layer-assignment ILP (Eq. (2) in the paper, weights are group
//! straggling rates, capacities come from the memory model) and the
//! data-assignment ILP (Eq. (3), weights are per-pipeline per-micro-batch
//! costs, no capacity) are instances of this problem.
//!
//! The solver exploits the classic threshold structure: for a target objective
//! `T`, slot `j` can absorb at most `min(cap_j, floor(T / w_j))` units, so
//! feasibility of `T` is monotone.  The optimal objective is therefore the
//! smallest feasible value among the candidate set `{ w_j * k }`, which we find
//! by binary search over the feasibility predicate followed by a local
//! tightening pass that makes the reconstruction exactly optimal.

use serde::{Deserialize, Serialize};

/// Errors returned by [`solve_minmax_allocation`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationError {
    /// No slots were provided but a positive total must be placed.
    NoSlots,
    /// A weight was negative or NaN.
    InvalidWeight { index: usize },
    /// The sum of capacities is smaller than the requested total.
    Infeasible { total_capacity: u64, requested: u64 },
}

impl std::fmt::Display for AllocationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationError::NoSlots => write!(f, "no slots available for allocation"),
            AllocationError::InvalidWeight { index } => {
                write!(f, "weight at index {index} is negative or NaN")
            }
            AllocationError::Infeasible {
                total_capacity,
                requested,
            } => write!(
                f,
                "total capacity {total_capacity} cannot hold requested {requested} units"
            ),
        }
    }
}

impl std::error::Error for AllocationError {}

/// Result of a min-max allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationResult {
    /// Units assigned to each slot (same order as the input weights).
    pub amounts: Vec<u64>,
    /// The achieved objective `max_j w_j * amounts_j`.
    pub objective: f64,
}

impl AllocationResult {
    /// Index and load of the bottleneck slot (the slot attaining the maximum).
    pub fn bottleneck(&self, weights: &[f64]) -> Option<(usize, f64)> {
        self.amounts
            .iter()
            .enumerate()
            .map(|(j, &a)| (j, weights[j] * a as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// How many units slot `j` may take when the objective must stay `<= threshold`.
fn max_units(weight: f64, cap: Option<u64>, threshold: f64) -> u64 {
    let by_weight = if weight <= 0.0 {
        u64::MAX
    } else if weight.is_infinite() {
        0
    } else {
        // Guard against floating point edge: add a tiny epsilon so that an exact
        // multiple of the weight is counted as feasible.
        let raw = (threshold / weight) * (1.0 + 1e-12) + 1e-9;
        if raw >= u64::MAX as f64 {
            u64::MAX
        } else {
            raw.floor().max(0.0) as u64
        }
    };
    match cap {
        Some(c) => by_weight.min(c),
        None => by_weight,
    }
}

/// Total units that can be absorbed under an objective threshold.
fn capacity_at(weights: &[f64], caps: &[Option<u64>], threshold: f64) -> u64 {
    let mut sum: u64 = 0;
    for (j, &w) in weights.iter().enumerate() {
        sum = sum.saturating_add(max_units(w, caps[j], threshold));
    }
    sum
}

/// Solve the integer min-max allocation problem exactly.
///
/// * `weights` — positive cost per unit for each slot.  A weight of
///   `f64::INFINITY` forces the slot to receive zero units; a weight of `0.0`
///   means the slot is free (it will greedily absorb surplus units).
/// * `total` — number of units to distribute (`Σ a_j = total`).
/// * `caps` — optional per-slot upper bounds.  Pass `&[]` for "no capacities".
///
/// Returns the allocation and the achieved objective.  When `total == 0` the
/// all-zero allocation with objective `0.0` is returned.
pub fn solve_minmax_allocation(
    weights: &[f64],
    total: u64,
    caps: &[Option<u64>],
) -> Result<AllocationResult, AllocationError> {
    if weights.is_empty() {
        if total == 0 {
            return Ok(AllocationResult {
                amounts: Vec::new(),
                objective: 0.0,
            });
        }
        return Err(AllocationError::NoSlots);
    }
    for (j, &w) in weights.iter().enumerate() {
        if w.is_nan() || w < 0.0 {
            return Err(AllocationError::InvalidWeight { index: j });
        }
    }
    let caps_vec: Vec<Option<u64>> = if caps.is_empty() {
        vec![None; weights.len()]
    } else {
        assert_eq!(
            caps.len(),
            weights.len(),
            "caps must be empty or match the number of weights"
        );
        caps.to_vec()
    };

    if total == 0 {
        return Ok(AllocationResult {
            amounts: vec![0; weights.len()],
            objective: 0.0,
        });
    }

    // Quick infeasibility check at an unbounded threshold.
    let hard_capacity = capacity_at(weights, &caps_vec, f64::MAX);
    if hard_capacity < total {
        return Err(AllocationError::Infeasible {
            total_capacity: hard_capacity,
            requested: total,
        });
    }

    // Binary search for the minimal feasible threshold.
    let finite_max_w = weights
        .iter()
        .copied()
        .filter(|w| w.is_finite() && *w > 0.0)
        .fold(0.0_f64, f64::max);
    let mut lo = 0.0_f64;
    // Upper bound: put everything on the cheapest finite-weight slot.
    let mut hi = if finite_max_w == 0.0 {
        1.0
    } else {
        finite_max_w * total as f64
    };
    if capacity_at(weights, &caps_vec, lo) >= total {
        hi = lo;
    }
    for _ in 0..200 {
        if hi - lo <= f64::EPSILON * hi.max(1.0) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if capacity_at(weights, &caps_vec, mid) >= total {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let threshold = hi;

    // Reconstruct: fill each slot to its threshold capacity, then shed surplus
    // from the currently most loaded slots so the maximum only decreases.
    let mut amounts: Vec<u64> = weights
        .iter()
        .enumerate()
        .map(|(j, &w)| max_units(w, caps_vec[j], threshold))
        .collect();
    let mut assigned: u64 = amounts.iter().sum();
    debug_assert!(assigned >= total);
    while assigned > total {
        // Remove a unit from the slot with the largest current load that still
        // has something to give.
        let (j, _) = amounts
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > 0)
            .map(|(j, &a)| (j, weights[j] * a as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("assigned > total implies a positive slot exists");
        let surplus = assigned - total;
        // Shed as many units as possible from this slot without going below the
        // second-highest load (cheap approximation: shed one unit at a time for
        // small surpluses, otherwise shed in bulk bounded by the surplus).
        let shed = if weights[j] == 0.0 {
            surplus.min(amounts[j])
        } else {
            1
        };
        amounts[j] -= shed;
        assigned -= shed;
    }

    // Local improvement: move single units away from the bottleneck slot if that
    // strictly lowers the objective.  This turns the (already near-optimal)
    // reconstruction into an exact optimum.
    loop {
        let (jmax, cur_obj) = amounts
            .iter()
            .enumerate()
            .map(|(j, &a)| (j, weights[j] * a as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if amounts[jmax] == 0 || cur_obj == 0.0 {
            break;
        }
        // Find a recipient whose load after +1 stays strictly below cur_obj.
        let mut moved = false;
        let mut best: Option<(usize, f64)> = None;
        for (j, &a) in amounts.iter().enumerate() {
            if j == jmax {
                continue;
            }
            if let Some(c) = caps_vec[j] {
                if a >= c {
                    continue;
                }
            }
            let new_load = weights[j] * (a + 1) as f64;
            if new_load < cur_obj {
                match best {
                    Some((_, l)) if l <= new_load => {}
                    _ => best = Some((j, new_load)),
                }
            }
        }
        if let Some((j, _)) = best {
            amounts[jmax] -= 1;
            amounts[j] += 1;
            moved = true;
        }
        if !moved {
            break;
        }
    }

    let objective = amounts
        .iter()
        .enumerate()
        .map(|(j, &a)| weights[j] * a as f64)
        .fold(0.0_f64, f64::max);
    Ok(AllocationResult { amounts, objective })
}

/// Exhaustive reference solver used in tests (exponential, tiny inputs only).
pub fn brute_force_minmax(
    weights: &[f64],
    total: u64,
    caps: &[Option<u64>],
) -> Option<(Vec<u64>, f64)> {
    let n = weights.len();
    if n == 0 {
        return if total == 0 {
            Some((Vec::new(), 0.0))
        } else {
            None
        };
    }
    let caps_vec: Vec<u64> = (0..n)
        .map(|j| caps.get(j).copied().flatten().unwrap_or(total).min(total))
        .collect();
    let mut best: Option<(Vec<u64>, f64)> = None;
    let mut current = vec![0u64; n];
    fn recurse(
        j: usize,
        remaining: u64,
        weights: &[f64],
        caps: &[u64],
        current: &mut Vec<u64>,
        best: &mut Option<(Vec<u64>, f64)>,
    ) {
        if j == weights.len() {
            if remaining == 0 {
                let obj = current
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| weights[i] * a as f64)
                    .fold(0.0_f64, f64::max);
                if best.as_ref().map(|(_, b)| obj < *b).unwrap_or(true) {
                    *best = Some((current.clone(), obj));
                }
            }
            return;
        }
        let max_here = caps[j].min(remaining);
        for a in 0..=max_here {
            current[j] = a;
            recurse(j + 1, remaining - a, weights, caps, current, best);
        }
        current[j] = 0;
    }
    recurse(0, total, weights, &caps_vec, &mut current, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_total_yields_zero_allocation() {
        let r = solve_minmax_allocation(&[1.0, 2.0], 0, &[]).unwrap();
        assert_eq!(r.amounts, vec![0, 0]);
        assert_eq!(r.objective, 0.0);
    }

    #[test]
    fn single_slot_takes_everything() {
        let r = solve_minmax_allocation(&[3.0], 7, &[]).unwrap();
        assert_eq!(r.amounts, vec![7]);
        assert!((r.objective - 21.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let r = solve_minmax_allocation(&[1.0, 1.0, 1.0, 1.0], 64, &[]).unwrap();
        assert_eq!(r.amounts.iter().sum::<u64>(), 64);
        assert!((r.objective - 16.0).abs() < 1e-9);
    }

    #[test]
    fn straggler_gets_fewer_units() {
        // One slot is 4x slower: it should receive roughly a quarter of the load.
        let r = solve_minmax_allocation(&[4.0, 1.0, 1.0, 1.0], 65, &[]).unwrap();
        assert_eq!(r.amounts.iter().sum::<u64>(), 65);
        assert!(r.amounts[0] < r.amounts[1]);
        let brute = brute_force_minmax(&[4.0, 1.0, 1.0, 1.0], 65, &[]).unwrap();
        assert!((r.objective - brute.1).abs() < 1e-6);
    }

    #[test]
    fn infinite_weight_forces_zero() {
        let r = solve_minmax_allocation(&[f64::INFINITY, 1.0, 1.0], 10, &[]).unwrap();
        assert_eq!(r.amounts[0], 0);
        assert_eq!(r.amounts.iter().sum::<u64>(), 10);
    }

    #[test]
    fn capacity_is_respected() {
        let caps = [Some(2u64), None, None];
        let r = solve_minmax_allocation(&[1.0, 1.0, 1.0], 12, &caps).unwrap();
        assert!(r.amounts[0] <= 2);
        assert_eq!(r.amounts.iter().sum::<u64>(), 12);
    }

    #[test]
    fn infeasible_when_caps_too_small() {
        let caps = [Some(2u64), Some(3u64)];
        let err = solve_minmax_allocation(&[1.0, 1.0], 12, &caps).unwrap_err();
        assert!(matches!(err, AllocationError::Infeasible { .. }));
    }

    #[test]
    fn heavy_straggler_is_dropped_entirely() {
        // When the rest of the slots can hold the full load under a better
        // objective, the very slow slot should receive zero units (this is how
        // the planner removes heavy stragglers from the training job).
        let r = solve_minmax_allocation(&[50.0, 1.0, 1.0, 1.0, 1.0], 8, &[]).unwrap();
        assert_eq!(r.amounts[0], 0);
        assert!((r.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_assorted_instances() {
        let cases: Vec<(Vec<f64>, u64, Vec<Option<u64>>)> = vec![
            (vec![1.0, 2.0, 3.0], 10, vec![]),
            (vec![2.5, 1.0, 1.0, 4.0], 9, vec![]),
            (vec![1.0, 1.0], 5, vec![Some(1), None]),
            (vec![3.0, 1.5, 1.0], 7, vec![None, Some(3), None]),
            (vec![1.2, 1.2, 5.4, 1.2], 12, vec![]),
            (vec![2.62, 2.62, 1.0, 1.0], 11, vec![]),
        ];
        for (w, total, caps) in cases {
            let fast = solve_minmax_allocation(&w, total, &caps).unwrap();
            let brute = brute_force_minmax(&w, total, &caps).unwrap();
            assert!(
                (fast.objective - brute.1).abs() < 1e-6,
                "weights={w:?} total={total} fast={} brute={}",
                fast.objective,
                brute.1
            );
            assert_eq!(fast.amounts.iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn zero_weight_slot_absorbs_surplus() {
        let r = solve_minmax_allocation(&[0.0, 1.0], 100, &[]).unwrap();
        assert_eq!(r.amounts.iter().sum::<u64>(), 100);
        assert!(r.amounts[0] >= 99);
        assert!(r.objective <= 1.0 + 1e-9);
    }

    #[test]
    fn error_display_is_informative() {
        let e = AllocationError::Infeasible {
            total_capacity: 4,
            requested: 10,
        };
        assert!(e.to_string().contains("capacity"));
        assert!(AllocationError::NoSlots.to_string().contains("no slots"));
        assert!(AllocationError::InvalidWeight { index: 3 }
            .to_string()
            .contains("3"));
    }
}
