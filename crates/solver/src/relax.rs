//! Continuous relaxations used by the upper-level planning problem.
//!
//! Theorem 2 of the paper proves that, when the memory constraints are dropped
//! and layer / data assignments may be fractional, the optimal step time of a
//! grouping result is inversely proportional to the *harmonic capacity*
//! `Σ_g 1 / y_g` of its group straggling rates.  The planner uses this as a
//! constant-time estimator to rank the candidate grouping results produced by
//! the group-splitting routine (Appendix B.7), and the pipeline-division solver
//! uses the same quantity to measure per-pipeline throughput.

/// Harmonic capacity `Σ_g 1 / y_g` of a set of group straggling rates.
///
/// Rates of `f64::INFINITY` (failed or removed groups) contribute zero.
/// A higher harmonic capacity means a faster (better) grouping result.
pub fn harmonic_capacity(rates: &[f64]) -> f64 {
    rates
        .iter()
        .filter(|y| y.is_finite() && **y > 0.0)
        .map(|y| 1.0 / y)
        .sum()
}

/// The relaxed optimal step time for a grouping result (Theorem 2 / Appendix
/// B.2): `T = (B/b) * L * τ(b) / Σ 1/y`.
///
/// Only the relative value matters when comparing grouping results, so callers
/// that just rank candidates can pass `work = 1.0`.
pub fn relaxed_minmax_objective(rates: &[f64], work: f64) -> f64 {
    let cap = harmonic_capacity(rates);
    if cap <= 0.0 {
        f64::INFINITY
    } else {
        work / cap
    }
}

/// Theorem 2 ratio `T' / T'' = (Σ 1/y'') / (Σ 1/y')` between two grouping
/// results.  A ratio `< 1` means the *first* grouping is faster.
pub fn theorem2_ratio(rates_a: &[f64], rates_b: &[f64]) -> f64 {
    let cap_a = harmonic_capacity(rates_a);
    let cap_b = harmonic_capacity(rates_b);
    if cap_a <= 0.0 {
        f64::INFINITY
    } else {
        cap_b / cap_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_capacity_of_uniform_groups() {
        let rates = vec![1.0; 8];
        assert!((harmonic_capacity(&rates) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_rates_are_ignored() {
        let rates = vec![1.0, f64::INFINITY, 2.0];
        assert!((harmonic_capacity(&rates) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_prefers_higher_capacity() {
        // Splitting a straggler-dominated group of 8 into {1 straggler} + {7
        // healthy-ish GPUs regrouped} should improve the harmonic capacity, as
        // in Figure 5 of the paper.
        let before = vec![12.53, 1.0, 1.0, 1.0];
        let after = vec![12.53, 0.6, 1.0, 1.0, 1.0];
        let ratio = theorem2_ratio(&after, &before);
        assert!(
            ratio < 1.0,
            "after-split grouping should be faster (T_after/T_before < 1), got {ratio}"
        );
    }

    #[test]
    fn figure5_example_ordering() {
        // Figure 5: original group straggling rate before splitting is 12.53
        // giving capacity 1/12.53 ≈ 0.08; the third splitting possibility is the
        // best with capacity ≈ 0.52 among {0.67?, 0.73?, 0.52?}.  We only check
        // that all split options beat the unsplit one and that the solver ranks
        // them consistently with their capacities.
        let unsplit = vec![12.53];
        let split_a = vec![12.53, 5.42, 2.57, 7.22];
        let split_b = vec![12.53, 5.42, 3.66, 7.22];
        let caps = [
            harmonic_capacity(&unsplit),
            harmonic_capacity(&split_a),
            harmonic_capacity(&split_b),
        ];
        assert!(caps[1] > caps[0] && caps[2] > caps[0]);
        assert_eq!(
            theorem2_ratio(&split_a, &split_b) < 1.0,
            caps[1] > caps[2],
            "ratio ordering must agree with capacity ordering"
        );
    }

    #[test]
    fn relaxed_objective_scales_with_work() {
        let rates = vec![1.0, 2.0];
        let t1 = relaxed_minmax_objective(&rates, 10.0);
        let t2 = relaxed_minmax_objective(&rates, 20.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_or_all_failed_is_infinite() {
        assert!(relaxed_minmax_objective(&[], 1.0).is_infinite());
        assert!(relaxed_minmax_objective(&[f64::INFINITY], 1.0).is_infinite());
    }
}
