//! Frozen seed implementations of the division and min-max solvers.
//!
//! These are the pre-optimization (per-candidate allocating) versions of
//! [`crate::division::divide_pipelines`] and
//! [`crate::minmax::solve_minmax_allocation`], kept verbatim as the
//! behavioral oracle for the allocation-free rewrites:
//!
//! * the bitwise-equality proptests in `division.rs`/`minmax.rs` compare every
//!   optimized result (`objective`/`capacities` via `to_bits`, all integer
//!   fields exactly) against these functions, and
//! * `division_bench` / `exp_planning_scalability` measure the speedup-vs-seed
//!   gate against their wall clock.
//!
//! Do not "improve" this module: its value is that it does not change.
//! (The only edits vs the seed are three `== 0.0` comparisons rewritten to the
//! equivalent `<= 0.0` — weights are validated non-negative, and the folds that
//! produce `finite_max_w`/`cur_obj` start at `+0.0` — so the module passes the
//! ML003 float byte-identity lint without pragmas.)

use crate::division::{Division, DivisionError, DivisionProblem};
use crate::minmax::{AllocationError, AllocationResult};
use crate::relax::harmonic_capacity;

/// How many units slot `j` may take when the objective must stay `<= threshold`.
fn max_units(weight: f64, cap: Option<u64>, threshold: f64) -> u64 {
    let by_weight = if weight <= 0.0 {
        u64::MAX
    } else if weight.is_infinite() {
        0
    } else {
        let raw = (threshold / weight) * (1.0 + 1e-12) + 1e-9;
        if raw >= u64::MAX as f64 {
            u64::MAX
        } else {
            raw.floor().max(0.0) as u64
        }
    };
    match cap {
        Some(c) => by_weight.min(c),
        None => by_weight,
    }
}

/// Total units that can be absorbed under an objective threshold.
fn capacity_at(weights: &[f64], caps: &[Option<u64>], threshold: f64) -> u64 {
    let mut sum: u64 = 0;
    for (j, &w) in weights.iter().enumerate() {
        sum = sum.saturating_add(max_units(w, caps[j], threshold));
    }
    sum
}

/// The seed min-max allocator: binary search on the threshold, a dense
/// `caps_vec` clone, and a one-unit-at-a-time surplus shed loop.
pub fn solve_minmax_allocation_reference(
    weights: &[f64],
    total: u64,
    caps: &[Option<u64>],
) -> Result<AllocationResult, AllocationError> {
    if weights.is_empty() {
        if total == 0 {
            return Ok(AllocationResult {
                amounts: Vec::new(),
                objective: 0.0,
            });
        }
        return Err(AllocationError::NoSlots);
    }
    for (j, &w) in weights.iter().enumerate() {
        if w.is_nan() || w < 0.0 {
            return Err(AllocationError::InvalidWeight { index: j });
        }
    }
    let caps_vec: Vec<Option<u64>> = if caps.is_empty() {
        vec![None; weights.len()]
    } else {
        assert_eq!(
            caps.len(),
            weights.len(),
            "caps must be empty or match the number of weights"
        );
        caps.to_vec()
    };

    if total == 0 {
        return Ok(AllocationResult {
            amounts: vec![0; weights.len()],
            objective: 0.0,
        });
    }

    let hard_capacity = capacity_at(weights, &caps_vec, f64::MAX);
    if hard_capacity < total {
        return Err(AllocationError::Infeasible {
            total_capacity: hard_capacity,
            requested: total,
        });
    }

    let finite_max_w = weights
        .iter()
        .copied()
        .filter(|w| w.is_finite() && *w > 0.0)
        .fold(0.0_f64, f64::max);
    let mut lo = 0.0_f64;
    let mut hi = if finite_max_w <= 0.0 {
        1.0
    } else {
        finite_max_w * total as f64
    };
    if capacity_at(weights, &caps_vec, lo) >= total {
        hi = lo;
    }
    for _ in 0..200 {
        if hi - lo <= f64::EPSILON * hi.max(1.0) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if capacity_at(weights, &caps_vec, mid) >= total {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let threshold = hi;

    let mut amounts: Vec<u64> = weights
        .iter()
        .enumerate()
        .map(|(j, &w)| max_units(w, caps_vec[j], threshold))
        .collect();
    let mut assigned: u64 = amounts.iter().sum();
    debug_assert!(assigned >= total);
    while assigned > total {
        let (j, _) = amounts
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > 0)
            .map(|(j, &a)| (j, weights[j] * a as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("assigned > total implies a positive slot exists");
        let surplus = assigned - total;
        let shed = if weights[j] <= 0.0 {
            surplus.min(amounts[j])
        } else {
            1
        };
        amounts[j] -= shed;
        assigned -= shed;
    }

    loop {
        let (jmax, cur_obj) = amounts
            .iter()
            .enumerate()
            .map(|(j, &a)| (j, weights[j] * a as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if amounts[jmax] == 0 || cur_obj <= 0.0 {
            break;
        }
        let mut best: Option<(usize, f64)> = None;
        for (j, &a) in amounts.iter().enumerate() {
            if j == jmax {
                continue;
            }
            if let Some(c) = caps_vec[j] {
                if a >= c {
                    continue;
                }
            }
            let new_load = weights[j] * (a + 1) as f64;
            if new_load < cur_obj {
                match best {
                    Some((_, l)) if l <= new_load => {}
                    _ => best = Some((j, new_load)),
                }
            }
        }
        match best {
            Some((j, _)) => {
                amounts[jmax] -= 1;
                amounts[j] += 1;
            }
            None => break,
        }
    }

    let objective = amounts
        .iter()
        .enumerate()
        .map(|(j, &a)| weights[j] * a as f64)
        .fold(0.0_f64, f64::max);
    Ok(AllocationResult { amounts, objective })
}

/// The seed greedy fast-group distributor (fresh `fast` + `capacity` vectors
/// per candidate).
fn distribute_fast_groups(
    dp: usize,
    fast_count: usize,
    fast_rate: f64,
    slow_capacity: &[f64],
    slow_counts: &[usize],
    min_groups: usize,
) -> Option<Vec<usize>> {
    let mut fast = vec![0usize; dp];
    let mut remaining = fast_count;
    for i in 0..dp {
        let need = min_groups.saturating_sub(slow_counts[i]);
        if need > remaining {
            return None;
        }
        fast[i] = need;
        remaining -= need;
    }
    let unit = if fast_rate > 0.0 && fast_rate.is_finite() {
        1.0 / fast_rate
    } else {
        0.0
    };
    let mut capacity: Vec<f64> = (0..dp)
        .map(|i| slow_capacity[i] + fast[i] as f64 * unit)
        .collect();
    for _ in 0..remaining {
        let (imin, _) = capacity
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        fast[imin] += 1;
        capacity[imin] += unit;
    }
    Some(fast)
}

/// The seed evaluator: materializes a nested `Vec<Vec<f64>>` of per-pipeline
/// rates just to recompute harmonic capacities.
fn evaluate(
    problem: &DivisionProblem,
    fast_per_pipeline: &[usize],
    slow_assignment: &[usize],
) -> Option<Division> {
    let dp = problem.dp;
    let mut rates_per_pipeline: Vec<Vec<f64>> = vec![Vec::new(); dp];
    for (i, &count) in fast_per_pipeline.iter().enumerate() {
        for _ in 0..count {
            rates_per_pipeline[i].push(problem.fast_rate);
        }
    }
    for (k, &p) in slow_assignment.iter().enumerate() {
        rates_per_pipeline[p].push(problem.slow_rates[k]);
    }
    let capacities: Vec<f64> = rates_per_pipeline
        .iter()
        .map(|r| harmonic_capacity(r))
        .collect();
    if capacities.iter().any(|&c| c <= 0.0) {
        return None;
    }
    let weights: Vec<f64> = capacities.iter().map(|&c| 1.0 / c).collect();
    let alloc = solve_minmax_allocation_reference(&weights, problem.num_micro_batches, &[]).ok()?;
    Some(Division {
        fast_per_pipeline: fast_per_pipeline.to_vec(),
        slow_assignment: slow_assignment.to_vec(),
        micro_batches: alloc.amounts,
        capacities,
        objective: alloc.objective,
    })
}

/// The seed division solver: full per-candidate rebuild of
/// `slow_counts`/`slow_capacity`, no pruning, the `ms == 0` double-`consider`,
/// and the one-unit minmax shed — exactly what shipped before the
/// allocation-free rewrite.
pub fn divide_pipelines_reference(problem: &DivisionProblem) -> Result<Division, DivisionError> {
    let dp = problem.dp;
    if dp == 0 {
        return Err(DivisionError::ZeroPipelines);
    }
    let total_groups = problem.fast_count + problem.slow_rates.len();
    let required = dp * problem.min_groups_per_pipeline.max(1);
    if total_groups < required {
        return Err(DivisionError::NotEnoughGroups {
            groups: total_groups,
            required,
        });
    }

    let ms = problem.slow_rates.len();
    let search_space = (dp as u64).checked_pow(ms as u32).unwrap_or(u64::MAX);

    let mut best: Option<Division> = None;
    let consider = |assignment: &[usize], best: &mut Option<Division>| {
        let mut slow_counts = vec![0usize; dp];
        let mut slow_capacity = vec![0.0f64; dp];
        for (k, &p) in assignment.iter().enumerate() {
            slow_counts[p] += 1;
            let y = problem.slow_rates[k];
            if y.is_finite() && y > 0.0 {
                slow_capacity[p] += 1.0 / y;
            }
        }
        if let Some(fast) = distribute_fast_groups(
            dp,
            problem.fast_count,
            problem.fast_rate,
            &slow_capacity,
            &slow_counts,
            problem.min_groups_per_pipeline.max(1),
        ) {
            if let Some(candidate) = evaluate(problem, &fast, assignment) {
                if best
                    .as_ref()
                    .map(|b| candidate.objective < b.objective - 1e-12)
                    .unwrap_or(true)
                {
                    *best = Some(candidate);
                }
            }
        }
    };

    if search_space <= problem.exact_enumeration_limit {
        let mut assignment = vec![0usize; ms];
        loop {
            consider(&assignment, &mut best);
            let mut pos = 0;
            loop {
                if pos == ms {
                    break;
                }
                assignment[pos] += 1;
                if assignment[pos] < dp {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
            if pos == ms {
                break;
            }
            if ms == 0 {
                break;
            }
        }
        if ms == 0 {
            consider(&[], &mut best);
        }
    } else {
        let mut order: Vec<usize> = (0..ms).collect();
        order.sort_by(|&a, &b| problem.slow_rates[b].total_cmp(&problem.slow_rates[a]));
        let mut assignment = vec![0usize; ms];
        let mut counts = vec![0usize; dp];
        for &k in &order {
            let (p, _) = counts.iter().enumerate().min_by_key(|(_, &c)| c).unwrap();
            assignment[k] = p;
            counts[p] += 1;
        }
        consider(&assignment, &mut best);
        let mut improved = true;
        let mut rounds = 0usize;
        while improved && rounds < 64 {
            improved = false;
            rounds += 1;
            for k in 0..ms {
                let original = assignment[k];
                for p in 0..dp {
                    if p == original {
                        continue;
                    }
                    assignment[k] = p;
                    let before = best.as_ref().map(|b| b.objective).unwrap_or(f64::INFINITY);
                    consider(&assignment, &mut best);
                    let after = best.as_ref().map(|b| b.objective).unwrap_or(f64::INFINITY);
                    if after < before - 1e-12 {
                        improved = true;
                    } else {
                        assignment[k] = original;
                    }
                }
            }
        }
    }

    best.ok_or(DivisionError::NotEnoughGroups {
        groups: total_groups,
        required,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_solves_the_seed_fixtures() {
        let p = DivisionProblem::new(4, 16, 1.0, vec![], 64);
        let d = divide_pipelines_reference(&p).unwrap();
        assert_eq!(d.fast_per_pipeline, vec![4, 4, 4, 4]);
        assert_eq!(d.micro_batches, vec![16, 16, 16, 16]);
        assert!((d.objective - 4.0).abs() < 1e-9);

        let r = solve_minmax_allocation_reference(&[4.0, 1.0, 1.0, 1.0], 65, &[]).unwrap();
        assert_eq!(r.amounts.iter().sum::<u64>(), 65);
        assert!(r.amounts[0] < r.amounts[1]);
    }
}
