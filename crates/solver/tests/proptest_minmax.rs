//! Property-based tests for the min-max allocation solver.

use malleus_solver::minmax::{brute_force_minmax, solve_minmax_allocation};
use proptest::prelude::*;

proptest! {
    // Bounded to 64 cases per property (tier-1 policy; the shim runner is
    // deterministic either way).
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver always returns a feasible allocation: amounts sum to the
    /// requested total and every capacity is respected.
    #[test]
    fn allocation_is_feasible(
        weights in prop::collection::vec(0.1f64..20.0, 1..12),
        total in 0u64..200,
        cap_seed in prop::collection::vec(prop::option::of(1u64..100), 0..12),
    ) {
        let caps: Vec<Option<u64>> = if cap_seed.len() == weights.len() {
            cap_seed
        } else {
            vec![None; weights.len()]
        };
        match solve_minmax_allocation(&weights, total, &caps) {
            Ok(result) => {
                prop_assert_eq!(result.amounts.iter().sum::<u64>(), total);
                for (j, &a) in result.amounts.iter().enumerate() {
                    if let Some(c) = caps[j] {
                        prop_assert!(a <= c);
                    }
                }
                let objective = result
                    .amounts
                    .iter()
                    .enumerate()
                    .map(|(j, &a)| weights[j] * a as f64)
                    .fold(0.0_f64, f64::max);
                prop_assert!((objective - result.objective).abs() < 1e-6);
            }
            Err(_) => {
                // Only allowed when the capacities genuinely cannot hold the total.
                let capacity: u64 = caps
                    .iter()
                    .map(|c| c.unwrap_or(u64::MAX / 16))
                    .fold(0u64, |acc, c| acc.saturating_add(c));
                prop_assert!(capacity < total);
            }
        }
    }

    /// On small instances the solver is exactly optimal (matches brute force).
    #[test]
    fn matches_brute_force_on_small_instances(
        weights in prop::collection::vec(0.25f64..8.0, 1..5),
        total in 0u64..12,
    ) {
        let fast = solve_minmax_allocation(&weights, total, &[]).unwrap();
        let brute = brute_force_minmax(&weights, total, &[]).unwrap();
        prop_assert!((fast.objective - brute.1).abs() < 1e-6,
            "weights={:?} total={} fast={} brute={}", weights, total, fast.objective, brute.1);
    }

    /// Scaling every weight by a constant scales the objective by the same
    /// constant and leaves an optimal allocation optimal.
    #[test]
    fn objective_scales_linearly_with_weights(
        weights in prop::collection::vec(0.1f64..10.0, 1..8),
        total in 1u64..64,
        scale in 0.5f64..4.0,
    ) {
        let base = solve_minmax_allocation(&weights, total, &[]).unwrap();
        let scaled_weights: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let scaled = solve_minmax_allocation(&scaled_weights, total, &[]).unwrap();
        prop_assert!((scaled.objective - base.objective * scale).abs() < 1e-6 * scale.max(1.0));
    }

    /// Adding one more unit of work can never decrease the objective.
    #[test]
    fn objective_is_monotone_in_total(
        weights in prop::collection::vec(0.1f64..10.0, 1..8),
        total in 0u64..64,
    ) {
        let a = solve_minmax_allocation(&weights, total, &[]).unwrap();
        let b = solve_minmax_allocation(&weights, total + 1, &[]).unwrap();
        prop_assert!(b.objective >= a.objective - 1e-9);
    }
}
