//! malleus-lint: workspace-native static analysis for the Malleus planner.
//!
//! Four invariants that `rustc` cannot see end-to-end, checked over a
//! hand-rolled lexer (no crates.io dependencies, so the lint runs in the
//! same offline environment as tier-1):
//!
//! | code  | invariant |
//! |-------|-----------|
//! | ML001 | locks acquire in strictly increasing `lock_order.toml` rank; graph acyclic; every lock/condvar field ranked; `RankedMutex::new` literals match |
//! | ML002 | no panic paths (`unwrap`/`expect`/`panic!`/computed indexing) in request-serving code |
//! | ML003 | no float `==`/`!=`/hash outside `to_bits()` byte-identity helpers |
//! | ML004 | no wall-clock or entropy reads in planner-scoring code |
//! | ML005 | `// malleus-lint: allow(MLnnn, reason = "...")` pragmas must be well-formed with a non-empty reason |
//!
//! Suppression: a well-formed allow pragma suppresses the named codes on
//! its target line.  ML005 itself is never suppressible.

pub mod lexer;
pub mod manifest;
pub mod pragma;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use manifest::Manifest;
use pragma::Allow;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub code: String,
    /// Workspace-relative path (`crates/service/src/server.rs`).
    pub file: String,
    /// 1-based; 0 for file- or workspace-level findings.
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(code: &str, file: &str, line: u32, message: String) -> Self {
        Finding {
            code: code.to_string(),
            file: file.to_string(),
            line,
            message,
        }
    }

    /// `path:line: [MLnnn] message` (the line elided when 0).
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file, self.code, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.file, self.line, self.code, self.message
            )
        }
    }

    /// GitHub Actions annotation form.
    pub fn render_github(&self) -> String {
        format!(
            "::error file={},line={}::[{}] {}",
            self.file,
            self.line.max(1),
            self.code,
            self.message
        )
    }
}

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

// Rule scopes, as workspace-relative path prefixes (ML002's scope includes
// one exact file).  Code outside a rule's scope is exempt from that rule —
// e.g. benches construct `Instant::now()` legitimately, and CLI examples
// may unwrap.
const ML001_SCOPE: [&str; 3] = [
    "crates/core/src",
    "crates/service/src",
    "crates/runtime/src",
];
const ML002_SCOPE: [&str; 2] = ["crates/service/src/server.rs", "crates/wire/src"];
const ML003_SCOPE: [&str; 3] = ["crates/core/src", "crates/solver/src", "crates/wire/src"];
const ML004_SCOPE: [&str; 7] = [
    "crates/core/src/planner.rs",
    "crates/core/src/cost.rs",
    "crates/core/src/grouping.rs",
    "crates/core/src/assignment.rs",
    "crates/core/src/delta.rs",
    "crates/core/src/orchestration.rs",
    "crates/solver/src",
];

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope
        .iter()
        .any(|s| rel == *s || (rel.starts_with(s) && rel.as_bytes().get(s.len()) == Some(&b'/')))
}

struct SourceFile {
    rel: String,
    tokens: Vec<lexer::Token>,
    allows: Vec<Allow>,
}

fn load_file(rel: String, source: &str, findings: &mut Vec<Finding>) -> SourceFile {
    let lexed = lexer::lex(source);
    let (allows, pragma_errors) = pragma::parse_pragmas(&lexed);
    for e in pragma_errors {
        findings.push(Finding::new("ML005", &rel, e.line, e.message));
    }
    SourceFile {
        rel,
        tokens: rules::strip_cfg_test(&lexed.tokens),
        allows,
    }
}

/// Drop findings covered by a well-formed allow pragma on their line.
/// ML005 findings survive unconditionally.
fn apply_allows(
    findings: Vec<Finding>,
    allows_by_file: &BTreeMap<String, Vec<Allow>>,
) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            if f.code == "ML005" {
                return true;
            }
            let Some(allows) = allows_by_file.get(&f.file) else {
                return true;
            };
            !allows
                .iter()
                .any(|a| a.target_line == f.line && a.codes.contains(&f.code))
        })
        .collect()
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.code.as_str(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.code.as_str(),
            b.message.as_str(),
        ))
    });
}

/// Scan the workspace rooted at `root` using the manifest at
/// `crates/lint/lock_order.toml` (or `manifest_override`).
pub fn run_workspace(root: &Path, manifest_override: Option<&Path>) -> Result<Report, String> {
    let manifest_path = manifest_override
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join("crates/lint/lock_order.toml"));
    let manifest_text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let manifest = manifest::parse(&manifest_text)?;

    let mut findings = Vec::new();
    let mut files = Vec::new();
    for rel in collect_sources(root)? {
        let abs = root.join(&rel);
        let source = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        files.push(load_file(rel, &source, &mut findings));
    }
    let files_scanned = files.len();

    // ML001 runs over its whole scope at once (the lock graph is global);
    // the per-file rules run file by file.
    let ml001_files: Vec<(String, Vec<lexer::Token>)> = files
        .iter()
        .filter(|f| in_scope(&f.rel, &ML001_SCOPE))
        .map(|f| (f.rel.clone(), f.tokens.clone()))
        .collect();
    rules::ml001::run(&ml001_files, &manifest, &mut findings);

    // Float fields are harvested across the whole ML003 scope so that a
    // comparison in one file sees fields declared in another.
    let mut float_fields = std::collections::BTreeSet::new();
    for f in files.iter().filter(|f| in_scope(&f.rel, &ML003_SCOPE)) {
        float_fields.extend(rules::ml003::collect_float_fields(&f.tokens));
    }

    for f in &files {
        if in_scope(&f.rel, &ML002_SCOPE) {
            rules::ml002::run(&f.rel, &f.tokens, &mut findings);
        }
        if in_scope(&f.rel, &ML003_SCOPE) {
            rules::ml003::run(&f.rel, &f.tokens, &float_fields, &mut findings);
        }
        if in_scope(&f.rel, &ML004_SCOPE) {
            rules::ml004::run(&f.rel, &f.tokens, &mut findings);
        }
    }

    let allows_by_file: BTreeMap<String, Vec<Allow>> =
        files.into_iter().map(|f| (f.rel, f.allows)).collect();
    let mut findings = apply_allows(findings, &allows_by_file);
    sort_findings(&mut findings);
    Ok(Report {
        findings,
        files_scanned,
    })
}

/// Run every rule, unscoped, over a single in-memory source file.  Fixture
/// tests use this to assert exact expected codes.
pub fn run_source(rel: &str, source: &str, manifest: &Manifest) -> Vec<Finding> {
    let mut findings = Vec::new();
    let file = load_file(rel.to_string(), source, &mut findings);

    let ml001_files = vec![(file.rel.clone(), file.tokens.clone())];
    rules::ml001::run(&ml001_files, manifest, &mut findings);
    rules::ml002::run(&file.rel, &file.tokens, &mut findings);
    let float_fields = rules::ml003::collect_float_fields(&file.tokens);
    rules::ml003::run(&file.rel, &file.tokens, &float_fields, &mut findings);
    rules::ml004::run(&file.rel, &file.tokens, &mut findings);

    let allows_by_file: BTreeMap<String, Vec<Allow>> =
        [(file.rel, file.allows)].into_iter().collect();
    let mut findings = apply_allows(findings, &allows_by_file);
    sort_findings(&mut findings);
    findings
}

/// Workspace-relative paths of every `.rs` file under `crates/*/src`,
/// excluding the lint crate itself (its fixtures are deliberately findable).
fn collect_sources(root: &Path) -> Result<Vec<String>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "lint" || !entry.path().is_dir() {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out)?;
        }
    }
    let mut rels: Vec<String> = out
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching_requires_path_boundaries() {
        assert!(in_scope("crates/core/src/planner.rs", &ML001_SCOPE));
        assert!(in_scope("crates/service/src/server.rs", &ML002_SCOPE));
        assert!(!in_scope("crates/core/src2/evil.rs", &ML001_SCOPE));
        // The rewritten division hot path is float-comparison heavy, so the
        // solver sits inside the ML003 byte-identity scope.
        assert!(in_scope("crates/solver/src/lib.rs", &ML003_SCOPE));
        assert!(!in_scope("crates/baselines/src/lib.rs", &ML003_SCOPE));
    }

    #[test]
    fn allow_pragma_suppresses_on_target_line_only() {
        let m = Manifest::default();
        let src = "fn f(x: f64) -> bool {\n    // malleus-lint: allow(ML003, reason = \"sentinel\")\n    x == 1.5\n}\nfn g(x: f64) -> bool { x == 2.5 }\n";
        let findings = run_source("t.rs", src, &m);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn malformed_pragma_is_ml005_and_suppresses_nothing() {
        let m = Manifest::default();
        let src = "fn f(x: f64) -> bool {\n    // malleus-lint: allow(ML003)\n    x == 1.5\n}\n";
        let findings = run_source("t.rs", src, &m);
        let codes: Vec<&str> = findings.iter().map(|f| f.code.as_str()).collect();
        assert_eq!(codes, ["ML005", "ML003"], "{findings:?}");
    }

    #[test]
    fn render_formats() {
        let f = Finding::new("ML002", "crates/wire/src/lib.rs", 42, "boom".into());
        assert_eq!(f.render(), "crates/wire/src/lib.rs:42: [ML002] boom");
        assert_eq!(
            f.render_github(),
            "::error file=crates/wire/src/lib.rs,line=42::[ML002] boom"
        );
    }
}
