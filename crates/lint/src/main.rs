//! malleus-lint CLI.
//!
//! ```text
//! malleus-lint --workspace [--root PATH] [--manifest PATH] [--github]
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut workspace = false;
    let mut github = false;
    let mut root = PathBuf::from(".");
    let mut manifest: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--github" => github = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root requires a path"),
            },
            "--manifest" => match args.next() {
                Some(p) => manifest = Some(PathBuf::from(p)),
                None => return usage("--manifest requires a path"),
            },
            "--help" | "-h" => {
                println!(
                    "malleus-lint --workspace [--root PATH] [--manifest PATH] [--github]\n\n\
                     Checks lock ordering (ML001), panic paths (ML002), float byte-identity\n\
                     (ML003), nondeterminism sources (ML004), and allow-pragma hygiene (ML005).\n\
                     Exit codes: 0 clean, 1 findings, 2 usage/IO error."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("missing required mode: --workspace");
    }

    match malleus_lint::run_workspace(&root, manifest.as_deref()) {
        Ok(report) => {
            for finding in &report.findings {
                if github {
                    println!("{}", finding.render_github());
                } else {
                    println!("{}", finding.render());
                }
            }
            eprintln!(
                "malleus-lint: {} finding(s) across {} file(s)",
                report.findings.len(),
                report.files_scanned
            );
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("malleus-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("malleus-lint: {message}\nusage: malleus-lint --workspace [--root PATH] [--manifest PATH] [--github]");
    ExitCode::from(2)
}
