//! Parser for `crates/lint/lock_order.toml` — a strict TOML subset.
//!
//! The container has no crates.io access, so the manifest grammar is kept to
//! what a line-based parser handles unambiguously: `[section]` headers,
//! `key = value` pairs with optionally-quoted keys, integer or quoted-string
//! values, and `#` comments.

use std::collections::BTreeMap;

/// The declared lock ranking plus call-site resolution helpers.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    /// `"Struct.field"` → rank.  Locks may only be acquired in strictly
    /// increasing rank order while other locks are held.
    pub ranks: BTreeMap<String, u32>,
    /// `"Struct.field"` (a `Condvar`) → the `"Struct.field"` mutex it pairs
    /// with.  Condvars are never acquired, but every one must be declared so
    /// the extracted lock graph provably covers them.
    pub condvars: BTreeMap<String, String>,
    /// Free functions that acquire a lock passed as their first argument
    /// (`lock_or_poisoned` → `"lock"`); the value names the equivalent
    /// method for reporting.
    pub lock_fns: BTreeMap<String, String>,
    /// `"Struct.method"` → field: accessor methods whose return value is one
    /// of the struct's locks (`ShardedPlanCache.shard` → `shards`).
    pub aliases: BTreeMap<String, String>,
}

pub fn parse(text: &str) -> Result<Manifest, String> {
    let mut manifest = Manifest::default();
    let mut section = String::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lock_order.toml:{lineno}: expected `key = value`"));
        };
        let key = unquote(key.trim());
        let value = value.trim();
        match section.as_str() {
            "ranks" => {
                let rank: u32 = value
                    .parse()
                    .map_err(|_| format!("lock_order.toml:{lineno}: rank must be an integer"))?;
                if manifest.ranks.insert(key.clone(), rank).is_some() {
                    return Err(format!(
                        "lock_order.toml:{lineno}: duplicate rank for `{key}`"
                    ));
                }
            }
            "condvars" => {
                manifest.condvars.insert(key, unquote(value));
            }
            "lock_fns" => {
                manifest.lock_fns.insert(key, unquote(value));
            }
            "aliases" => {
                manifest.aliases.insert(key, unquote(value));
            }
            other => {
                return Err(format!(
                    "lock_order.toml:{lineno}: unknown section `[{other}]`"
                ));
            }
        }
    }

    // Distinct locks must have distinct ranks, or "strictly increasing"
    // stops being a total order over the manifest.
    let mut seen: BTreeMap<u32, &String> = BTreeMap::new();
    for (name, &rank) in &manifest.ranks {
        if let Some(prev) = seen.insert(rank, name) {
            return Err(format!(
                "lock_order.toml: `{prev}` and `{name}` share rank {rank}"
            ));
        }
    }
    // Condvar pairings must reference ranked mutexes.
    for (cv, mutex) in &manifest.condvars {
        if !manifest.ranks.contains_key(mutex) {
            return Err(format!(
                "lock_order.toml: condvar `{cv}` pairs with unranked lock `{mutex}`"
            ));
        }
    }
    Ok(manifest)
}

/// Drop a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_sections() {
        let m = parse(
            r#"
# comment
[ranks]
"AdmissionGate.state" = 10
"InFlightTable.slots" = 20

[condvars]
"AdmissionGate.freed" = "AdmissionGate.state"

[lock_fns]
lock_or_poisoned = "lock"

[aliases]
"ShardedPlanCache.shard" = "shards"
"#,
        )
        .expect("parses");
        assert_eq!(m.ranks["AdmissionGate.state"], 10);
        assert_eq!(m.condvars["AdmissionGate.freed"], "AdmissionGate.state");
        assert_eq!(m.lock_fns["lock_or_poisoned"], "lock");
        assert_eq!(m.aliases["ShardedPlanCache.shard"], "shards");
    }

    #[test]
    fn duplicate_ranks_are_rejected() {
        let err = parse("[ranks]\n\"A.x\" = 5\n\"B.y\" = 5\n").unwrap_err();
        assert!(err.contains("share rank"));
    }

    #[test]
    fn condvar_must_pair_with_ranked_lock() {
        let err = parse("[condvars]\n\"A.cv\" = \"A.missing\"\n").unwrap_err();
        assert!(err.contains("unranked"));
    }
}
