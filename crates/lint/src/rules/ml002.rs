//! ML002 — panic paths in request-serving code.
//!
//! The plan server must survive arbitrary bytes from the wire: a panic
//! mid-request poisons shared state and kills the connection for every
//! multiplexed client.  In the serving scope (`crates/service/src/server.rs`
//! and `crates/wire/src`), this pass flags:
//!
//! - `.unwrap()` / `.expect(..)` — poisoned-lock recovery must go through
//!   the named `lock_or_poisoned` helper instead, and decoded input must
//!   surface typed `WireError`/`ServiceError` values;
//! - `panic!(..)` / `unreachable!(..)` / `todo!(..)` / `unimplemented!(..)`;
//! - postfix slice indexing `buf[i]` / `buf[a..b]` with a non-literal
//!   index, which panics out-of-bounds — `get()` returns an Option.

use crate::lexer::{Token, TokenKind};
use crate::rules::skip_delimited;
use crate::Finding;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede `[` without forming an index
/// expression (type syntax or array literals).
const NON_INDEX_KEYWORDS: [&str; 8] = ["mut", "in", "return", "break", "as", "ref", "move", "dyn"];

pub fn run(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.kind == TokenKind::Ident {
            let next_is = |text: &str| tokens.get(i + 1).is_some_and(|t| t.text == text);
            let prev_is = |text: &str| i >= 1 && tokens[i - 1].text == text;

            if (tok.text == "unwrap" || tok.text == "expect") && prev_is(".") && next_is("(") {
                findings.push(Finding::new(
                    "ML002",
                    file,
                    tok.line,
                    format!(
                        "`.{}()` in request-serving code can panic and poison shared state; \
                         return a typed error (or use `lock_or_poisoned` for poisoned locks)",
                        tok.text
                    ),
                ));
                i += 1;
                continue;
            }
            if PANIC_MACROS.contains(&tok.text.as_str()) && next_is("!") && !prev_is(".") {
                findings.push(Finding::new(
                    "ML002",
                    file,
                    tok.line,
                    format!(
                        "`{}!` in request-serving code aborts the connection for every \
                         multiplexed client; return a typed error instead",
                        tok.text
                    ),
                ));
                i += 2;
                continue;
            }
        }
        // Postfix indexing: `expr[i]` where `[` follows an ident, `)`, or
        // `]`.  Attribute (`#[..]`) and macro-bracket (`vec![..]`) openers
        // are excluded because `#` and `!` match neither form; keyword
        // idents (`&mut [u8]`, `for x in [..]`) open types or array
        // literals, not index expressions.
        let prev_opens_index = i >= 1
            && ((tokens[i - 1].kind == TokenKind::Ident
                && !NON_INDEX_KEYWORDS.contains(&tokens[i - 1].text.as_str()))
                || tokens[i - 1].text == ")"
                || tokens[i - 1].text == "]");
        if tok.text == "[" && prev_opens_index {
            let end = skip_delimited(tokens, i);
            let inner = &tokens[i + 1..end.saturating_sub(1)];
            if !inner.is_empty() && !is_literal_index(inner) {
                findings.push(Finding::new(
                    "ML002",
                    file,
                    tok.line,
                    "slice indexing with a computed index panics out of bounds on \
                     malformed input; use `.get(..)` and handle the miss"
                        .to_string(),
                ));
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

/// Literal-only indexes (`frame[0]`, `header[4..8]`) cannot be attacker
/// controlled; anything containing an identifier or call can.
fn is_literal_index(inner: &[Token]) -> bool {
    inner
        .iter()
        .all(|t| t.kind == TokenKind::Number || t.text == ".." || t.text == "..=")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::strip_cfg_test;

    fn run_on(src: &str) -> Vec<Finding> {
        let tokens = strip_cfg_test(&lex(src).tokens);
        let mut findings = Vec::new();
        run("test.rs", &tokens, &mut findings);
        findings
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let f = run_on("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.code == "ML002"));
    }

    #[test]
    fn panic_macros_are_flagged() {
        let f = run_on("fn f() { panic!(\"boom\"); unreachable!(); }");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn computed_index_is_flagged_but_literal_is_not() {
        let f = run_on("fn f(b: &[u8], i: usize) { let x = b[i]; let y = b[0]; let z = b[4..8]; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("get"));
    }

    #[test]
    fn type_position_and_array_literals_are_not_indexing() {
        let f = run_on("fn f(buf: &mut [u8]) { for x in [1, 2] { let _ = x; } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn attributes_and_macros_are_not_indexing() {
        let f = run_on("#[derive(Debug)]\nstruct S;\nfn f() { let v = vec![1, 2]; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn typed_error_handling_is_clean() {
        let f = run_on("fn f(b: &[u8]) -> Result<u8, E> { b.first().copied().ok_or(E::Short) }");
        assert!(f.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run_on("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }");
        assert!(f.is_empty());
    }
}
